//! # fast-dnn — FAST variable-precision BFP DNN training, reproduced in Rust
//!
//! Umbrella crate for the reproduction of *FAST: DNN Training Under Variable
//! Precision Block Floating Point with Stochastic Rounding* (Zhang, McDanel,
//! Kung — HPCA 2022). It re-exports the workspace crates:
//!
//! * [`bfp`] — Block Floating Point formats, stochastic rounding, chunked
//!   mantissa storage and BFP dot products.
//! * [`ckpt`] — versioned checkpoint artifacts: bit-exact training resume
//!   and hot-reloadable serving weights.
//! * [`tensor`] — dense f32 tensor substrate (GEMM, conv, pooling).
//! * [`nn`] — quantization-aware layers, models, losses, optimizers and the
//!   training loop.
//! * [`data`] — synthetic datasets standing in for ImageNet / IWSLT14 / VOC.
//! * [`fast`] — the FAST-Adaptive precision controller (Algorithm 1) and
//!   training schedules.
//! * [`hw`] — the FAST hardware model: fMAC, systolic array, BFP converter,
//!   area/power/energy accounting.
//! * [`serve`] — batched BFP inference serving: frozen compiled models,
//!   dynamic micro-batching, replicated workers.
//! * [`telemetry`] — lock-free metrics registry, scoped spans and
//!   Prometheus/JSON exporters shared by every layer.
//! * [`harness`] — lifecycle conformance and numerical-variability drivers
//!   over the whole stack (`tests/lifecycle.rs`, `BENCH_variability.json`).
//!
//! See the repository README for a guided tour and `examples/` for runnable
//! entry points.
//!
//! ```
//! use fast_dnn::bfp::{BfpFormat, BfpGroup};
//!
//! # fn main() -> Result<(), fast_dnn::bfp::FormatError> {
//! let fmt = BfpFormat::new(16, 4, 3)?;
//! let xs = vec![0.5f32; 16];
//! let group = BfpGroup::quantize_nearest(&xs, fmt);
//! assert_eq!(group.dequantize()[0], 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use fast_bfp as bfp;
pub use fast_ckpt as ckpt;
pub use fast_core as fast;
pub use fast_data as data;
pub use fast_harness as harness;
pub use fast_hw as hw;
pub use fast_nn as nn;
pub use fast_serve as serve;
pub use fast_telemetry as telemetry;
pub use fast_tensor as tensor;
