//! Checkpoint & resume: bit-exact training continuation plus a serving hot
//! reload, end to end (DESIGN.md §10).
//!
//! Trains a small MLP under the FAST-Adaptive controller, checkpoints at
//! the midpoint (controller state riding along in the artifact's `hook`
//! section), resumes into freshly constructed objects, and verifies the
//! resumed run is **bit-identical** to an uninterrupted one. The trained
//! artifact is then hot-swapped into a running inference server.
//!
//! Run with: `cargo run --release --example checkpoint_resume [artifact.fastckpt]`
//! (an artifact path may be given to keep the checkpoint file around, e.g.
//! for the CI artifact upload; by default it is written to a temp dir and
//! removed).

use fast_dnn::fast::{EpsilonSchedule, FastController};
use fast_dnn::nn::models::mlp;
use fast_dnn::nn::{Layer, Sequential, Sgd, Trainer};
use fast_dnn::serve::{BatchConfig, CompiledModel, Server};
use fast_dnn::tensor::Tensor;
use rand::SeedableRng;

const STEPS: usize = 12;
const SPLIT: usize = 6;

fn build_model() -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    mlp(&[8, 32, 4], &mut rng)
}

fn build_controller() -> FastController {
    FastController::new(STEPS, EpsilonSchedule::paper_default())
}

fn batch(step: usize) -> (Tensor, Vec<usize>) {
    let x = Tensor::from_vec(
        vec![8, 8],
        (0..64)
            .map(|i| ((i * 37 + step * 101) % 251) as f32 * 0.008 - 1.0)
            .collect(),
    );
    let labels = (0..8).map(|i| (i + step) % 4).collect();
    (x, labels)
}

fn param_bits(model: &mut Sequential) -> Vec<u32> {
    let mut bits = Vec::new();
    model.visit_params(&mut |p| bits.extend(p.value.data().iter().map(|v| v.to_bits())));
    bits
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (path, keep) = match std::env::args().nth(1) {
        Some(p) => (std::path::PathBuf::from(p), true),
        None => (
            std::env::temp_dir().join("fast_dnn_checkpoint_example.fastckpt"),
            false,
        ),
    };

    // Uninterrupted reference run under the FAST-Adaptive controller.
    let mut ctl = build_controller();
    let mut trainer = Trainer::new(build_model(), Sgd::new(0.05, 0.9, 1e-4), 77);
    let mut reference_losses = Vec::new();
    for s in 0..STEPS {
        let (x, labels) = batch(s);
        reference_losses.push(trainer.step_classification(&x, &labels, &mut ctl).loss);
    }
    let reference_params = param_bits(&mut trainer.model);

    // Interrupted run: train to the midpoint, checkpoint, drop everything.
    let mut ctl = build_controller();
    let mut trainer = Trainer::new(build_model(), Sgd::new(0.05, 0.9, 1e-4), 77);
    for s in 0..SPLIT {
        let (x, labels) = batch(s);
        let _ = trainer.step_classification(&x, &labels, &mut ctl);
    }
    trainer.save_checkpoint(&path, Some(&mut ctl))?;
    let artifact_bytes = std::fs::metadata(&path)?.len();
    println!(
        "checkpoint @ step {SPLIT}: {} ({artifact_bytes} bytes)",
        path.display()
    );
    drop(trainer);
    drop(ctl);

    // Resume into freshly constructed objects — every tensor, counter and
    // RNG word comes from the artifact.
    let mut ctl = build_controller();
    let mut trainer = Trainer::resume_from_path(
        build_model(),
        Sgd::new(0.05, 0.9, 1e-4),
        &path,
        Some(&mut ctl),
    )?;
    println!("resumed at iteration {}", trainer.iterations());
    let mut resumed_losses = Vec::new();
    for s in SPLIT..STEPS {
        let (x, labels) = batch(s);
        resumed_losses.push(trainer.step_classification(&x, &labels, &mut ctl).loss);
    }

    // Bit-exactness: the resumed tail must equal the reference tail, and
    // the final weights must match bit for bit.
    for (i, (resumed, reference)) in resumed_losses
        .iter()
        .zip(&reference_losses[SPLIT..])
        .enumerate()
    {
        let step = SPLIT + i;
        println!("step {step:2}: loss {resumed:.6}");
        assert_eq!(
            resumed.to_bits(),
            reference.to_bits(),
            "loss diverged at step {step}"
        );
    }
    assert_eq!(
        param_bits(&mut trainer.model),
        reference_params,
        "final weights must be bit-identical to the uninterrupted run"
    );
    println!(
        "resume is bit-exact: {} steps replayed, weights identical",
        STEPS - SPLIT
    );

    // Hot reload: hand the final weights to a running server.
    let final_artifact = trainer.checkpoint(None);
    let server = Server::start(
        vec![CompiledModel::compile(build_model(), 0)],
        BatchConfig::no_wait(8),
    );
    let x = batch(0).0;
    let before = server.infer(x.clone());
    let generation = server.reload(&final_artifact)?;
    let after = server.infer(x.clone());
    let mut trained = CompiledModel::compile(trainer.model, 0);
    assert_eq!(
        after,
        trained.infer(&x),
        "post-reload serving must match the trained model exactly"
    );
    assert_ne!(before, after, "reload must actually change the weights");
    let stats = server.shutdown();
    println!(
        "hot reload: generation {generation}, {} worker swap(s), {} request(s) served, zero dropped",
        stats.reloads, stats.samples
    );

    if !keep {
        std::fs::remove_file(&path)?;
    }
    Ok(())
}
