//! Quickstart: Block Floating Point in five minutes.
//!
//! Quantize a group of FP32 values, inspect the shared exponent and
//! mantissas, apply stochastic rounding, and run a quantized dot product —
//! the numeric core of the FAST paper (Figs 4, 5, 13).
//!
//! Run with: `cargo run --release --example quickstart`

use fast_dnn::bfp::dot::{dot_chunked, dot_f32};
use fast_dnn::bfp::{BfpFormat, BfpGroup, ChunkedGroup, Lfsr16, Rounding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A BFP format: 16 values share one exponent, each keeps a 4-bit
    // mantissa + sign ("HighBFP" in the paper, its training baseline).
    let fmt = BfpFormat::new(16, 4, 3)?;
    println!(
        "format: {fmt}  ({:.2} bits/value in chunked storage)\n",
        fmt.storage_bits_per_value()
    );

    // Quantize a group of activations (round to nearest).
    let xs: Vec<f32> = (0..16).map(|i| 0.8f32 * (0.4 * i as f32).sin()).collect();
    let group = BfpGroup::quantize_nearest(&xs, fmt);
    println!("shared exponent: {}", group.shared_exponent());
    println!("mantissas:       {:?}", group.mantissas());
    let back = group.dequantize();
    println!(
        "max abs error:   {:.4}\n",
        xs.iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    );

    // Gradients get stochastic rounding from a hardware-style LFSR
    // (Theorem 1: unbiased in expectation — essential at 2-4 bit mantissas).
    let mut lfsr = Lfsr16::new(0xACE1);
    let grads: Vec<f32> = (0..16).map(|i| 1e-3 * (i as f32 - 8.0)).collect();
    let sr = BfpGroup::quantize(&grads, fmt, Rounding::STOCHASTIC8, &mut lfsr, None);
    println!(
        "stochastically rounded gradient mantissas: {:?}\n",
        sr.mantissas()
    );

    // A BFP dot product: one integer MAC chain + one exponent addition.
    let ws: Vec<f32> = (0..16).map(|i| 0.5f32 * (0.9 * i as f32).cos()).collect();
    let wg = BfpGroup::quantize_nearest(&ws, fmt);
    let direct = dot_f32(&group, &wg);

    // The same value computed the fMAC way: 2-bit chunk passes.
    let ca = ChunkedGroup::from_group(&group)?;
    let cb = ChunkedGroup::from_group(&wg)?;
    let chunked = dot_chunked(&ca, &cb);
    println!("dot product (direct):        {direct}");
    println!(
        "dot product (fMAC chunks):   {} in {} passes",
        chunked.value, chunked.passes
    );
    assert_eq!(
        direct, chunked.value,
        "chunk-serial arithmetic is bit-exact"
    );

    // FP32 reference for comparison.
    let exact: f32 = xs.iter().zip(&ws).map(|(a, b)| a * b).sum();
    println!("dot product (FP32 exact):    {exact}");
    Ok(())
}
