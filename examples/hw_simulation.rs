//! Drive the FAST hardware model directly: fMAC cells, the BFP converter
//! datapath, the three systolic dataflows of Fig 12, and the system-level
//! cost comparison of Section VII.
//!
//! Run with: `cargo run --release --example hw_simulation`

use fast_dnn::bfp::{BfpFormat, BfpGroup, ChunkedGroup};
use fast_dnn::hw::{
    training_iteration, BfpConverter, FmacCell, Gemm, LayerWork, SystemConfig,
    SystolicFunctionalSim,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- One fMAC cell, variable precision ---------------------------------
    println!("== fMAC cell (Fig 11/13) ==");
    let fmt4 = BfpFormat::new(16, 4, 8)?;
    let fmt2 = BfpFormat::new(16, 2, 8)?;
    let weights: Vec<f32> = (0..16).map(|i| 0.3 * ((i as f32) * 0.8).sin()).collect();
    let acts: Vec<f32> = (0..16).map(|i| 0.7 * ((i as f32) * 0.5).cos()).collect();
    let mut cell = FmacCell::new();
    cell.load_weight(ChunkedGroup::from_group(&BfpGroup::quantize_nearest(
        &weights, fmt4,
    ))?);
    let x_hi = ChunkedGroup::from_group(&BfpGroup::quantize_nearest(&acts, fmt4))?;
    let x_lo = ChunkedGroup::from_group(&BfpGroup::quantize_nearest(&acts, fmt2))?;
    cell.consume(&x_hi);
    println!(
        "after 4b x 4b group: accumulator {:+.5}, passes {}",
        cell.accumulator(),
        cell.passes()
    );
    cell.consume(&x_lo);
    println!(
        "after 4b x 2b group: accumulator {:+.5}, passes {}",
        cell.accumulator(),
        cell.passes()
    );

    // --- The converter datapath --------------------------------------------
    println!("\n== BFP converter (Fig 14) ==");
    let mut conv = BfpConverter::new(fmt4, 0xACE1);
    let out = conv.convert(&acts, true);
    println!(
        "shared exponent {}, improvement sums: num {} / den {}",
        out.group.shared_exponent(),
        out.improvement_numerator,
        out.improvement_denominator
    );

    // --- Three dataflows, one stored W (Fig 12) ----------------------------
    println!("\n== Systolic dataflows (Fig 12, W stored once) ==");
    let sim = SystolicFunctionalSim::load_weights(&[2.0, 3.0, 0.0, 1.0], 2, 2);
    println!(
        "forward  O = A·W:    {:?}",
        sim.forward(&[1.0, 4.0, 5.0, 2.0], 2)
    );
    println!(
        "backward ∇A = ∇O·Wᵀ: {:?}",
        sim.backward_activation(&[3.0, 4.0, 1.0, 2.0], 2)
    );
    println!(
        "backward ∇W = Aᵀ·∇O: {:?}",
        sim.backward_weight(&[1.0, 4.0, 5.0, 2.0], &[3.0, 4.0, 1.0, 2.0], 2)
    );

    // --- System-level: one ResNet-ish iteration on every system ------------
    println!("\n== One training iteration across systems (Section VII-B) ==");
    let layers: Vec<LayerWork> = [
        Gemm {
            m: 802_816,
            k: 576,
            n: 64,
        },
        Gemm {
            m: 200_704,
            k: 1152,
            n: 128,
        },
        Gemm {
            m: 50_176,
            k: 2304,
            n: 256,
        },
        Gemm {
            m: 12_544,
            k: 4608,
            n: 512,
        },
    ]
    .iter()
    .map(|&gemm| LayerWork {
        gemm,
        m_w: 2,
        m_a: 2,
        m_g: 4,
    })
    .collect();
    println!(
        "{:<16} {:>12} {:>10} {:>10}",
        "system", "cycles", "ms", "energy J"
    );
    let fast_cycles = training_iteration(&SystemConfig::fast(), &layers).cycles as f64;
    for sys in SystemConfig::all() {
        let cost = training_iteration(&sys, &layers);
        println!(
            "{:<16} {:>12} {:>10.2} {:>10.2}   ({:.2}x FAST)",
            sys.name,
            cost.cycles,
            1e3 * cost.seconds,
            cost.energy_j,
            cost.cycles as f64 / fast_cycles,
        );
    }
    Ok(())
}
