//! Explore the FAST decision machinery: the threshold schedule ε(l, i)
//! of Eq. 1 and the relative improvement r(X) of Eq. 2 on tensors with
//! different statistics.
//!
//! Run with: `cargo run --release --example precision_schedule`

use fast_dnn::bfp::relative_improvement;
use fast_dnn::fast::{EpsilonSchedule, Setting};
use rand::{Rng, SeedableRng};

fn main() {
    // --- ε(l, i): the promotion threshold -----------------------------------
    println!("== Eq. 1: ε(l, i) = α − β·i/I − β·l/L  (α=0.6, β=0.3) ==\n");
    let s = EpsilonSchedule::paper_default();
    let (total_layers, total_iters) = (20, 1000);
    println!("{:>12} | iter 0   25%   50%   75%   100%", "layer");
    for layer in [0usize, 5, 10, 15, 19] {
        print!("{layer:>12} |");
        for frac in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let iter = (frac * total_iters as f32) as usize;
            print!("  {:.3}", s.epsilon(layer, total_layers, iter, total_iters));
        }
        println!();
    }
    println!("\nlower ε ⇒ easier to promote to the 4-bit mantissa; the threshold");
    println!("falls with both depth and training progress (paper Fig 1 right).");

    // --- r(X): what kind of tensor asks for more precision? -----------------
    println!("\n== Eq. 2: relative improvement r(X) of m=4 over m=2 ==\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let uniform_scale: Vec<f32> = (0..4096).map(|_| rng.gen_range(0.5f32..1.0)).collect();
    let wide_scale: Vec<f32> = (0..4096)
        .map(|_| {
            let e: f32 = rng.gen_range(-8.0..0.0);
            2.0f32.powf(e) * if rng.gen_bool(0.5) { -1.0 } else { 1.0 }
        })
        .collect();
    let near_grid: Vec<f32> = (0..4096)
        .map(|i| if i % 2 == 0 { 0.5 } else { -1.0 })
        .collect();
    println!(
        "grid-aligned values (exact at m=2):  r = {:.4}",
        relative_improvement(&near_grid, 16)
    );
    println!(
        "uniform-scale values:                r = {:.4}",
        relative_improvement(&uniform_scale, 16)
    );
    println!(
        "wide-dynamic-range values:           r = {:.4}",
        relative_improvement(&wide_scale, 16)
    );
    println!("\nr(X) ≥ ε promotes X to 4 bits — tensors with fine structure to lose");
    println!("get the extra chunk, tensors already captured at 2 bits stay cheap.");

    // --- The (W, A, G) cost ladder ------------------------------------------
    println!("\n== Fig 17 legend: the eight settings in cost order ==\n");
    for (i, setting) in Setting::legend_order().iter().enumerate() {
        println!("  {i}: {setting}  relative cost {:.2}", setting.cost());
    }
}
