//! Lifecycle tour: one workload through the whole pipeline.
//!
//! Drives ResNet-lite through the full train → checkpoint → bit-exact
//! resume → frozen compile → concurrent serving → mid-traffic hot-reload
//! lifecycle via `fast_dnn::harness::run_lifecycle` (DESIGN.md §13), then
//! prints what the run observed. Every hand-off invariant — resume
//! bit-identity, compiled≡eval parity, zero dropped requests,
//! bit-transparent reloads — is asserted *inside* the driver, so reaching
//! the report at all is the proof; the conformance suite in
//! `tests/lifecycle.rs` sweeps the same driver over all six zoo workloads
//! and the full mode matrix.
//!
//! Run with: `cargo run --release --example lifecycle_tour`

use fast_dnn::bfp::SrMode;
use fast_dnn::harness::{run_lifecycle, LifecycleConfig, Workload};
use fast_dnn::nn::ExecMode;

fn main() {
    // Integer-domain GEMMs + counter SR: the repo's fastest training and
    // serving configuration, and the one furthest from the fidelity
    // defaults — if the lifecycle contracts hold here, they hold anywhere.
    let cfg = LifecycleConfig::quick(ExecMode::Integer, SrMode::Counter);
    println!(
        "driving {:?} through train -> checkpoint -> resume -> freeze -> serve -> reload",
        Workload::ResNetLite
    );
    println!(
        "  {} head steps, {} tail steps, {} continual-learning rounds x {} steps",
        cfg.head_steps, cfg.tail_steps, cfg.rounds, cfg.round_steps
    );
    println!(
        "  {} replicas serving {} submitters x {} requests per round\n",
        cfg.replicas, cfg.submitters, cfg.requests_per_submitter
    );

    let report = run_lifecycle(Workload::ResNetLite, &cfg);

    println!(
        "cell {} completed with every stage contract held:",
        report.cell
    );
    println!("  loss curve ({} steps):", report.losses.len());
    for (i, loss) in report.losses.iter().enumerate() {
        println!("    step {i:>2}  loss {loss:.6}");
    }
    println!(
        "  samples served:     {} (every submitted request answered)",
        report.served
    );
    println!(
        "  reload applications: {} (replicas x rounds, none failed)",
        report.reloads
    );
    println!(
        "  weight generation:  {} (one hot reload per round)",
        report.generation
    );
}
