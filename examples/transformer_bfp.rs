//! Train the transformer workload under BFP and compare against FP32.
//!
//! The paper's IWSLT14 stand-in: a sequence-transduction task where the
//! model must reverse and rotate token sequences; token accuracy is the
//! BLEU proxy. HighBFP (g=16, m=4, SR gradients) should track FP32 closely
//! while LowBFP (m=2) degrades — Table II's transformer row in miniature.
//!
//! Run with: `cargo run --release --example transformer_bfp`

use fast_dnn::data::SequenceTask;
use fast_dnn::nn::models::{tiny_transformer, TransformerConfig};
use fast_dnn::nn::{
    accuracy_percent, set_uniform_precision, softmax_cross_entropy, Adam, Layer, LayerPrecision,
    Session,
};
use rand::SeedableRng;

fn train(
    precision: LayerPrecision,
    label: &str,
    data: &SequenceTask,
    cfg: TransformerConfig,
) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut model = tiny_transformer(cfg, &mut rng);
    set_uniform_precision(&mut model, precision);
    let mut session = Session::new(0);
    let mut opt = Adam::new(2e-3);
    let epochs = 8;
    for epoch in 0..epochs {
        for (x, labels) in data.train_batches(32, epoch as u64) {
            let logits = model.forward(&x, &mut session);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad, &mut session);
            opt.step(&mut model);
        }
    }
    // Token accuracy on the test split.
    session.train = false;
    let mut correct = 0.0;
    let mut total = 0usize;
    for (x, labels) in data.test_batches(64) {
        let logits = model.forward(&x, &mut session);
        correct += accuracy_percent(&logits, &labels) * labels.len() as f64;
        total += labels.len();
    }
    let acc = correct / total as f64;
    println!("  {label:<28} token accuracy {acc:.1}%");
    acc
}

fn main() {
    let cfg = TransformerConfig {
        vocab: 12,
        d_model: 32,
        heads: 4,
        ff_dim: 64,
        layers: 2,
        seq_len: 8,
    };
    let data = SequenceTask::generate(cfg.vocab, cfg.seq_len, 384, 192, 11);
    println!(
        "sequence reversal task (vocab {}, seq {}), 8 epochs:\n",
        cfg.vocab, cfg.seq_len
    );

    let fp32 = train(LayerPrecision::fp32(), "FP32", &data, cfg);
    let high = train(
        LayerPrecision::bfp_fixed(4),
        "HighBFP (g=16, m=4, SR)",
        &data,
        cfg,
    );
    let low = train(
        LayerPrecision::bfp_fixed(2),
        "LowBFP  (g=16, m=2, SR)",
        &data,
        cfg,
    );

    println!("\nexpected shape (paper Table II, Transformer row):");
    println!("  HighBFP within ~1 point of FP32; LowBFP visibly behind.");
    println!(
        "  measured gaps: HighBFP {:.1}, LowBFP {:.1}",
        fp32 - high,
        fp32 - low
    );
}
