//! Counter-based stochastic rounding: order-free noise, worker-count
//! invariance, and the two-word RNG checkpoint (DESIGN.md §12).
//!
//! Trains a small MLP with stochastic-rounded BFP gradients under
//! `SrMode::Counter`, where every element's rounding noise is a pure
//! function of `(seed, element offset)` instead of a serialized LFSR
//! stream. The run is checkpointed mid-flight — the artifact's session
//! section carries exactly `sr_seed` and `sr_step`, no LFSR words — and
//! resumed bit-exactly. The same run is then repeated under a different
//! GEMM worker-pool size to show the trajectory does not depend on how the
//! stochastic rounding was sharded.
//!
//! Run with: `cargo run --release --example counter_sr_resume`

use fast_dnn::ckpt::{Artifact, StateDict, SECTION_SESSION};
use fast_dnn::nn::models::mlp;
use fast_dnn::nn::{
    set_uniform_precision, Layer, LayerPrecision, Sequential, Sgd, SrMode, Trainer,
};
use fast_dnn::tensor::{parallelism, set_parallelism, Parallelism, Tensor};
use rand::SeedableRng;

const STEPS: usize = 10;
const SPLIT: usize = 5;

fn build_model() -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let mut model = mlp(&[8, 32, 4], &mut rng);
    // The paper's training setting: nearest-rounded weights/activations,
    // stochastic-rounded gradients — the noise source under study.
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
    model
}

fn build_trainer() -> Trainer {
    let mut trainer = Trainer::new(build_model(), Sgd::new(0.05, 0.9, 1e-4), 55);
    trainer.session.sr_mode = SrMode::Counter;
    trainer
}

fn batch(step: usize) -> (Tensor, Vec<usize>) {
    let x = Tensor::from_vec(
        vec![8, 8],
        (0..64)
            .map(|i| ((i * 53 + step * 97) % 241) as f32 * 0.0083 - 1.0)
            .collect(),
    );
    let labels = (0..8).map(|i| (i + step) % 4).collect();
    (x, labels)
}

fn param_bits(model: &mut Sequential) -> Vec<u32> {
    let mut bits = Vec::new();
    model.visit_params(&mut |p| bits.extend(p.value.data().iter().map(|v| v.to_bits())));
    bits
}

/// One full counter-mode run; returns per-step loss bits + final weights.
fn full_run() -> (Vec<u64>, Vec<u32>) {
    let mut trainer = build_trainer();
    let mut losses = Vec::new();
    for s in 0..STEPS {
        let (x, labels) = batch(s);
        losses.push(
            trainer
                .step_classification(&x, &labels, &mut fast_dnn::nn::NoopHook)
                .loss
                .to_bits(),
        );
    }
    let params = param_bits(&mut trainer.model);
    (losses, params)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Uninterrupted counter-mode reference.
    let (reference_losses, reference_params) = full_run();

    // Interrupted twin: train to the midpoint and checkpoint.
    let mut trainer = build_trainer();
    for s in 0..SPLIT {
        let (x, labels) = batch(s);
        let _ = trainer.step_classification(&x, &labels, &mut fast_dnn::nn::NoopHook);
    }
    let artifact = trainer.checkpoint(None);
    drop(trainer);

    // The artifact self-describes its noise source: the session section's
    // RNG state is exactly (sr_seed, sr_step). An LFSR-mode run would have
    // written the four words rng0..rng3 here instead.
    let session = StateDict::from_bytes(artifact.require(SECTION_SESSION)?)?;
    let mut rng_keys: Vec<String> = session
        .iter()
        .map(|(k, _)| k.to_string())
        .filter(|k| k.starts_with("sr_") || k.starts_with("rng"))
        .collect();
    rng_keys.sort_unstable();
    println!("RNG state on the wire: {rng_keys:?}");
    assert_eq!(rng_keys, ["sr_seed", "sr_step"]);

    // Resume from bytes into freshly constructed objects. The key names
    // select counter mode; nothing needs to be configured on the way back.
    let bytes = artifact.to_bytes();
    let artifact = Artifact::from_bytes(&bytes)?;
    let mut trainer = Trainer::resume(build_model(), Sgd::new(0.05, 0.9, 1e-4), &artifact, None)?;
    assert_eq!(trainer.session.sr_mode, SrMode::Counter);
    println!(
        "resumed at iteration {} in {:?} mode",
        trainer.iterations(),
        trainer.session.sr_mode
    );
    for (s, &expected) in reference_losses.iter().enumerate().skip(SPLIT) {
        let (x, labels) = batch(s);
        let loss = trainer
            .step_classification(&x, &labels, &mut fast_dnn::nn::NoopHook)
            .loss;
        println!("step {s:2}: loss {loss:.6}");
        assert_eq!(loss.to_bits(), expected, "loss diverged at step {s}");
    }
    assert_eq!(
        param_bits(&mut trainer.model),
        reference_params,
        "final weights must be bit-identical to the uninterrupted run"
    );
    println!("resume is bit-exact: {} steps replayed", STEPS - SPLIT);

    // Worker invariance: counter-mode noise is keyed by element offset, so
    // sharding the stochastic rounding across a thread pool cannot move a
    // single bit (under the LFSR, SR is pinned to one sequential stream).
    let saved = parallelism();
    for workers in [1usize, 4] {
        set_parallelism(Parallelism::new(workers));
        let (losses, params) = full_run();
        assert_eq!(
            losses, reference_losses,
            "losses differ under {workers} workers"
        );
        assert_eq!(
            params, reference_params,
            "weights differ under {workers} workers"
        );
        println!("{workers}-worker run: bit-identical");
    }
    set_parallelism(saved);
    println!("counter-mode SR: order-free, parallel, two-word checkpoint");
    Ok(())
}
