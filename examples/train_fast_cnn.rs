//! Train a CNN with the FAST-Adaptive algorithm (paper Algorithm 1).
//!
//! Builds a ResNet-style CNN on a synthetic image task, attaches the
//! FAST precision controller and the hardware cost meter, and reports the
//! precision schedule it discovered plus the simulated speedup over an
//! FP32 accelerator of equal silicon area.
//!
//! Run with: `cargo run --release --example train_fast_cnn`

use fast_dnn::data::SyntheticImages;
use fast_dnn::fast::{CostMeter, EpsilonSchedule, FastController, Setting};
use fast_dnn::hw::SystemConfig;
use fast_dnn::nn::models::{resnet_lite, ResNetConfig};
use fast_dnn::nn::{NoopHook, Sgd, Trainer};
use rand::SeedableRng;

fn main() {
    let classes = 10;
    let data = SyntheticImages::generate(classes, 16, 320, 160, 42);
    let epochs = 5;
    let batch = 32;
    let iters = epochs * data.train_len().div_ceil(batch);

    // --- FAST-Adaptive run -------------------------------------------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let model = resnet_lite(ResNetConfig::resnet20(8, classes), &mut rng);
    let mut trainer = Trainer::new(model, Sgd::new(0.05, 0.9, 5e-4), 0);
    let mut controller = FastController::new(iters, EpsilonSchedule::paper_default());
    let mut meter = CostMeter::new(SystemConfig::fast());

    println!("training ResNet-20-lite with FAST-Adaptive for {epochs} epochs...");
    for epoch in 0..epochs {
        let mut loss = 0.0;
        let mut n = 0;
        for (x, labels) in data.train_batches(batch, epoch as u64) {
            // The controller rides as the step's hook so the trainer keeps
            // sensitivity caching on (TrainHook::wants_sensitivity) — the
            // tensors Algorithm 1 reads for its A/G decisions.
            let stats = trainer.step_classification(&x, &labels, &mut controller);
            meter.record(&mut trainer.model);
            loss += stats.loss;
            n += 1;
        }
        let acc = trainer.evaluate_classification(&data.test_batches(64));
        println!(
            "  epoch {:>2}: loss {:.3}  val acc {:.1}%  sim time {:.4}s",
            epoch + 1,
            loss / n as f64,
            acc,
            meter.total_seconds()
        );
    }

    // --- What did the controller decide? -----------------------------------
    println!("\nprecision settings discovered (first/last thirds of training):");
    let trace = &controller.trace;
    let max_iter = trace.samples.last().map(|(i, _)| i + 1).unwrap_or(1);
    for layer in (0..trace.layer_count()).step_by(trace.layer_count().div_ceil(6)) {
        let early = trace.mean_legend_index(layer, 0, max_iter / 3);
        let late = trace.mean_legend_index(layer, 2 * max_iter / 3, max_iter);
        println!(
            "  layer {:>2} ({}): early {:.1} -> late {:.1}  (legend 0={} ... 7={})",
            layer,
            trace.layer_labels.get(layer).cloned().unwrap_or_default(),
            early,
            late,
            Setting::legend_order()[0],
            Setting::legend_order()[7],
        );
    }

    // --- FP32 accelerator of the same area, for the speedup headline -------
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let model = resnet_lite(ResNetConfig::resnet20(8, classes), &mut rng);
    let mut fp32_trainer = Trainer::new(model, Sgd::new(0.05, 0.9, 5e-4), 0);
    let mut fp32_meter = CostMeter::new(SystemConfig::fp32());
    for epoch in 0..epochs {
        for (x, labels) in data.train_batches(batch, epoch as u64) {
            let _ = fp32_trainer.step_classification(&x, &labels, &mut NoopHook);
            fp32_meter.record(&mut fp32_trainer.model);
        }
    }
    let speedup = fp32_meter.total_seconds() / meter.total_seconds();
    println!("\nsimulated hardware time for {iters} iterations:");
    println!(
        "  FAST system (256x64 fMAC): {:.4}s, {:.2} J",
        meter.total_seconds(),
        meter.total_energy_j
    );
    println!(
        "  FP32 system (equal area):  {:.4}s, {:.2} J",
        fp32_meter.total_seconds(),
        fp32_meter.total_energy_j
    );
    println!("  per-iteration speedup: {speedup:.1}x (paper reports 2-6x TTA across models)");
}
