//! Procedural multi-class image dataset (the ImageNet/CIFAR stand-in).
//!
//! Each class is defined by an oriented sinusoidal grating (class-specific
//! orientation and frequency) and a class colour tint; samples add a random
//! phase, per-pixel Gaussian-ish noise and slight amplitude jitter. The task
//! is easy enough for a narrow ResNet to learn in minutes yet hard enough
//! that quantization noise measurably moves accuracy — which is what the
//! paper's format-comparison experiments require.

use crate::epoch_order;
use fast_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated image-classification dataset in NCHW f32 layout.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    images: Vec<f32>,
    labels: Vec<usize>,
    train_n: usize,
    test_n: usize,
    classes: usize,
    size: usize,
    seed: u64,
}

impl SyntheticImages {
    /// Generates `train_n + test_n` images of `classes` classes at
    /// `size × size × 3`.
    pub fn generate(classes: usize, size: usize, train_n: usize, test_n: usize, seed: u64) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(size >= 8, "images should be at least 8x8");
        let total = train_n + test_n;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = vec![0.0f32; total * 3 * size * size];
        let mut labels = Vec::with_capacity(total);
        for i in 0..total {
            let class = rng.gen_range(0..classes);
            labels.push(class);
            Self::render(
                &mut images[i * 3 * size * size..(i + 1) * 3 * size * size],
                class,
                classes,
                size,
                &mut rng,
            );
        }
        SyntheticImages {
            images,
            labels,
            train_n,
            test_n,
            classes,
            size,
            seed,
        }
    }

    fn render(out: &mut [f32], class: usize, classes: usize, size: usize, rng: &mut StdRng) {
        let theta = std::f32::consts::PI * class as f32 / classes as f32;
        let freq = 1.5 + (class % 3) as f32;
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let amp: f32 = rng.gen_range(0.18..0.32);
        // Class colour from a fixed palette rotation.
        let hue = class as f32 / classes as f32;
        let tint = [
            0.5 + 0.5 * (std::f32::consts::TAU * hue).cos(),
            0.5 + 0.5 * (std::f32::consts::TAU * (hue + 1.0 / 3.0)).cos(),
            0.5 + 0.5 * (std::f32::consts::TAU * (hue + 2.0 / 3.0)).cos(),
        ];
        let (s, c) = theta.sin_cos();
        let plane = size * size;
        for y in 0..size {
            for x in 0..size {
                let u = (x as f32 * c + y as f32 * s) / size as f32;
                let wave = (std::f32::consts::TAU * freq * u + phase).sin();
                for ch in 0..3 {
                    let noise: f32 = rng.gen_range(-0.35..0.35);
                    out[ch * plane + y * size + x] =
                        (0.5 + amp * wave * tint[ch] + noise).clamp(0.0, 1.0);
                }
            }
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.size
    }

    /// Number of training images.
    pub fn train_len(&self) -> usize {
        self.train_n
    }

    /// Number of test images.
    pub fn test_len(&self) -> usize {
        self.test_n
    }

    fn batch_from(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let plane = 3 * self.size * self.size;
        let mut data = Vec::with_capacity(indices.len() * plane);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images[i * plane..(i + 1) * plane]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(vec![indices.len(), 3, self.size, self.size], data),
            labels,
        )
    }

    /// Shuffled training batches for the given epoch.
    pub fn train_batches(&self, batch_size: usize, epoch: u64) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0);
        let order: Vec<usize> = epoch_order(self.train_n, self.seed, epoch);
        order
            .chunks(batch_size)
            .map(|chunk| self.batch_from(chunk))
            .collect()
    }

    /// Deterministic test batches.
    pub fn test_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0);
        let idx: Vec<usize> = (self.train_n..self.train_n + self.test_n).collect();
        idx.chunks(batch_size)
            .map(|chunk| self.batch_from(chunk))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let a = SyntheticImages::generate(4, 8, 16, 8, 42);
        let b = SyntheticImages::generate(4, 8, 16, 8, 42);
        assert_eq!(a.images, b.images);
        let batches = a.train_batches(4, 0);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].0.shape(), &[4, 3, 8, 8]);
        assert_eq!(a.test_batches(8).len(), 1);
    }

    #[test]
    fn pixel_range_is_normalized() {
        let d = SyntheticImages::generate(4, 8, 8, 0, 1);
        assert!(d.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean class images should differ measurably more across classes
        // than noise within a class — a sanity check that the task is
        // learnable.
        let d = SyntheticImages::generate(2, 16, 200, 0, 7);
        let plane = 3 * 16 * 16;
        let mut means = vec![vec![0.0f64; plane]; 2];
        let mut counts = [0usize; 2];
        for i in 0..200 {
            let cls = d.labels[i];
            counts[cls] += 1;
            for (p, mean) in means[cls].iter_mut().enumerate() {
                *mean += d.images[i * plane + p] as f64;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= n as f64;
            }
        }
        let dist: f64 = means[0]
            .iter()
            .zip(&means[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "class means too close: {dist}");
    }

    #[test]
    fn epochs_shuffle_differently() {
        let d = SyntheticImages::generate(4, 8, 32, 0, 3);
        let e0 = d.train_batches(8, 0);
        let e1 = d.train_batches(8, 1);
        assert_ne!(e0[0].1, e1[0].1);
    }
}
