//! Gaussian-cluster point clouds for MLP sanity tasks and the quickstart
//! example.

use crate::epoch_order;
use fast_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `k` Gaussian clusters in `dim` dimensions, one class per cluster.
#[derive(Debug, Clone)]
pub struct GaussianClusters {
    points: Vec<f32>,
    labels: Vec<usize>,
    dim: usize,
    train_n: usize,
    test_n: usize,
    seed: u64,
}

impl GaussianClusters {
    /// Generates clusters with centers on a scaled hypercube and unit-ish
    /// noise (`spread` controls difficulty).
    pub fn generate(
        classes: usize,
        dim: usize,
        train_n: usize,
        test_n: usize,
        spread: f32,
        seed: u64,
    ) -> Self {
        assert!(classes >= 2 && dim >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Class centers: deterministic directions.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|c| {
                (0..dim)
                    .map(|d| {
                        let angle = (c * dim + d) as f32 * 2.399_963; // golden angle
                        2.0 * angle.sin()
                    })
                    .collect()
            })
            .collect();
        let total = train_n + test_n;
        let mut points = Vec::with_capacity(total * dim);
        let mut labels = Vec::with_capacity(total);
        for _ in 0..total {
            let c = rng.gen_range(0..classes);
            labels.push(c);
            for &center in centers[c].iter().take(dim) {
                let noise: f32 = rng.gen_range(-spread..spread);
                points.push(center + noise);
            }
        }
        GaussianClusters {
            points,
            labels,
            dim,
            train_n,
            test_n,
            seed,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn batch_from(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.points[i * self.dim..(i + 1) * self.dim]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(vec![indices.len(), self.dim], data),
            labels,
        )
    }

    /// Shuffled training batches for an epoch.
    pub fn train_batches(&self, batch_size: usize, epoch: u64) -> Vec<(Tensor, Vec<usize>)> {
        let order = epoch_order(self.train_n, self.seed, epoch);
        order
            .chunks(batch_size)
            .map(|c| self.batch_from(c))
            .collect()
    }

    /// Deterministic test batches.
    pub fn test_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        let idx: Vec<usize> = (self.train_n..self.train_n + self.test_n).collect();
        idx.chunks(batch_size).map(|c| self.batch_from(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = GaussianClusters::generate(3, 4, 10, 5, 0.5, 1);
        let b = GaussianClusters::generate(3, 4, 10, 5, 0.5, 1);
        assert_eq!(a.points, b.points);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn batch_shapes() {
        let d = GaussianClusters::generate(2, 3, 7, 3, 0.5, 2);
        let batches = d.train_batches(4, 0);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0.shape(), &[4, 3]);
        assert_eq!(batches[1].0.shape(), &[3, 3]);
    }
}
