//! Deterministic synthetic datasets for the FAST reproduction.
//!
//! These stand in for the paper's datasets (the substitution table is in
//! DESIGN.md §2):
//!
//! * [`SyntheticImages`] — multi-class procedural images (oriented
//!   gratings + class colour + noise) replacing ImageNet / CIFAR-10 for the
//!   CNN workloads.
//! * [`GaussianClusters`] — separable point clouds for MLP sanity tasks.
//! * [`SequenceTask`] — noisy sequence reversal over a token vocabulary,
//!   replacing IWSLT14 De-En; token accuracy is the BLEU proxy.
//! * [`SyntheticDetection`] — rectangles-on-canvas detection scenes
//!   replacing PASCAL VOC for the YOLO workload.
//!
//! Every dataset is generated from a seed and iterates deterministically, so
//! experiment runs are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clusters;
mod detection;
mod images;
mod seq;

pub use clusters::GaussianClusters;
pub use detection::SyntheticDetection;
pub use images::SyntheticImages;
pub use seq::SequenceTask;

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces a deterministic shuffled index order for an epoch.
pub(crate) fn epoch_order(n: usize, base_seed: u64, epoch: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed ^ (epoch.wrapping_mul(0x9E37_79B9)));
    idx.shuffle(&mut rng);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_order_is_deterministic_and_epoch_dependent() {
        let a = epoch_order(10, 1, 0);
        let b = epoch_order(10, 1, 0);
        let c = epoch_order(10, 1, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
