//! Synthetic object-detection scenes (the PASCAL VOC stand-in).
//!
//! Images contain one or two axis-aligned filled rectangles on a noisy
//! background; the rectangle's class determines its colour. Ground truth is
//! expressed directly as [`GtBox`] values for the TinyYolo loss/mAP code.

use crate::epoch_order;
use fast_nn::models::GtBox;
use fast_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated detection dataset.
#[derive(Debug, Clone)]
pub struct SyntheticDetection {
    images: Vec<f32>,
    boxes: Vec<Vec<GtBox>>,
    size: usize,
    classes: usize,
    train_n: usize,
    test_n: usize,
    seed: u64,
}

impl SyntheticDetection {
    /// Generates scenes of `size × size × 3` with up to two objects drawn
    /// from `classes` colour classes.
    pub fn generate(classes: usize, size: usize, train_n: usize, test_n: usize, seed: u64) -> Self {
        assert!((1..=6).contains(&classes), "palette supports 1..=6 classes");
        assert!(size >= 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let total = train_n + test_n;
        let plane = size * size;
        let mut images = vec![0.0f32; total * 3 * plane];
        let mut boxes = Vec::with_capacity(total);
        let palette: [[f32; 3]; 6] = [
            [0.9, 0.2, 0.2],
            [0.2, 0.9, 0.2],
            [0.2, 0.2, 0.9],
            [0.9, 0.9, 0.2],
            [0.9, 0.2, 0.9],
            [0.2, 0.9, 0.9],
        ];
        for i in 0..total {
            let img = &mut images[i * 3 * plane..(i + 1) * 3 * plane];
            for v in img.iter_mut() {
                *v = rng.gen_range(0.35..0.65);
            }
            let n_obj = rng.gen_range(1..=2usize);
            let mut gt = Vec::with_capacity(n_obj);
            for _ in 0..n_obj {
                let class = rng.gen_range(0..classes);
                let w = rng.gen_range(0.2..0.45f32);
                let h = rng.gen_range(0.2..0.45f32);
                let cx = rng.gen_range(w / 2.0..1.0 - w / 2.0);
                let cy = rng.gen_range(h / 2.0..1.0 - h / 2.0);
                let x0 = ((cx - w / 2.0) * size as f32) as usize;
                let x1 = (((cx + w / 2.0) * size as f32) as usize).min(size - 1);
                let y0 = ((cy - h / 2.0) * size as f32) as usize;
                let y1 = (((cy + h / 2.0) * size as f32) as usize).min(size - 1);
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        for ch in 0..3 {
                            let noise: f32 = rng.gen_range(-0.05..0.05);
                            img[ch * plane + y * size + x] =
                                (palette[class][ch] + noise).clamp(0.0, 1.0);
                        }
                    }
                }
                gt.push(GtBox {
                    cx,
                    cy,
                    w,
                    h,
                    class,
                });
            }
            boxes.push(gt);
        }
        SyntheticDetection {
            images,
            boxes,
            size,
            classes,
            train_n,
            test_n,
            seed,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.size
    }

    fn batch_from(&self, indices: &[usize]) -> (Tensor, Vec<Vec<GtBox>>) {
        let plane = 3 * self.size * self.size;
        let mut data = Vec::with_capacity(indices.len() * plane);
        let mut gts = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images[i * plane..(i + 1) * plane]);
            gts.push(self.boxes[i].clone());
        }
        (
            Tensor::from_vec(vec![indices.len(), 3, self.size, self.size], data),
            gts,
        )
    }

    /// Shuffled training batches.
    pub fn train_batches(&self, batch_size: usize, epoch: u64) -> Vec<(Tensor, Vec<Vec<GtBox>>)> {
        let order = epoch_order(self.train_n, self.seed, epoch);
        order
            .chunks(batch_size)
            .map(|c| self.batch_from(c))
            .collect()
    }

    /// Deterministic test batches.
    pub fn test_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<Vec<GtBox>>)> {
        let idx: Vec<usize> = (self.train_n..self.train_n + self.test_n).collect();
        idx.chunks(batch_size).map(|c| self.batch_from(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxes_are_normalized_and_within_bounds() {
        let d = SyntheticDetection::generate(3, 16, 20, 5, 9);
        for gts in &d.boxes {
            assert!(!gts.is_empty() && gts.len() <= 2);
            for b in gts {
                assert!(b.cx - b.w / 2.0 >= -1e-6 && b.cx + b.w / 2.0 <= 1.0 + 1e-6);
                assert!(b.cy - b.h / 2.0 >= -1e-6 && b.cy + b.h / 2.0 <= 1.0 + 1e-6);
                assert!(b.class < 3);
            }
        }
    }

    #[test]
    fn object_pixels_match_palette() {
        let d = SyntheticDetection::generate(1, 16, 4, 0, 2);
        // Class 0 is red-ish: inside the box, channel 0 should be high.
        let plane = 16 * 16;
        for (i, gts) in d.boxes.iter().enumerate() {
            let b = gts[0];
            let x = (b.cx * 16.0) as usize;
            let y = (b.cy * 16.0) as usize;
            let r = d.images[i * 3 * plane + y * 16 + x];
            assert!(r > 0.7, "center pixel red channel {r}");
        }
    }

    #[test]
    fn batching_shapes() {
        let d = SyntheticDetection::generate(2, 16, 9, 3, 4);
        let b = d.train_batches(4, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].0.shape(), &[4, 3, 16, 16]);
        assert_eq!(b[0].1.len(), 4);
    }
}
