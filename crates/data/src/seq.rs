//! Synthetic sequence-transduction task (the IWSLT14 stand-in).
//!
//! Inputs are random token sequences; the target is the *reversed* sequence
//! with a small deterministic token rotation, so the model must use
//! positional information and token identity — the two capabilities the
//! transformer's attention and embeddings provide. Token accuracy is the
//! BLEU proxy (DESIGN.md §2).

use crate::epoch_order;
use fast_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated sequence-to-sequence dataset with fixed-length sequences.
#[derive(Debug, Clone)]
pub struct SequenceTask {
    inputs: Vec<usize>,  // (n, seq)
    targets: Vec<usize>, // (n, seq)
    vocab: usize,
    seq_len: usize,
    train_n: usize,
    test_n: usize,
    seed: u64,
}

impl SequenceTask {
    /// Generates a reversal task over `vocab` tokens.
    pub fn generate(
        vocab: usize,
        seq_len: usize,
        train_n: usize,
        test_n: usize,
        seed: u64,
    ) -> Self {
        assert!(vocab >= 4, "vocab too small");
        assert!(seq_len >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let total = train_n + test_n;
        let mut inputs = Vec::with_capacity(total * seq_len);
        let mut targets = Vec::with_capacity(total * seq_len);
        for _ in 0..total {
            let seq: Vec<usize> = (0..seq_len).map(|_| rng.gen_range(0..vocab)).collect();
            for &t in &seq {
                inputs.push(t);
            }
            for i in 0..seq_len {
                // Reverse plus a +1 token rotation ("translation").
                targets.push((seq[seq_len - 1 - i] + 1) % vocab);
            }
        }
        SequenceTask {
            inputs,
            targets,
            vocab,
            seq_len,
            train_n,
            test_n,
            seed,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    fn batch_from(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let t = self.seq_len;
        let mut x = Vec::with_capacity(indices.len() * t);
        let mut y = Vec::with_capacity(indices.len() * t);
        for &i in indices {
            x.extend(self.inputs[i * t..(i + 1) * t].iter().map(|&v| v as f32));
            y.extend_from_slice(&self.targets[i * t..(i + 1) * t]);
        }
        (Tensor::from_vec(vec![indices.len(), t], x), y)
    }

    /// Shuffled training batches: `(tokens (B, T), flat labels (B·T))`.
    pub fn train_batches(&self, batch_size: usize, epoch: u64) -> Vec<(Tensor, Vec<usize>)> {
        let order = epoch_order(self.train_n, self.seed, epoch);
        order
            .chunks(batch_size)
            .map(|c| self.batch_from(c))
            .collect()
    }

    /// Deterministic test batches.
    pub fn test_batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        let idx: Vec<usize> = (self.train_n..self.train_n + self.test_n).collect();
        idx.chunks(batch_size).map(|c| self.batch_from(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_is_rotated_reversal() {
        let d = SequenceTask::generate(10, 4, 1, 0, 3);
        let (x, y) = d.train_batches(1, 0).remove(0);
        let xs: Vec<usize> = x.data().iter().map(|&v| v as usize).collect();
        for i in 0..4 {
            assert_eq!(y[i], (xs[3 - i] + 1) % 10);
        }
    }

    #[test]
    fn shapes_and_label_flattening() {
        let d = SequenceTask::generate(8, 5, 6, 2, 1);
        let batches = d.train_batches(4, 0);
        assert_eq!(batches[0].0.shape(), &[4, 5]);
        assert_eq!(batches[0].1.len(), 20);
        assert_eq!(d.test_batches(2).len(), 1);
    }
}
