//! The mergeable log-bucketed latency histogram and its lock-free twin.
//!
//! [`LatencyHistogram`] is the plain, single-owner variant (one per worker,
//! merged at shutdown — the shape `fast_serve` has used since DESIGN.md §14);
//! [`AtomicHistogram`] is the shared variant behind a registry
//! [`Histogram`](crate::Histogram) handle, recording with relaxed atomics so
//! hot paths never take a lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: 16 exact small values plus 8 logarithmic
/// sub-buckets per power of two up to `u64::MAX` nanoseconds.
pub(crate) const HIST_BUCKETS: usize = 496;

/// A mergeable log-bucketed latency histogram (nanosecond samples).
///
/// Values below 16 ns are exact; above that each power of two is split into
/// 8 sub-buckets, so any reported percentile is within ~6% of the true
/// sample. Memory is a fixed 4 KiB per histogram regardless of sample
/// count, which is what lets every worker keep one per latency component
/// without unbounded growth under sustained load.
///
/// Counts saturate instead of wrapping: merging histograms that together
/// exceed `u64::MAX` samples pins at the maximum rather than silently
/// restarting from zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
        }
    }
}

pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let b = 63 - v.leading_zeros() as usize; // ≥ 4
        let sub = ((v >> (b - 3)) & 7) as usize;
        16 + (b - 4) * 8 + sub
    }
}

/// Midpoint of the value range a bucket covers.
pub(crate) fn bucket_value(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let b = 4 + (idx - 16) / 8;
        let sub = ((idx - 16) % 8) as u64;
        let width = 1u64 << (b - 3);
        (1u64 << b) + sub * width + width / 2
    }
}

impl LatencyHistogram {
    /// Records one sample (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Records `n` samples of the same value (nanoseconds). Counts and the
    /// running sum saturate at `u64::MAX`.
    pub fn record_n(&mut self, ns: u64, n: u64) {
        let idx = bucket_index(ns);
        self.counts[idx] = self.counts[idx].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(ns.saturating_mul(n));
    }

    /// Adds every sample of `other` into `self` (saturating).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c = c.saturating_add(*o);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded sample values in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Mean sample value in nanoseconds, or `None` if the histogram is
    /// empty.
    pub fn mean_ns(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// The `p`-th percentile in nanoseconds (`p` in `[0, 1]`; e.g. `0.99`),
    /// or `None` if the histogram is empty.
    pub fn percentile_ns(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_value(idx));
            }
        }
        Some(bucket_value(HIST_BUCKETS - 1))
    }

    /// Convenience: the `p`-th percentile in microseconds, or `None` if the
    /// histogram is empty.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        self.percentile_ns(p).map(|ns| ns as f64 / 1000.0)
    }

    /// Non-empty buckets as `(bucket index, count)` pairs, in index order.
    /// The exchange format behind the JSON snapshot: round-trips exactly and
    /// stays mergeable.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuilds a histogram from `(bucket index, count)` pairs plus the
    /// recorded sample sum (the inverse of [`Self::nonzero_buckets`]).
    /// Out-of-range indices are an error.
    pub fn from_buckets(
        buckets: impl IntoIterator<Item = (usize, u64)>,
        sum_ns: u64,
    ) -> Result<Self, String> {
        let mut h = LatencyHistogram::default();
        for (idx, c) in buckets {
            if idx >= HIST_BUCKETS {
                return Err(format!("histogram bucket index {idx} out of range"));
            }
            h.counts[idx] = h.counts[idx].saturating_add(c);
            h.total = h.total.saturating_add(c);
        }
        h.sum = sum_ns;
        Ok(h)
    }
}

/// Lock-free histogram: the shared-ownership twin of [`LatencyHistogram`],
/// recorded into concurrently with relaxed atomics and snapshotted into the
/// plain struct for percentile queries, merging and export.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; HIST_BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds). Relaxed ordering: totals are only
    /// read by snapshot/export paths, never used for synchronization.
    pub fn record(&self, ns: u64) {
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Copies the current counts into a plain mergeable histogram.
    ///
    /// Concurrent recorders may land between bucket reads; the snapshot is
    /// a consistent-enough view for export (each bucket is individually
    /// exact, the total is re-derived from the buckets).
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        let mut total = 0u64;
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            let c = src.load(Ordering::Relaxed);
            *dst = c;
            total = total.saturating_add(c);
        }
        h.total = total;
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_track_samples() {
        let mut h = LatencyHistogram::default();
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1 µs .. 1 ms, uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile_ns(0.50).unwrap();
        let p99 = h.percentile_ns(0.99).unwrap();
        // Log buckets guarantee ~6% resolution.
        assert!((400_000..=600_000).contains(&p50), "p50 {p50}");
        assert!((930_000..=1_100_000).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::default();
        for v in [0u64, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.percentile_ns(0.0), Some(0));
        assert_eq!(h.percentile_ns(1.0), Some(15));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile_ns(1.0).unwrap() > 900_000);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(0.99), None);
        assert_eq!(h.percentile_us(0.99), None);
        assert_eq!(h.mean_ns(), None);
    }

    #[test]
    fn empty_merge_empty_stays_empty() {
        let mut a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.sum_ns(), 0);
        assert_eq!(a.percentile_ns(0.5), None);
        assert_eq!(a, LatencyHistogram::default());
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut a = LatencyHistogram::default();
        a.record_n(42, u64::MAX);
        assert_eq!(a.count(), u64::MAX);
        // One more sample must not wrap the total or the bucket back to 0.
        a.record(42);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.percentile_ns(1.0), Some(bucket_value(bucket_index(42))));
        // Merging two saturated histograms saturates too.
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.sum_ns(), u64::MAX);
    }

    #[test]
    fn bucket_boundary_values_stay_in_their_bucket() {
        // 15 is the last exact bucket; 16 opens the first log bucket.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert!(bucket_index(16) != bucket_index(15));
        // Power-of-two boundaries: 2^b lands in a different bucket from
        // 2^b - 1, and the representative stays within the ~6% envelope.
        for b in [5u32, 10, 20, 40, 63] {
            let lo = (1u64 << b) - 1;
            let hi = 1u64 << b;
            assert_ne!(bucket_index(lo), bucket_index(hi), "boundary 2^{b}");
            for v in [lo, hi] {
                let rep = bucket_value(bucket_index(v));
                assert!(
                    (rep as f64) / (v as f64) < 1.15 && (v as f64) / (rep as f64) < 1.15,
                    "v {v} rep {rep}"
                );
            }
        }
        // The top of the u64 range maps to the last bucket, not past it.
        assert!(bucket_index(u64::MAX) < HIST_BUCKETS);
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert!(h.percentile_ns(1.0).is_some());
    }

    #[test]
    fn bucket_value_is_within_bucket() {
        for v in [1u64, 17, 1000, 123_456, u64::from(u32::MAX) * 7] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            // The representative is within a factor of ~1.13 of any member.
            assert!(
                (rep as f64) / (v as f64) < 1.15 && (v as f64) / (rep as f64) < 1.15,
                "v {v} rep {rep}"
            );
        }
    }

    #[test]
    fn nonzero_buckets_round_trip() {
        let mut h = LatencyHistogram::default();
        for v in [0u64, 15, 16, 1000, 123_456_789] {
            h.record_n(v, 3);
        }
        let pairs: Vec<_> = h.nonzero_buckets().collect();
        let back = LatencyHistogram::from_buckets(pairs, h.sum_ns()).unwrap();
        assert_eq!(back, h);
        assert!(LatencyHistogram::from_buckets([(HIST_BUCKETS, 1)], 0).is_err());
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = LatencyHistogram::default();
        for v in [1u64, 100, 10_000, 1_000_000] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
        assert_eq!(a.count(), 4);
    }
}
