//! Unified telemetry for the FAST reproduction: one lock-free metrics core
//! shared by training, quantization and serving (DESIGN.md §15).
//!
//! The crate is dependency-free on purpose — every layer (`fast_tensor`
//! GEMM kernels, `fast_nn` quantization and the trainer, `fast_core`'s
//! precision controller, `fast_serve`'s dispatcher) imports it without
//! cycles, and nothing heavier than a relaxed atomic ever lands on a hot
//! path.
//!
//! Three primitives, one namespace:
//!
//! * **Metric handles** — [`Counter`], [`Gauge`] and [`Histogram`] are
//!   `Arc`-backed atomics handed out by a [`Registry`]. Registering the
//!   same `(name, labels)` twice returns the same series, so static call
//!   sites (`OnceLock<Counter>`) and per-model serving metrics coexist.
//!   The 496-bucket [`LatencyHistogram`] (~6% resolution, 4 KiB, mergeable)
//!   is the shared histogram representation; [`AtomicHistogram`] is its
//!   lock-free recording twin.
//! * **Spans** — [`span!`] plants a `static` site that is a relaxed
//!   load + branch when no collector is installed ([`set_collection`]),
//!   and a `fast_span_ns{span="..."}` histogram sample when one is.
//!   Collection is bit-invisible: it reads clocks and bumps atomics, never
//!   touches RNG streams or tensor data.
//! * **Exporters** — [`Registry::metrics_text`] renders Prometheus text
//!   exposition (histograms as quantile summaries);
//!   [`Registry::snapshot`] captures a [`Snapshot`] whose JSON encoding
//!   ([`Snapshot::to_json`]/[`Snapshot::from_json`]) round-trips exactly,
//!   carrying raw histogram buckets so post-hoc merging stays possible.
//!
//! ```
//! use fast_telemetry::{Registry, Snapshot};
//!
//! let served = Registry::global().counter(
//!     "doc_requests_total",
//!     "requests served",
//!     &[("model", "mlp")],
//! );
//! served.inc();
//! let _span = fast_telemetry::span!("doc.example");
//! let snap = Registry::global().snapshot();
//! let back = Snapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(back, snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod snapshot;
mod span;

pub use hist::{AtomicHistogram, LatencyHistogram};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use snapshot::{Snapshot, SnapshotEntry, SnapshotValue};
pub use span::{collection_enabled, set_collection, SpanGuard, SpanSite};
