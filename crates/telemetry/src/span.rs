//! Near-zero-overhead scoped span timers.
//!
//! A span site is a `static` embedded at the instrumentation point by the
//! [`span!`](crate::span!) macro. When no collector is installed
//! ([`set_collection`]`(false)`, the default), entering a span is one
//! relaxed atomic load and a branch — no clock read, no allocation, no
//! registry traffic — which is what makes it safe to leave in GEMM-dispatch
//! and quantization hot paths permanently. Installing a collector turns
//! every site into a `fast_span_ns{span="<name>"}` histogram series on the
//! global registry.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::{Histogram, Registry};

static COLLECTING: AtomicBool = AtomicBool::new(false);

/// Installs (`true`) or removes (`false`) the span collector process-wide.
///
/// Span timing only changes what is *recorded*, never what is computed:
/// toggling this mid-run is safe and bit-invisible to training and serving
/// results (pinned by `tests/determinism.rs` and the lifecycle suite).
pub fn set_collection(enabled: bool) {
    COLLECTING.store(enabled, Ordering::Relaxed);
}

/// Whether a span collector is currently installed.
pub fn collection_enabled() -> bool {
    COLLECTING.load(Ordering::Relaxed)
}

/// A static span instrumentation point. Use via [`span!`](crate::span!);
/// the struct is public only so the macro can name it.
#[derive(Debug)]
pub struct SpanSite {
    name: &'static str,
    hist: OnceLock<Histogram>,
}

impl SpanSite {
    /// Creates a site for `span!` expansion. `name` becomes the `span`
    /// label value.
    pub const fn new(name: &'static str) -> Self {
        SpanSite {
            name,
            hist: OnceLock::new(),
        }
    }

    /// Starts timing if a collector is installed; otherwise returns an
    /// inert guard without reading the clock.
    pub fn enter(&'static self) -> SpanGuard {
        if collection_enabled() {
            let hist = self.hist.get_or_init(|| {
                Registry::global().histogram(
                    "fast_span_ns",
                    "scoped span wall time in nanoseconds",
                    &[("span", self.name)],
                )
            });
            SpanGuard {
                active: Some((hist, Instant::now())),
            }
        } else {
            SpanGuard { active: None }
        }
    }
}

/// RAII guard returned by [`SpanSite::enter`]; records elapsed nanoseconds
/// into the site's histogram on drop when a collector is installed.
#[must_use = "a span guard times the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(&'static Histogram, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.active.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a scoped span timer tied to the enclosing lexical scope.
///
/// ```
/// fn hot_path() {
///     let _span = fast_telemetry::span!("qgemm.execute");
///     // ... timed work ...
/// } // recorded into fast_span_ns{span="qgemm.execute"} here
/// ```
///
/// The span name must be a string literal: each call site expands to one
/// `static` [`SpanSite`](crate::SpanSite), so the check for an installed
/// collector is a single relaxed load when collection is off.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __FAST_SPAN_SITE: $crate::SpanSite = $crate::SpanSite::new($name);
        __FAST_SPAN_SITE.enter()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotValue;

    #[test]
    fn spans_record_only_when_collecting() {
        // Serialize against other tests that toggle the global flag.
        let hist = Registry::global().histogram(
            "fast_span_ns",
            "scoped span wall time in nanoseconds",
            &[("span", "telemetry.test.span")],
        );
        let before = hist.count();
        set_collection(false);
        {
            let _g = span!("telemetry.test.span");
        }
        assert_eq!(hist.count(), before, "disabled span must not record");
        set_collection(true);
        {
            let _g = span!("telemetry.test.span");
        }
        set_collection(false);
        assert_eq!(hist.count(), before + 1, "enabled span must record once");
        // The series shows up in the global snapshot.
        let snap = Registry::global().snapshot();
        match snap.get("fast_span_ns", &[("span", "telemetry.test.span")]) {
            Some(SnapshotValue::Histogram(h)) => assert!(h.count() >= 1),
            other => panic!("expected histogram series, got {other:?}"),
        }
    }
}
