//! Exportable registry snapshots and their JSON wire format.
//!
//! A [`Snapshot`] is a point-in-time copy of every series in a
//! [`Registry`](crate::Registry). The JSON encoding is self-round-tripping
//! ([`Snapshot::to_json`] → [`Snapshot::from_json`] → the same snapshot):
//! histograms travel as their raw non-zero `(bucket, count)` pairs rather
//! than lossy quantiles, so snapshots from different processes can still be
//! merged bucket-wise after the fact. The parser is hand-rolled because the
//! workspace is offline (no serde); it accepts exactly the subset of JSON
//! the encoder emits plus arbitrary whitespace.

use crate::hist::LatencyHistogram;
use crate::registry::render_f64;

/// One metric series captured at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs identifying the series within the family.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SnapshotValue,
}

/// The captured value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Full histogram contents (boxed: a histogram is ~4 KiB, three orders
    /// of magnitude larger than the scalar variants).
    Histogram(Box<LatencyHistogram>),
}

/// A point-in-time copy of every series in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Captured series in registry iteration order (sorted by name, then
    /// by labels).
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Looks up a series by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotValue> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.entries
            .iter()
            .find(|e| e.name == name && e.labels == want)
            .map(|e| &e.value)
    }

    /// Encodes the snapshot as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            push_json_string(&mut out, &e.name);
            out.push_str(", \"labels\": {");
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_string(&mut out, k);
                out.push_str(": ");
                push_json_string(&mut out, v);
            }
            out.push_str("}, ");
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("\"kind\": \"counter\", \"value\": {v}"));
                }
                SnapshotValue::Gauge(v) => {
                    // Non-finite gauges travel as strings; JSON has no NaN.
                    if v.is_finite() {
                        out.push_str(&format!(
                            "\"kind\": \"gauge\", \"value\": {}",
                            render_f64(*v)
                        ));
                    } else {
                        out.push_str(&format!(
                            "\"kind\": \"gauge\", \"value\": \"{}\"",
                            render_f64(*v)
                        ));
                    }
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        "\"kind\": \"histogram\", \"count\": {}, \"sum_ns\": {}, \"buckets\": [",
                        h.count(),
                        h.sum_ns()
                    ));
                    for (j, (idx, c)) in h.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{idx}, {c}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Decodes a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("snapshot root must be an object")?;
        let entries_val = json::field(obj, "entries")?;
        let arr = entries_val.as_array().ok_or("`entries` must be an array")?;
        let mut entries = Vec::with_capacity(arr.len());
        for item in arr {
            let e = item.as_object().ok_or("entry must be an object")?;
            let name = json::field(e, "name")?
                .as_str()
                .ok_or("`name` must be a string")?
                .to_string();
            let mut labels = Vec::new();
            if let Some(l) = json::get(e, "labels") {
                let lobj = l.as_object().ok_or("`labels` must be an object")?;
                for (k, v) in lobj {
                    labels.push((
                        k.clone(),
                        v.as_str()
                            .ok_or("label values must be strings")?
                            .to_string(),
                    ));
                }
            }
            labels.sort();
            let kind = json::field(e, "kind")?
                .as_str()
                .ok_or("`kind` must be a string")?;
            let value = match kind {
                "counter" => SnapshotValue::Counter(
                    json::field(e, "value")?
                        .as_u64()
                        .ok_or("counter `value` must be a non-negative integer")?,
                ),
                "gauge" => {
                    let v = json::field(e, "value")?;
                    let g = if let Some(f) = v.as_f64() {
                        f
                    } else {
                        match v.as_str() {
                            Some("NaN") => f64::NAN,
                            Some("+Inf") => f64::INFINITY,
                            Some("-Inf") => f64::NEG_INFINITY,
                            _ => return Err("gauge `value` must be a number".to_string()),
                        }
                    };
                    SnapshotValue::Gauge(g)
                }
                "histogram" => {
                    let sum = json::field(e, "sum_ns")?
                        .as_u64()
                        .ok_or("histogram `sum_ns` must be a non-negative integer")?;
                    let buckets_val = json::field(e, "buckets")?;
                    let buckets = buckets_val.as_array().ok_or("`buckets` must be an array")?;
                    let mut pairs = Vec::with_capacity(buckets.len());
                    for b in buckets {
                        let pair = b.as_array().ok_or("bucket must be a [index, count] pair")?;
                        if pair.len() != 2 {
                            return Err("bucket must be a [index, count] pair".to_string());
                        }
                        let idx = pair[0]
                            .as_u64()
                            .ok_or("bucket index must be a non-negative integer")?;
                        let c = pair[1]
                            .as_u64()
                            .ok_or("bucket count must be a non-negative integer")?;
                        pairs.push((idx as usize, c));
                    }
                    SnapshotValue::Histogram(Box::new(LatencyHistogram::from_buckets(pairs, sum)?))
                }
                other => return Err(format!("unknown metric kind `{other}`")),
            };
            entries.push(SnapshotEntry {
                name,
                labels,
                value,
            });
        }
        Ok(Snapshot { entries })
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A minimal recursive-descent JSON reader covering the subset the snapshot
/// encoder emits (objects, arrays, strings, numbers, booleans, null).
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub(super) enum Value {
        Null,
        Bool(bool),
        Num(f64),
        /// Integers are kept exact alongside the f64 view so u64 counters
        /// survive the round trip without floating-point truncation.
        Int(u64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }
        pub(super) fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub(super) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub(super) fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) => Some(*i),
                Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                    Some(*f as u64)
                }
                _ => None,
            }
        }
        pub(super) fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(f) => Some(*f),
                Value::Int(i) => Some(*i as f64),
                _ => None,
            }
        }
    }

    pub(super) fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub(super) fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        get(obj, key).ok_or_else(|| format!("missing field `{key}`"))
    }

    pub(super) fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", ch as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let val = parse_value(b, pos)?;
            fields.push((key, val));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always valid).
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().ok_or("unexpected end of string")?;
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
        if !is_float {
            if let Ok(i) = text.parse::<u64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut h = LatencyHistogram::default();
        for v in [3u64, 17, 1000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        Snapshot {
            entries: vec![
                SnapshotEntry {
                    name: "fast_req_total".to_string(),
                    labels: vec![("model".to_string(), "mlp \"v2\"\\n".to_string())],
                    value: SnapshotValue::Counter(u64::MAX),
                },
                SnapshotEntry {
                    name: "fast_loss".to_string(),
                    labels: vec![],
                    value: SnapshotValue::Gauge(-1.0986122886681098),
                },
                SnapshotEntry {
                    name: "fast_lat_ns".to_string(),
                    labels: vec![("model".to_string(), "mlp".to_string())],
                    value: SnapshotValue::Histogram(Box::new(h)),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // And re-encoding the parse is byte-identical (canonical form).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        let snap = Snapshot {
            entries: vec![
                SnapshotEntry {
                    name: "g1".into(),
                    labels: vec![],
                    value: SnapshotValue::Gauge(f64::INFINITY),
                },
                SnapshotEntry {
                    name: "g2".into(),
                    labels: vec![],
                    value: SnapshotValue::Gauge(f64::NEG_INFINITY),
                },
            ],
        };
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // NaN compares unequal by definition; check it decodes as NaN.
        let nan = Snapshot {
            entries: vec![SnapshotEntry {
                name: "g".into(),
                labels: vec![],
                value: SnapshotValue::Gauge(f64::NAN),
            }],
        };
        let back = Snapshot::from_json(&nan.to_json()).unwrap();
        match back.entries[0].value {
            SnapshotValue::Gauge(v) => assert!(v.is_nan()),
            _ => panic!("expected gauge"),
        }
    }

    #[test]
    fn get_looks_up_by_name_and_labels() {
        let snap = sample_snapshot();
        assert_eq!(
            snap.get("fast_req_total", &[("model", "mlp \"v2\"\\n")]),
            Some(&SnapshotValue::Counter(u64::MAX))
        );
        assert_eq!(snap.get("fast_req_total", &[]), None);
        assert!(matches!(
            snap.get("fast_loss", &[]),
            Some(SnapshotValue::Gauge(_))
        ));
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"entries\": 3}",
            "{\"entries\": [{\"name\": \"x\"}]}",
            "{\"entries\": [{\"name\": \"x\", \"kind\": \"blob\", \"value\": 1}]} ",
            "{\"entries\": [{\"name\": \"x\", \"kind\": \"histogram\", \"sum_ns\": 0, \"buckets\": [[9999, 1]]}]}",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
