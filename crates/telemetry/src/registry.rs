//! Metric handles and the [`Registry`] that names them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! lock-free atomics: the registry mutex is taken only at
//! registration/export time, never on the record path. Registering the same
//! `(name, labels)` twice returns a handle to the *same* underlying series,
//! which is what lets static call sites (`OnceLock<Counter>`) and per-model
//! serving metrics share series safely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{AtomicHistogram, LatencyHistogram};
use crate::snapshot::{Snapshot, SnapshotEntry, SnapshotValue};

/// A monotonically increasing counter (lock-free, relaxed ordering).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as IEEE-754 bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (a running maximum).
    ///
    /// Uses `fetch_max` on the raw bits, which orders correctly because
    /// non-negative IEEE-754 values compare the same as their bit patterns;
    /// only call this with `v >= 0` (peak depths, high-water marks).
    pub fn set_max(&self, v: f64) {
        debug_assert!(v >= 0.0, "Gauge::set_max requires non-negative values");
        self.0.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared lock-free latency histogram handle (nanosecond samples).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Records one sample (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.0.record(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Copies the live counts into a plain mergeable [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.snapshot()
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: Kind,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// A named collection of metric series.
///
/// Most instrumentation registers on the process-global registry
/// ([`Registry::global`]); components that need isolated scrapes (one
/// `Server` instance vs another) own their own `Registry` and export it
/// alongside the global one.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-global registry: training, quantization and qgemm
    /// instrumentation all lands here.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
    ) -> Series {
        let key = canonical_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {} but requested as {}",
            family.kind.name(),
            kind.name(),
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                Kind::Counter => Series::Counter(Counter(Arc::new(AtomicU64::new(0)))),
                Kind::Gauge => Series::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))),
                Kind::Histogram => Series::Histogram(Histogram(Arc::new(AtomicHistogram::new()))),
            })
            .clone()
    }

    /// Registers (or looks up) a counter series. Same `(name, labels)`
    /// returns a handle to the same underlying value.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.register(name, help, Kind::Counter, labels) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or looks up) a gauge series.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or looks up) a histogram series.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, Kind::Histogram, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders every series in Prometheus text exposition format (version
    /// 0.0.4). Histograms are exported as `summary` families: quantile
    /// series from the log-bucketed percentiles plus `_sum` and `_count`.
    pub fn metrics_text(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(family.help)));
            let type_name = match family.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "summary",
            };
            out.push_str(&format!("# TYPE {name} {type_name}\n"));
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            render_f64(g.get())
                        ));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        for q in [0.5, 0.9, 0.99, 0.999] {
                            let v = snap
                                .percentile_ns(q)
                                .map(|ns| ns.to_string())
                                .unwrap_or_else(|| "NaN".to_string());
                            out.push_str(&format!(
                                "{name}{} {v}\n",
                                render_labels(labels, Some(q))
                            ));
                        }
                        let plain = render_labels(labels, None);
                        out.push_str(&format!("{name}_sum{plain} {}\n", snap.sum_ns()));
                        out.push_str(&format!("{name}_count{plain} {}\n", snap.count()));
                    }
                }
            }
        }
        out
    }

    /// Captures every series into an exportable [`Snapshot`] (see
    /// [`Snapshot::to_json`] for the wire format).
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().unwrap();
        let mut entries = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in family.series.iter() {
                entries.push(SnapshotEntry {
                    name: name.to_string(),
                    labels: labels.clone(),
                    value: match series {
                        Series::Counter(c) => SnapshotValue::Counter(c.get()),
                        Series::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Series::Histogram(h) => SnapshotValue::Histogram(Box::new(h.snapshot())),
                    },
                });
            }
        }
        Snapshot { entries }
    }
}

/// Escapes a label value per the exposition format: backslash, double quote
/// and newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a HELP line: backslash and newline.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats an `f64` so it parses back to the same value (`{}` on finite
/// floats is shortest-round-trip in Rust) and stays a valid exposition
/// value for the non-finite cases.
pub(crate) fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_series() {
        let r = Registry::new();
        let a = r.counter("t_total", "test", &[("k", "v")]);
        let b = r.counter("t_total", "test", &[("k", "v")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let other = r.counter("t_total", "test", &[("k", "w")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let r = Registry::new();
        let g = r.gauge("depth", "test", &[]);
        g.set_max(4.0);
        g.set_max(2.0);
        assert_eq!(g.get(), 4.0);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("same_name", "test", &[]);
        let _ = r.gauge("same_name", "test", &[]);
    }

    #[test]
    fn metrics_text_is_valid_exposition() {
        let r = Registry::new();
        r.counter("req_total", "requests", &[("model", "a\"b\\c")])
            .add(7);
        r.gauge("load", "load factor", &[]).set(0.25);
        let h = r.histogram("lat_ns", "latency", &[("model", "m")]);
        h.record(1000);
        h.record(2000);
        let text = r.metrics_text();
        // Families sorted, HELP/TYPE pairs precede samples, label escaping.
        assert!(text.contains("# HELP lat_ns latency\n# TYPE lat_ns summary\n"));
        assert!(text.contains("# TYPE load gauge\nload 0.25\n"));
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains(r#"req_total{model="a\"b\\c"} 7"#));
        assert!(text.contains(r#"lat_ns{model="m",quantile="0.99"}"#));
        assert!(text.contains("lat_ns_sum{model=\"m\"} 3000\n"));
        assert!(text.contains("lat_ns_count{model=\"m\"} 2\n"));
        // Every non-comment line is `name{labels} value` with a parseable value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "NaN" || value.ends_with("Inf"),
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn empty_histogram_exports_nan_quantiles() {
        let r = Registry::new();
        let _ = r.histogram("h_ns", "empty", &[]);
        let text = r.metrics_text();
        assert!(text.contains("h_ns{quantile=\"0.5\"} NaN"));
        assert!(text.contains("h_ns_count 0"));
    }
}
