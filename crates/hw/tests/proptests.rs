//! Property-based tests for the hardware model: converter/reference
//! equivalence over wide input distributions, cycle-model monotonicity,
//! functional systolic correctness.

use fast_bfp::dot::dot_f32;
use fast_bfp::{BfpFormat, BfpGroup, ChunkedGroup, Lfsr16};
use fast_hw::{
    training_iteration, BfpConverter, FmacCell, Gemm, LayerWork, SystemConfig, SystolicArray,
    SystolicFunctionalSim,
};
use proptest::prelude::*;

proptest! {
    /// The hardware converter datapath equals the reference quantizer for
    /// any finite input mix (nearest path).
    #[test]
    fn converter_matches_reference_everywhere(
        values in prop::collection::vec(
            prop_oneof![
                4 => -100.0f32..100.0,
                1 => Just(0.0f32),
                1 => (-1.0f32..1.0).prop_map(|x| x * 1e-6),
            ],
            1..=16,
        ),
        m in prop::sample::select(vec![2u32, 4, 6, 8]),
    ) {
        let fmt = BfpFormat::new(16, m, 8).unwrap();
        let mut conv = BfpConverter::new(fmt, 1);
        let hw = conv.convert(&values, false).group;
        let sw = BfpGroup::quantize_nearest(&values, fmt);
        prop_assert_eq!(hw, sw);
    }

    /// Stochastic path equivalence with a shared LFSR stream.
    #[test]
    fn converter_sr_matches_reference(
        values in prop::collection::vec(-10.0f32..10.0, 16),
        seed in 1u16..u16::MAX,
    ) {
        let fmt = BfpFormat::high();
        let mut conv = BfpConverter::new(fmt, seed);
        let mut lfsr = Lfsr16::new(seed);
        let hw = conv.convert(&values, true).group;
        let sw = BfpGroup::quantize(
            &values, fmt, fast_bfp::Rounding::STOCHASTIC8, &mut lfsr, None,
        );
        prop_assert_eq!(hw, sw);
    }

    /// fMAC accumulation over many groups equals the sum of direct dots.
    #[test]
    fn fmac_accumulates_exactly(
        weights in prop::collection::vec(-2.0f32..2.0, 16),
        streams in prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 16), 1..6),
    ) {
        let fmt = BfpFormat::high();
        let wg = BfpGroup::quantize_nearest(&weights, fmt);
        let mut cell = FmacCell::new();
        cell.load_weight(ChunkedGroup::from_group(&wg).unwrap());
        let mut expect = 0.0f32;
        for s in &streams {
            let xg = BfpGroup::quantize_nearest(s, fmt);
            cell.consume(&ChunkedGroup::from_group(&xg).unwrap());
            expect += dot_f32(&wg, &xg);
        }
        prop_assert_eq!(cell.accumulator(), expect);
    }

    /// Cycle model is monotone in every GEMM dimension and in passes.
    #[test]
    fn cycles_monotone(
        m in 1usize..5000,
        k in 1usize..5000,
        n in 1usize..500,
        passes in 1u32..4,
    ) {
        let arr = SystolicArray::new(256, 64, fast_hw::MacKind::Fmac);
        let base = arr.weight_stationary_cycles(Gemm { m, k, n }, passes);
        let bigger_m = arr.weight_stationary_cycles(Gemm { m: m + 100, k, n }, passes);
        let bigger_k = arr.weight_stationary_cycles(Gemm { m, k: k + 5000, n }, passes);
        let bigger_n = arr.weight_stationary_cycles(Gemm { m, k, n: n + 100 }, passes);
        let more_passes = arr.weight_stationary_cycles(Gemm { m, k, n }, passes + 1);
        prop_assert!(bigger_m >= base);
        prop_assert!(bigger_k >= base);
        prop_assert!(bigger_n >= base);
        prop_assert!(more_passes >= base);
    }

    /// The functional systolic sim computes the three training GEMMs from a
    /// single stored W for arbitrary shapes.
    #[test]
    fn functional_sim_is_correct(
        k in 1usize..6,
        n in 1usize..6,
        m in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let g: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let sim = SystolicFunctionalSim::load_weights(&w, k, n);
        let fwd = sim.forward(&a, m);
        for row in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|i| a[row * k + i] * w[i * n + j]).sum();
                prop_assert!((fwd[row * n + j] - want).abs() < 1e-4);
            }
        }
        let bw = sim.backward_weight(&a, &g, m);
        for i in 0..k {
            for j in 0..n {
                let want: f32 = (0..m).map(|r| a[r * k + i] * g[r * n + j]).sum();
                prop_assert!((bw[i * n + j] - want).abs() < 1e-4);
            }
        }
    }

    /// Lower-precision FAST iterations never cost more than higher ones.
    #[test]
    fn fast_cost_monotone_in_precision(
        m in 1000usize..100_000,
        k in 64usize..4096,
        n in 16usize..512,
    ) {
        let sys = SystemConfig::fast();
        let gemm = Gemm { m, k, n };
        let low = training_iteration(&sys, &[LayerWork { gemm, m_w: 2, m_a: 2, m_g: 2 }]);
        let mid = training_iteration(&sys, &[LayerWork { gemm, m_w: 4, m_a: 2, m_g: 2 }]);
        let high = training_iteration(&sys, &[LayerWork { gemm, m_w: 4, m_a: 4, m_g: 4 }]);
        prop_assert!(low.cycles <= mid.cycles);
        prop_assert!(mid.cycles <= high.cycles);
    }
}
