//! SRAM subsystem model (paper Section VII: "Gradient SRAM, weight SRAM and
//! data SRAM each consist of 128 16kB memory banks").
//!
//! Stands in for CACTI (substitution in DESIGN.md §2): area/power constants
//! are calibrated so the three SRAMs land at the paper's Table III share
//! (40.34% of system area, 3.37 W).

/// Gate-equivalents per kilobyte of banked SRAM, calibrated to Table III.
pub const SRAM_GE_PER_KB: f64 = 5630.0;

/// SRAM power per kilobyte (mW), calibrated to Table III's 3.37 W over
/// 6144 kB.
pub const SRAM_MW_PER_KB: f64 = 3370.0 / 6144.0;

/// Dynamic read/write energy per 16-byte access (pJ), CACTI-flavoured.
pub const SRAM_PJ_PER_ACCESS: f64 = 5.0;

/// One of the three on-chip SRAMs (weights / data / gradients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sram {
    /// Number of banks.
    pub banks: usize,
    /// Capacity per bank in kB.
    pub bank_kb: usize,
}

impl Sram {
    /// The paper's configuration: 128 banks of 16 kB.
    pub fn paper_default() -> Self {
        Sram {
            banks: 128,
            bank_kb: 16,
        }
    }

    /// Total capacity in kB.
    pub fn capacity_kb(&self) -> usize {
        self.banks * self.bank_kb
    }

    /// Estimated area in gate equivalents.
    pub fn area_ge(&self) -> f64 {
        self.capacity_kb() as f64 * SRAM_GE_PER_KB
    }

    /// Estimated static + clocked power in watts.
    pub fn power_w(&self) -> f64 {
        self.capacity_kb() as f64 * SRAM_MW_PER_KB / 1000.0
    }

    /// Dynamic energy (joules) for `bytes` of traffic.
    pub fn access_energy_j(&self, bytes: u64) -> f64 {
        (bytes as f64 / 16.0) * SRAM_PJ_PER_ACCESS * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_capacity() {
        let s = Sram::paper_default();
        assert_eq!(s.capacity_kb(), 2048);
        // Three SRAMs = 6 MB total.
        assert_eq!(3 * s.capacity_kb(), 6144);
    }

    #[test]
    fn three_srams_hit_calibrated_power() {
        let total: f64 = 3.0 * Sram::paper_default().power_w();
        assert!((total - 3.37).abs() < 0.01, "total {total}");
    }

    #[test]
    fn access_energy_scales_with_traffic() {
        let s = Sram::paper_default();
        assert!(s.access_energy_j(32) > s.access_energy_j(16));
        assert!((s.access_energy_j(16) - 5e-12).abs() < 1e-18);
    }
}
