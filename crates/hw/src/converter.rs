//! The BFP converter datapath (paper Fig 14), implemented with the
//! hardware's integer steps: compare-and-forward exponent tree, exponent
//! subtractors, barrel shifts of the 24-bit mantissas, LFSR noise addition
//! and truncation — plus the relative-improvement accumulation block.
//!
//! The output is verified bit-identical to the reference float-path
//! quantizer `BfpGroup::quantize`, closing the loop between the algorithm
//! and the hardware description.

use crate::gates::{adder_ge, adder_tree_ge, barrel_shifter_ge, comparator_ge, register_ge};
use fast_bfp::{exponent_of, BfpFormat, BfpGroup, BitSource, Lfsr16};

/// Hardware BFP converter with an internal LFSR noise source.
#[derive(Debug, Clone)]
pub struct BfpConverter {
    format: BfpFormat,
    lfsr: Lfsr16,
}

/// Output of a conversion: the quantized group plus the partial sums the
/// improvement block feeds to Eq. 2 (numerator = discarded low-chunk
/// magnitude, denominator = retained high-chunk magnitude × 4; both in ulps
/// of the 4-bit representation).
#[derive(Debug, Clone, PartialEq)]
pub struct ConverterOutput {
    /// The quantized group.
    pub group: BfpGroup,
    /// Σ low-chunk magnitudes (only meaningful when `m = 4`).
    pub improvement_numerator: u64,
    /// Σ high-chunk magnitudes × 4 (only meaningful when `m = 4`).
    pub improvement_denominator: u64,
}

impl BfpConverter {
    /// Creates a converter for the given format with an LFSR seed.
    pub fn new(format: BfpFormat, lfsr_seed: u16) -> Self {
        BfpConverter {
            format,
            lfsr: Lfsr16::new(lfsr_seed),
        }
    }

    /// The converter's output format.
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Converts a group of FP32 values using the integer datapath.
    ///
    /// `stochastic` selects the gradient path (8-bit LFSR noise, Fig 4c);
    /// otherwise the round-to-nearest increment is injected at the same
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if the group is empty or exceeds the format's group size.
    pub fn convert(&mut self, values: &[f32], stochastic: bool) -> ConverterOutput {
        assert!(!values.is_empty() && values.len() <= self.format.group_size());
        let m = self.format.mantissa_bits();
        // 1. Compare-and-forward tree: the shared exponent is the max
        //    leading-bit exponent in the group.
        let shared = values.iter().filter_map(|&v| exponent_of(v)).max();
        let shared = match shared {
            Some(e) => e,
            None => {
                return ConverterOutput {
                    group: BfpGroup::from_parts(self.format, 0, vec![0; values.len()]),
                    improvement_numerator: 0,
                    improvement_denominator: 0,
                }
            }
        };
        let max_mag = self.format.max_magnitude();
        let mut mantissas = Vec::with_capacity(values.len());
        let mut numer = 0u64;
        let mut denom = 0u64;
        for &v in values {
            if v == 0.0 {
                mantissas.push(0);
                continue;
            }
            // Decompose |v| = mant24 · 2^(e - 23) with mant24 < 2^24.
            let bits = v.abs().to_bits();
            let exp_field = (bits >> 23) & 0xFF;
            let frac = bits & 0x7F_FFFF;
            let (mant24, e) = if exp_field == 0 {
                (frac as u64, -126i32)
            } else {
                ((frac | 0x80_0000) as u64, exp_field as i32 - 127)
            };
            // 2. Subtractor + barrel shifter: align to the shared exponent,
            //    keeping the result scaled so one output ulp is bit `shift`.
            let shift = (24 - m as i32 + shared - e) as u32;
            // 3. Noise injection below the truncation point, then truncate:
            //    floor(mant24·2^-shift + r·2^-8)
            //      = (mant24·2^8 + r·2^shift) >> (shift + 8).
            let r = if stochastic {
                self.lfsr.next_bits(8) as u64
            } else {
                0x80
            };
            let mag = if shift >= 56 {
                0 // fully shifted out even before rounding
            } else {
                (((mant24 << 8) + (r << shift)) >> (shift + 8)).min(max_mag as u64)
            };
            if m == 4 {
                numer += mag & 0b11;
                denom += (mag >> 2) * 4;
            }
            let mag = mag as i32;
            mantissas.push(if v < 0.0 { -mag } else { mag });
        }
        ConverterOutput {
            group: BfpGroup::from_parts(self.format, shared, mantissas),
            improvement_numerator: numer,
            improvement_denominator: denom,
        }
    }

    /// Area of the converter datapath in gate equivalents (Fig 14): the
    /// C&F comparator tree, per-lane exponent subtractors, 24-bit barrel
    /// shifters, the LFSR, rounding adders and the improvement accumulators.
    pub fn area_ge(format: BfpFormat) -> f64 {
        let g = format.group_size();
        let lanes = g as f64;
        ((g - 1) as f64) * comparator_ge(8)            // C&F tree
            + lanes * adder_ge(8)                      // exponent subtractors
            + lanes * barrel_shifter_ge(24, 24)        // mantissa alignment
            + register_ge(16)                          // LFSR
            + lanes * adder_ge(12)                     // noise add / round
            + 2.0 * adder_tree_ge(g, 4)                // improvement sums
            + register_ge(2 * 16) // improvement registers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_bfp::{BitSource, RngBits, Rounding};
    use rand::{Rng, SeedableRng};

    #[test]
    fn nearest_path_matches_reference_quantizer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for m in [2u32, 4, 8] {
            let fmt = BfpFormat::new(16, m, 8).unwrap();
            let mut conv = BfpConverter::new(fmt, 1);
            for _ in 0..200 {
                let xs: Vec<f32> = (0..16)
                    .map(|_| {
                        let e: f32 = rng.gen_range(-12.0..4.0);
                        let s = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
                        s * 2.0f32.powf(e) * rng.gen_range(1.0..2.0)
                    })
                    .collect();
                let hw = conv.convert(&xs, false).group;
                let sw = BfpGroup::quantize_nearest(&xs, fmt);
                assert_eq!(hw, sw, "m={m} xs={xs:?}");
            }
        }
    }

    #[test]
    fn stochastic_path_matches_reference_with_same_lfsr() {
        let fmt = BfpFormat::new(16, 4, 8).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for seed in [1u16, 0xACE1, 0x7777] {
            let mut conv = BfpConverter::new(fmt, seed);
            let mut lfsr = Lfsr16::new(seed);
            for _ in 0..100 {
                let xs: Vec<f32> = (0..16).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
                let hw = conv.convert(&xs, true).group;
                let sw = BfpGroup::quantize(&xs, fmt, Rounding::STOCHASTIC8, &mut lfsr, None);
                assert_eq!(hw, sw, "seed={seed} xs={xs:?}");
            }
        }
    }

    #[test]
    fn improvement_sums_match_eq2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let fmt = BfpFormat::new(16, 4, 8).unwrap();
        let mut conv = BfpConverter::new(fmt, 3);
        let xs: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let out = conv.convert(&xs, false);
        // Reference: Eq 2 terms in ulps of the m=4 representation.
        let mut numer = 0u64;
        let mut denom = 0u64;
        for &mant in out.group.mantissas() {
            let mag = mant.unsigned_abs() as u64;
            numer += mag & 0b11;
            denom += (mag >> 2) * 4;
        }
        assert_eq!(out.improvement_numerator, numer);
        assert_eq!(out.improvement_denominator, denom);
    }

    #[test]
    fn subnormal_inputs_are_handled() {
        let fmt = BfpFormat::new(4, 4, 8).unwrap();
        let mut conv = BfpConverter::new(fmt, 1);
        let tiny = f32::from_bits(0x0000_0100); // subnormal
        let xs = [tiny, tiny * 2.0, 0.0, -tiny];
        let hw = conv.convert(&xs, false).group;
        let sw = BfpGroup::quantize_nearest(&xs, fmt);
        assert_eq!(hw, sw);
    }

    #[test]
    fn all_zero_group() {
        let fmt = BfpFormat::high();
        let mut conv = BfpConverter::new(fmt, 1);
        let out = conv.convert(&[0.0; 16], true);
        assert!(out.group.mantissas().iter().all(|&m| m == 0));
    }

    #[test]
    fn converter_area_is_small_relative_to_array_cell_count() {
        // Paper Table III: converter is 4.56% vs array 47.79% — about a
        // 1:10 ratio. Our structural model should put one converter within
        // an order of magnitude of a handful of fMACs.
        let conv = BfpConverter::area_ge(BfpFormat::high());
        assert!(conv > 1000.0 && conv < 20000.0, "converter GE {conv}");
    }

    #[test]
    fn lfsr_advance_only_on_nonzero_values() {
        // Zero lanes must not consume noise bits, so hardware and reference
        // streams stay aligned.
        let fmt = BfpFormat::new(4, 4, 8).unwrap();
        let mut conv = BfpConverter::new(fmt, 0x1234);
        let mut lfsr = Lfsr16::new(0x1234);
        let xs = [0.5f32, 0.0, 0.25, 0.0];
        let hw = conv.convert(&xs, true).group;
        let sw = BfpGroup::quantize(&xs, fmt, Rounding::STOCHASTIC8, &mut lfsr, None);
        assert_eq!(hw, sw);
        // Exactly two draws should have happened on each side.
        let mut probe_a = conv.lfsr.clone();
        let mut probe_b = lfsr.clone();
        assert_eq!(probe_a.next_bits(8), probe_b.next_bits(8));
    }

    struct CountingBits(RngBits<rand::rngs::StdRng>, usize);
    impl BitSource for CountingBits {
        fn next_bits(&mut self, n: u32) -> u32 {
            self.1 += 1;
            self.0.next_bits(n)
        }
    }

    #[test]
    fn reference_draw_count_matches_nonzero_lanes() {
        let fmt = BfpFormat::new(8, 4, 8).unwrap();
        let mut bits = CountingBits(RngBits(rand::rngs::StdRng::seed_from_u64(1)), 0);
        let xs = [1.0f32, 0.0, 0.5, 0.0, 0.25, 0.0, 0.125, 0.0];
        let _ = BfpGroup::quantize(&xs, fmt, Rounding::STOCHASTIC8, &mut bits, None);
        assert_eq!(bits.1, 4);
    }
}
