//! Analytical gate-level cost primitives.
//!
//! Stands in for the paper's Synopsys DC + NanGate 45nm synthesis flow
//! (substitution documented in DESIGN.md §2). Costs are expressed in *gate
//! equivalents* (GE, 2-input NAND units) using textbook structures: array
//! multipliers, ripple/carry-select adders, barrel shifters, comparator
//! trees. The model's purpose is to reproduce the *ratios* of paper
//! Table IV — in particular the quadratic growth of fixed-point multipliers
//! with mantissa width (Section III-B3) and the high cost of per-element FP
//! alignment (Section I).

/// Gate equivalents of a full adder.
pub const FA_GE: f64 = 4.5;
/// Gate equivalents of an AND gate (partial-product generation).
pub const AND_GE: f64 = 1.5;
/// Gate equivalents of a 2:1 multiplexer bit.
pub const MUX_GE: f64 = 2.5;
/// Gate equivalents of a flip-flop (register bit).
pub const FF_GE: f64 = 6.0;
/// Gate equivalents of an XOR (comparator bit).
pub const XOR_GE: f64 = 2.5;

/// Area of an `m × n` array multiplier (unsigned magnitudes): `m·n` partial
/// products and `m·n` full adders — the quadratic-in-bitwidth cost the
/// paper leans on ("computational complexity of fixed point multipliers
/// scales in a quadratic fashion with bitwidth").
pub fn multiplier_ge(m_bits: u32, n_bits: u32) -> f64 {
    assert!(m_bits > 0 && n_bits > 0);
    (m_bits as f64) * (n_bits as f64) * (FA_GE + AND_GE)
}

/// Area of a `bits`-wide adder.
pub fn adder_ge(bits: u32) -> f64 {
    bits as f64 * FA_GE
}

/// Area of a balanced adder tree summing `inputs` operands of `bits` width
/// (width grows by one per level).
pub fn adder_tree_ge(inputs: usize, bits: u32) -> f64 {
    assert!(inputs > 0);
    let mut total = 0.0;
    let mut n = inputs;
    let mut w = bits;
    while n > 1 {
        let adders = n / 2;
        total += adders as f64 * adder_ge(w + 1);
        n = n / 2 + n % 2;
        w += 1;
    }
    total
}

/// Area of a logarithmic barrel shifter over `bits` with `log2(range)`
/// stages (paper Fig 14 uses these for mantissa alignment).
pub fn barrel_shifter_ge(bits: u32, shift_range: u32) -> f64 {
    let stages = 32 - shift_range.leading_zeros(); // ceil(log2(range+1))
    bits as f64 * stages as f64 * MUX_GE
}

/// Area of a `bits`-wide magnitude comparator (one C&F block of the
/// converter's comparator tree, Fig 14).
pub fn comparator_ge(bits: u32) -> f64 {
    bits as f64 * XOR_GE + bits as f64 * 1.5
}

/// Area of `bits` of register state.
pub fn register_ge(bits: u32) -> f64 {
    bits as f64 * FF_GE
}

/// Area of a floating-point adder with `e` exponent and `m` mantissa bits:
/// exponent compare/subtract, mantissa alignment shifter, mantissa add,
/// leading-zero detect + normalization shift, rounding increment.
pub fn fp_adder_ge(e_bits: u32, m_bits: u32) -> f64 {
    let mant = m_bits + 1; // implicit leading 1
    comparator_ge(e_bits)
        + adder_ge(e_bits)
        + barrel_shifter_ge(mant + 3, mant) // align (with guard bits)
        + adder_ge(mant + 3)
        + (mant as f64 * 2.0) // leading-zero detector (linear approx)
        + barrel_shifter_ge(mant + 3, mant) // normalize
        + adder_ge(mant) // round increment
}

/// Rough FPGA resource estimate from gate counts: LUTs implement
/// combinational GE (≈6 GE/LUT on 6-input LUTs), FFs equal register bits.
pub fn luts_from_ge(combinational_ge: f64) -> u64 {
    (combinational_ge / 6.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_cost_is_quadratic() {
        let m4 = multiplier_ge(4, 4);
        let m8 = multiplier_ge(8, 8);
        let m12 = multiplier_ge(12, 12);
        assert!((m8 / m4 - 4.0).abs() < 1e-9);
        assert!((m12 / m4 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn adder_tree_grows_linearithmically() {
        let t16 = adder_tree_ge(16, 4);
        let t32 = adder_tree_ge(32, 4);
        assert!(t32 > 1.9 * t16 && t32 < 2.6 * t16);
    }

    #[test]
    fn fp_adder_dwarfs_int_adder() {
        // The FP32 accumulator is far more expensive than an INT add of the
        // same mantissa width — the motivation for amortizing it across a
        // BFP group (paper Section VII-A).
        assert!(fp_adder_ge(8, 23) > 5.0 * adder_ge(24));
    }

    #[test]
    fn barrel_shifter_stage_count() {
        // 24-bit shifter over a 24-position range: 5 stages.
        let ge = barrel_shifter_ge(24, 24);
        assert_eq!(ge, 24.0 * 5.0 * MUX_GE);
    }
}
