//! Systolic array model: the functional three-dataflow simulation of paper
//! Fig 12 and the tile/cycle cost model used by the training-time
//! evaluation (Section VII-B).

use crate::mac::MacKind;

/// GEMM dimensions `O (M×N) = A (M×K) · W (K×N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemm {
    /// Output rows (batch × spatial positions).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl Gemm {
    /// Multiply-accumulate operations in this GEMM.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// A systolic array of `rows × cols` cells of the given MAC design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystolicArray {
    /// Array height (reduction direction).
    pub rows: usize,
    /// Array width (output-column direction).
    pub cols: usize,
    /// Cell design.
    pub mac: MacKind,
}

impl SystolicArray {
    /// Creates an array.
    pub fn new(rows: usize, cols: usize, mac: MacKind) -> Self {
        assert!(rows > 0 && cols > 0);
        SystolicArray { rows, cols, mac }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Cycles for a weight-stationary GEMM (forward pass, Fig 12a, and the
    /// transposed backward-activation pass, Fig 12b, which only changes the
    /// side data enters — not the cost shape).
    ///
    /// Tiling: the array holds `rows·g` reduction elements × `cols` output
    /// columns per tile (`g` = elements per cell per cycle: 16 for fMAC).
    /// Each tile streams `m` operand rows at `passes` cycles per row plus
    /// pipeline fill `rows + cols`.
    pub fn weight_stationary_cycles(&self, gemm: Gemm, passes: u32) -> u64 {
        assert!(passes >= 1);
        let g = self.mac.group_elements_per_cycle();
        let k_tiles = gemm.k.div_ceil(self.rows * g) as u64;
        let n_tiles = gemm.n.div_ceil(self.cols) as u64;
        k_tiles * n_tiles * (gemm.m as u64 * passes as u64 + (self.rows + self.cols) as u64)
    }

    /// Cycles for the accumulation-stationary weight-gradient GEMM
    /// (Fig 12c): the array holds a `(rows·g) × cols` tile of `∇W (K×N)`
    /// (each fMAC cell accumulates a 16-element K-group of ∇W) and streams
    /// the reduction dimension `m = B·H·W` through it, one index per
    /// `passes` cycles.
    pub fn accumulation_stationary_cycles(&self, gemm: Gemm, passes: u32) -> u64 {
        assert!(passes >= 1);
        let g = self.mac.group_elements_per_cycle();
        let k_tiles = gemm.k.div_ceil(self.rows * g) as u64;
        let n_tiles = gemm.n.div_ceil(self.cols) as u64;
        k_tiles * n_tiles * (gemm.m as u64 * passes as u64 + (self.rows + self.cols) as u64)
    }
}

/// Functional simulation of the three training dataflows of paper Fig 12:
/// the weight matrix is stored **once**, in its forward orientation, and
/// all three products are computed by changing only which side operands
/// enter — no explicit transposition.
#[derive(Debug, Clone)]
pub struct SystolicFunctionalSim {
    /// Stored weights, `(k, n)` — cell `(i, j)` holds `w[i][j]`.
    weights: Vec<f32>,
    k: usize,
    n: usize,
}

impl SystolicFunctionalSim {
    /// Stores a `(k, n)` weight matrix into the cell grid.
    pub fn load_weights(weights: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(weights.len(), k * n);
        SystolicFunctionalSim {
            weights: weights.to_vec(),
            k,
            n,
        }
    }

    fn w(&self, i: usize, j: usize) -> f32 {
        self.weights[i * self.n + j]
    }

    /// Forward (Fig 12a): activations enter from the bottom, outputs exit
    /// right — `O (m×n) = A (m×k) · W`.
    pub fn forward(&self, a: &[f32], m: usize) -> Vec<f32> {
        assert_eq!(a.len(), m * self.k);
        let mut out = vec![0.0f32; m * self.n];
        // Accumulation travels leftward along each row of cells: cell (i,j)
        // adds w[i][j]·a[row][i] into the partial moving toward column n.
        for row in 0..m {
            for j in 0..self.n {
                let mut acc = 0.0f32;
                for i in 0..self.k {
                    acc += a[row * self.k + i] * self.w(i, j);
                }
                out[row * self.n + j] = acc;
            }
        }
        out
    }

    /// Backward-activation (Fig 12b): output gradients enter from the
    /// *left*, accumulation moves upward — `∇A (m×k) = ∇O (m×n) · Wᵀ`
    /// computed against the untransposed stored W.
    pub fn backward_activation(&self, grad_out: &[f32], m: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), m * self.n);
        let mut out = vec![0.0f32; m * self.k];
        for row in 0..m {
            for i in 0..self.k {
                let mut acc = 0.0f32;
                // Cell (i, j) multiplies the j-th gradient entering its row
                // from the left by its stored w[i][j]; partials accumulate
                // upward across j.
                for j in 0..self.n {
                    acc += grad_out[row * self.n + j] * self.w(i, j);
                }
                out[row * self.k + i] = acc;
            }
        }
        out
    }

    /// Weight-gradient (Fig 12c): activations enter from the left and
    /// output gradients from below; each cell accumulates its own
    /// `∇W[i][j] = Σ_m A[m][i]·∇O[m][j]` in place.
    pub fn backward_weight(&self, a: &[f32], grad_out: &[f32], m: usize) -> Vec<f32> {
        assert_eq!(a.len(), m * self.k);
        assert_eq!(grad_out.len(), m * self.n);
        let mut gw = vec![0.0f32; self.k * self.n];
        for row in 0..m {
            for i in 0..self.k {
                for j in 0..self.n {
                    gw[i * self.n + j] += a[row * self.k + i] * grad_out[row * self.n + j];
                }
            }
        }
        gw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fig12_worked_example() {
        // Paper Fig 12: W = [[2,3],[0,1]], A = [[1,4],[5,2]].
        let sim = SystolicFunctionalSim::load_weights(&[2., 3., 0., 1.], 2, 2);
        // (a) O = A·W = [[2,7],[10,17]].
        assert_eq!(sim.forward(&[1., 4., 5., 2.], 2), vec![2., 7., 10., 17.]);
        // (b) ∇A = ∇O·Wᵀ with ∇O = [[3,4],[1,2]] → [[18,4],[8,2]].
        assert_eq!(
            sim.backward_activation(&[3., 4., 1., 2.], 2),
            vec![18., 4., 8., 2.]
        );
        // (c) ∇W = Aᵀ·∇O = [[8,14],[14,20]].
        assert_eq!(
            sim.backward_weight(&[1., 4., 5., 2.], &[3., 4., 1., 2.], 2),
            vec![8., 14., 14., 20.]
        );
    }

    #[test]
    fn dataflows_match_reference_gemms_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (m, k, n) = (5, 7, 4);
        let w: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let g: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let sim = SystolicFunctionalSim::load_weights(&w, k, n);

        let fwd = sim.forward(&a, m);
        for row in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|i| a[row * k + i] * w[i * n + j]).sum();
                assert!((fwd[row * n + j] - want).abs() < 1e-5);
            }
        }
        let ba = sim.backward_activation(&g, m);
        for row in 0..m {
            for i in 0..k {
                let want: f32 = (0..n).map(|j| g[row * n + j] * w[i * n + j]).sum();
                assert!((ba[row * k + i] - want).abs() < 1e-5);
            }
        }
        let bw = sim.backward_weight(&a, &g, m);
        for i in 0..k {
            for j in 0..n {
                let want: f32 = (0..m).map(|row| a[row * k + i] * g[row * n + j]).sum();
                assert!((bw[i * n + j] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn fmac_array_amortizes_reduction_by_group_size() {
        let fast = SystolicArray::new(256, 64, MacKind::Fmac);
        let scalar = SystolicArray::new(256, 64, MacKind::Fp16);
        let gemm = Gemm {
            m: 1024,
            k: 4096,
            n: 64,
        };
        // fMAC holds 256·16 = 4096 reduction elements: one K-tile.
        let f = fast.weight_stationary_cycles(gemm, 1);
        // Scalar cells hold 256: sixteen K-tiles.
        let s = scalar.weight_stationary_cycles(gemm, 1);
        assert_eq!(f, 1024 + 320);
        assert_eq!(s, 16 * (1024 + 320));
    }

    #[test]
    fn passes_scale_the_streaming_term() {
        let fast = SystolicArray::new(256, 64, MacKind::Fmac);
        let gemm = Gemm {
            m: 512,
            k: 1024,
            n: 64,
        };
        let c1 = fast.weight_stationary_cycles(gemm, 1);
        let c4 = fast.weight_stationary_cycles(gemm, 4);
        // Streaming quadruples; the pipeline-fill term does not.
        assert_eq!(c1, 512 + 320);
        assert_eq!(c4, 512 * 4 + 320);
    }

    #[test]
    fn accumulation_stationary_streams_reduction() {
        let fast = SystolicArray::new(256, 64, MacKind::Fmac);
        let gemm = Gemm {
            m: 4096,
            k: 256,
            n: 64,
        }; // ∇W is K×N, M streams
        let c = fast.accumulation_stationary_cycles(gemm, 1);
        // One tile (256 ≤ 4096 K-capacity, 64 cols); stream 4096 + fill.
        assert_eq!(c, 4096 + 320);
    }

    #[test]
    fn more_cells_never_cost_more_cycles() {
        let small = SystolicArray::new(64, 64, MacKind::Fp16);
        let big = SystolicArray::new(128, 128, MacKind::Fp16);
        let gemm = Gemm {
            m: 2048,
            k: 512,
            n: 512,
        };
        assert!(big.weight_stationary_cycles(gemm, 1) <= small.weight_stationary_cycles(gemm, 1));
    }
}
