//! Area/power breakdown of the FAST system (paper Table III) and energy
//! accounting for training runs.

use crate::mac::MacKind;
use crate::sram::Sram;
use crate::system::SystemConfig;

/// One row of the Table III breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentShare {
    /// Component name, matching the paper's rows.
    pub name: &'static str,
    /// Modeled area share in percent.
    pub area_percent: f64,
    /// Modeled power in watts.
    pub power_w: f64,
    /// The paper's published area share (%).
    pub paper_area_percent: f64,
    /// The paper's published power (W).
    pub paper_power_w: f64,
}

/// Computes the FAST-system component breakdown from the structural models,
/// alongside the paper's Table III reference values.
pub fn fast_breakdown() -> Vec<ComponentShare> {
    let sys = SystemConfig::fast();
    let fmac_ge = MacKind::Fmac.model_cost().total_ge();
    let array_ge = sys.array.cells() as f64 * fmac_ge;
    let conv_ge = sys.converter_count() as f64 * sys.converter_area_ge();
    let acc_ge = sys.accumulator_area_ge();
    let gen_ge = 0.01 * array_ge / 0.4779; // data generator: thin shift-register skew buffers
    let mem_ge = 3.0 * Sram::paper_default().area_ge();
    let total = array_ge + conv_ge + acc_ge + gen_ge + mem_ge;
    let pct = |ge: f64| 100.0 * ge / total;

    vec![
        ComponentShare {
            name: "Systolic array",
            area_percent: pct(array_ge),
            power_w: sys.array_power_w(),
            paper_area_percent: 47.79,
            paper_power_w: 15.61,
        },
        ComponentShare {
            name: "BFP converter",
            area_percent: pct(conv_ge),
            power_w: 1.77,
            paper_area_percent: 4.56,
            paper_power_w: 1.77,
        },
        ComponentShare {
            name: "Accumulator",
            area_percent: pct(acc_ge),
            power_w: 2.19,
            paper_area_percent: 6.63,
            paper_power_w: 2.19,
        },
        ComponentShare {
            name: "Systolic array data generator",
            area_percent: pct(gen_ge),
            power_w: 0.69,
            paper_area_percent: 0.68,
            paper_power_w: 0.69,
        },
        ComponentShare {
            name: "Memory subsystem",
            area_percent: pct(mem_ge),
            power_w: 3.0 * Sram::paper_default().power_w(),
            paper_area_percent: 40.34,
            paper_power_w: 3.37,
        },
    ]
}

/// Energy in joules for running `cycles` on a system.
pub fn energy_joules(system: &SystemConfig, cycles: u64) -> f64 {
    system.total_power_w() * cycles as f64 / system.freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_100() {
        let rows = fast_breakdown();
        let total: f64 = rows.iter().map(|r| r.area_percent).sum();
        assert!((total - 100.0).abs() < 1e-6);
        let paper_total: f64 = rows.iter().map(|r| r.paper_area_percent).sum();
        assert!((paper_total - 100.0).abs() < 0.5);
    }

    #[test]
    fn array_and_memory_dominate_area() {
        // Table III's qualitative shape: array ≈ 48%, memory ≈ 40%, the
        // rest small. The structural model must reproduce the ordering.
        let rows = fast_breakdown();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().area_percent;
        let array = get("Systolic array");
        let mem = get("Memory subsystem");
        assert!(array > 35.0 && array < 60.0, "array {array}%");
        assert!(mem > 28.0 && mem < 52.0, "memory {mem}%");
        assert!(get("BFP converter") < 12.0);
        assert!(get("Systolic array data generator") < 3.0);
    }

    #[test]
    fn model_tracks_paper_within_factor_two() {
        for r in fast_breakdown() {
            let ratio = r.area_percent / r.paper_area_percent;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: model {:.2}% vs paper {:.2}%",
                r.name,
                r.area_percent,
                r.paper_area_percent
            );
        }
    }

    #[test]
    fn energy_scales_with_cycles_and_power() {
        let fast = SystemConfig::fast();
        let e1 = energy_joules(&fast, 1_000_000);
        let e2 = energy_joules(&fast, 2_000_000);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        // 1M cycles at 500 MHz = 2 ms at ~23 W ≈ 47 mJ.
        assert!((0.02..0.1).contains(&e1), "energy {e1}");
    }
}
