//! System-level configurations: the FAST system and the area-equalized
//! baseline training systems of paper Section VII-B.

use crate::converter::BfpConverter;
use crate::gates::{fp_adder_ge, register_ge};
use crate::mac::MacKind;
use crate::sram::Sram;
use crate::systolic::SystolicArray;
use fast_bfp::BfpFormat;

/// A complete single-chip DNN training system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Display name (as used in paper Figs 19/20).
    pub name: &'static str,
    /// The systolic array.
    pub array: SystolicArray,
    /// Clock frequency (the paper runs everything at 500 MHz).
    pub freq_hz: f64,
}

impl SystemConfig {
    const FREQ: f64 = 500e6;

    /// The FAST system: 256×64 fMAC array at 500 MHz (Section VII).
    pub fn fast() -> Self {
        SystemConfig {
            name: "FAST-Adaptive",
            array: SystolicArray::new(256, 64, MacKind::Fmac),
            freq_hz: Self::FREQ,
        }
    }

    /// HFP8 baseline: 245×245 scalar MACs (Section VII-B).
    pub fn hfp8() -> Self {
        SystemConfig {
            name: "HFP8",
            array: SystolicArray::new(245, 245, MacKind::Hfp8),
            freq_hz: Self::FREQ,
        }
    }

    /// MSFP-12 baseline: 230×230 scalar MACs (Section VII-B).
    pub fn msfp12() -> Self {
        SystemConfig {
            name: "MSFP-12",
            array: SystolicArray::new(230, 230, MacKind::Msfp12),
            freq_hz: Self::FREQ,
        }
    }

    /// INT12 baseline: 210×210 scalar MACs (Section VII-B).
    pub fn int12() -> Self {
        SystemConfig {
            name: "INT-12",
            array: SystolicArray::new(210, 210, MacKind::Int12),
            freq_hz: Self::FREQ,
        }
    }

    /// bfloat16 baseline: 180×180 scalar MACs (Section VII-B).
    pub fn bf16() -> Self {
        SystemConfig {
            name: "bfloat16",
            array: SystolicArray::new(180, 180, MacKind::Bf16),
            freq_hz: Self::FREQ,
        }
    }

    /// Nvidia Mixed Precision baseline: 150×150 FP16 MACs (Section VII-B).
    pub fn nvidia_mp() -> Self {
        SystemConfig {
            name: "Nvidia MP",
            array: SystolicArray::new(150, 150, MacKind::Fp16),
            freq_hz: Self::FREQ,
        }
    }

    /// INT8 baseline (not dimensioned in the paper): equal-area derived.
    pub fn int8() -> Self {
        let side = Self::equal_area_side(MacKind::Int8);
        SystemConfig {
            name: "INT-8",
            array: SystolicArray::new(side, side, MacKind::Int8),
            freq_hz: Self::FREQ,
        }
    }

    /// FP32 baseline (not dimensioned in the paper): equal-area derived
    /// from the calibrated FP32 MAC area.
    pub fn fp32() -> Self {
        let side = Self::equal_area_side(MacKind::Fp32);
        SystemConfig {
            name: "FP32",
            array: SystolicArray::new(side, side, MacKind::Fp32),
            freq_hz: Self::FREQ,
        }
    }

    /// Side of a square scalar-MAC array whose total area equals the FAST
    /// array's 16384 fMAC units.
    fn equal_area_side(mac: MacKind) -> usize {
        let per_mac = mac.calibrated_area_ratio() / 16.0;
        ((16384.0 / per_mac).sqrt()).round() as usize
    }

    /// Every system of paper Figs 19/20, FAST first.
    pub fn all() -> Vec<SystemConfig> {
        vec![
            SystemConfig::fast(),
            SystemConfig::msfp12(),
            SystemConfig::hfp8(),
            SystemConfig::int12(),
            SystemConfig::bf16(),
            SystemConfig::nvidia_mp(),
            SystemConfig::fp32(),
            SystemConfig::int8(),
        ]
    }

    /// Array area in fMAC-equivalent units.
    pub fn array_area_fmac_units(&self) -> f64 {
        match self.array.mac {
            MacKind::Fmac => self.array.cells() as f64,
            mac => self.array.cells() as f64 * mac.calibrated_area_ratio() / 16.0,
        }
    }

    /// Array power in watts (calibrated per-MAC powers).
    pub fn array_power_w(&self) -> f64 {
        let per_unit_mw = match self.array.mac {
            MacKind::Fmac => MacKind::Fmac.calibrated_power_mw(),
            mac => mac.calibrated_power_mw() / 16.0,
        };
        self.array.cells() as f64 * per_unit_mw / 1000.0
    }

    /// Power of the non-array components (converters, accumulators, data
    /// generators, SRAMs) — taken from the FAST breakdown of Table III; the
    /// paper resizes these per number format but their sum is a small,
    /// comparable share for every system.
    pub fn support_power_w(&self) -> f64 {
        1.77 + 2.19 + 0.69 + 3.0 * Sram::paper_default().power_w()
    }

    /// Total system power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.array_power_w() + self.support_power_w()
    }

    /// Number of BFP converters provisioned (enough to feed and drain the
    /// array edges; FAST-specific).
    pub fn converter_count(&self) -> usize {
        2 * (self.array.rows + self.array.cols)
    }

    /// Model area of one converter in gate equivalents.
    pub fn converter_area_ge(&self) -> f64 {
        BfpConverter::area_ge(BfpFormat::high())
    }

    /// Model area of the tile accumulator buffers in gate equivalents: per
    /// array column, one FP32 adder plus a double-buffered 256-deep FP32
    /// partial-sum FIFO (one output stripe in flight, one draining).
    pub fn accumulator_area_ge(&self) -> f64 {
        self.array.cols as f64 * (fp_adder_ge(8, 23) + register_ge(32) * 512.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_dimensions() {
        assert_eq!(
            (
                SystemConfig::fast().array.rows,
                SystemConfig::fast().array.cols
            ),
            (256, 64)
        );
        assert_eq!(SystemConfig::hfp8().array.rows, 245);
        assert_eq!(SystemConfig::msfp12().array.rows, 230);
        assert_eq!(SystemConfig::int12().array.rows, 210);
        assert_eq!(SystemConfig::bf16().array.rows, 180);
        assert_eq!(SystemConfig::nvidia_mp().array.rows, 150);
    }

    #[test]
    fn baseline_arrays_are_roughly_area_equal_to_fast() {
        // Section VII-B equal-area configuration: every baseline's array
        // area should be within ~25% of the FAST array's 16384 units.
        let fast_area = SystemConfig::fast().array_area_fmac_units();
        for sys in SystemConfig::all() {
            let ratio = sys.array_area_fmac_units() / fast_area;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{}: area ratio {ratio:.2}",
                sys.name
            );
        }
    }

    #[test]
    fn fp32_array_is_smallest() {
        let fp32 = SystemConfig::fp32();
        for sys in SystemConfig::all() {
            assert!(fp32.array.cells() <= sys.array.cells(), "{}", sys.name);
        }
        // Sanity: roughly 100×100.
        assert!(
            (90..=115).contains(&fp32.array.rows),
            "side {}",
            fp32.array.rows
        );
    }

    #[test]
    fn fast_array_power_close_to_table3() {
        // Table III: systolic array 15.61 W. Our per-fMAC calibration gives
        // 16384 × 0.885 mW = 14.5 W — within ~10% (interconnect excluded).
        let p = SystemConfig::fast().array_power_w();
        assert!((p - 15.61).abs() / 15.61 < 0.15, "array power {p}");
    }

    #[test]
    fn total_power_in_paper_range() {
        // Table III totals ≈ 23.6 W for FAST.
        let total = SystemConfig::fast().total_power_w();
        assert!((20.0..=26.0).contains(&total), "total {total}");
    }
}
