//! Functional model of the FAST MAC (paper Fig 11 and Fig 13).
//!
//! An [`FmacCell`] holds a pre-loaded BFP weight group and consumes operand
//! groups chunk-serially — one pass per pair of 2-bit chunks — accumulating
//! into an FP32 register that spans many groups. The arithmetic is verified
//! bit-identical to the direct BFP dot product of `fast_bfp::dot`.

use fast_bfp::dot::{dot_chunked, ChunkedDot};
use fast_bfp::ChunkedGroup;

/// One systolic cell of the FAST array.
#[derive(Debug, Clone, Default)]
pub struct FmacCell {
    weight: Option<ChunkedGroup>,
    accumulator: f32,
    passes: u64,
}

impl FmacCell {
    /// Creates an idle cell.
    pub fn new() -> Self {
        FmacCell::default()
    }

    /// Pre-stores a weight group (forward / backward-activation modes load
    /// via the E0/M0 ports, Fig 11).
    pub fn load_weight(&mut self, weight: ChunkedGroup) {
        self.weight = Some(weight);
    }

    /// Streams one operand group through the cell: runs
    /// `chunks(weight) × chunks(operand)` passes and adds the group dot
    /// product into the FP32 accumulator. Returns the contribution.
    ///
    /// # Panics
    ///
    /// Panics if no weight is loaded or group lengths differ.
    pub fn consume(&mut self, operand: &ChunkedGroup) -> f32 {
        let w = self
            .weight
            .as_ref()
            .expect("fMAC cell has no weight loaded");
        let ChunkedDot { value, passes } = dot_chunked(w, operand);
        self.passes += passes as u64;
        self.accumulator += value;
        value
    }

    /// The FP32 accumulator spanning groups.
    pub fn accumulator(&self) -> f32 {
        self.accumulator
    }

    /// Total chunk passes executed (the cycle-cost currency of Section V-B).
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Clears the accumulator (new output tile).
    pub fn reset_accumulator(&mut self) {
        self.accumulator = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_bfp::dot::dot_f32;
    use fast_bfp::{BfpFormat, BfpGroup};
    use rand::{Rng, SeedableRng};

    fn quantize(xs: &[f32], m: u32) -> BfpGroup {
        BfpGroup::quantize_nearest(xs, BfpFormat::new(16, m, 8).unwrap())
    }

    #[test]
    fn cell_matches_direct_dot_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut cell = FmacCell::new();
        let w: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let wg = quantize(&w, 4);
        cell.load_weight(ChunkedGroup::from_group(&wg).unwrap());
        let mut expect = 0.0f32;
        for _ in 0..8 {
            let x: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let xg = quantize(&x, 2);
            let contribution = cell.consume(&ChunkedGroup::from_group(&xg).unwrap());
            let direct = dot_f32(&wg, &xg);
            assert_eq!(contribution, direct);
            expect += direct;
        }
        assert_eq!(cell.accumulator(), expect);
        // 4-bit × 2-bit = 2 passes per group (paper Fig 13).
        assert_eq!(cell.passes(), 8 * 2);
    }

    #[test]
    fn pass_count_scales_with_precision() {
        let mut cell = FmacCell::new();
        let wg = quantize(&[0.5f32; 16], 4);
        cell.load_weight(ChunkedGroup::from_group(&wg).unwrap());
        let x4 = ChunkedGroup::from_group(&quantize(&[0.25f32; 16], 4)).unwrap();
        let x2 = ChunkedGroup::from_group(&quantize(&[0.25f32; 16], 2)).unwrap();
        cell.consume(&x4);
        assert_eq!(cell.passes(), 4); // 4×4 bits → 4 passes
        cell.consume(&x2);
        assert_eq!(cell.passes(), 6); // +2 passes
    }

    #[test]
    fn reset_clears_accumulator_but_not_pass_count() {
        let mut cell = FmacCell::new();
        let wg = quantize(&[1.0f32; 16], 2);
        cell.load_weight(ChunkedGroup::from_group(&wg).unwrap());
        let xg = ChunkedGroup::from_group(&quantize(&[1.0f32; 16], 2)).unwrap();
        cell.consume(&xg);
        assert!(cell.accumulator() > 0.0);
        cell.reset_accumulator();
        assert_eq!(cell.accumulator(), 0.0);
        assert_eq!(cell.passes(), 1);
    }

    #[test]
    #[should_panic(expected = "no weight loaded")]
    fn consume_without_weight_panics() {
        let mut cell = FmacCell::new();
        let xg = ChunkedGroup::from_group(&quantize(&[1.0f32; 16], 2)).unwrap();
        cell.consume(&xg);
    }
}
