//! Training-iteration time and energy under a system configuration — the
//! cost half of paper Figs 19/20.
//!
//! Each GEMM-bearing DNN layer contributes the three GEMMs of Fig 3 per
//! iteration: forward `O = A·W`, backward `∇A = ∇O·Wᵀ` (weight-stationary,
//! transposed entry side) and `∇W = Aᵀ·∇O` (accumulation-stationary). On
//! the FAST system each GEMM's cycle count is multiplied by the fMAC chunk
//! passes implied by the layer's `(m_W, m_A, m_G)` mantissa widths
//! (Section V-B: a 4-bit × 4-bit product needs 4 passes).

use crate::energy::energy_joules;
use crate::system::SystemConfig;
use crate::systolic::Gemm;

/// Per-layer work description for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerWork {
    /// Forward GEMM dims (`O (M×N) = A (M×K) · W (K×N)`).
    pub gemm: Gemm,
    /// Weight mantissa width (bits).
    pub m_w: u32,
    /// Activation mantissa width (bits).
    pub m_a: u32,
    /// Gradient mantissa width (bits).
    pub m_g: u32,
}

impl LayerWork {
    /// Uniform-width helper.
    pub fn uniform(gemm: Gemm, m: u32) -> Self {
        LayerWork {
            gemm,
            m_w: m,
            m_a: m,
            m_g: m,
        }
    }
}

/// Cost of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationCost {
    /// Total cycles across all layers and passes.
    pub cycles: u64,
    /// Wall-clock seconds at the system frequency.
    pub seconds: f64,
    /// Energy in joules at the system's total power.
    pub energy_j: f64,
}

fn chunk_passes(bits_a: u32, bits_b: u32) -> u32 {
    bits_a.div_ceil(2) * bits_b.div_ceil(2)
}

/// Cycles for the three training GEMMs of one layer.
pub fn layer_cycles(system: &SystemConfig, work: &LayerWork) -> u64 {
    let variable = system.array.mac.supports_variable_precision();
    let (p_fwd, p_ga, p_gw) = if variable {
        (
            chunk_passes(work.m_w, work.m_a),
            chunk_passes(work.m_g, work.m_w),
            chunk_passes(work.m_g, work.m_a),
        )
    } else {
        (1, 1, 1)
    };
    let g = work.gemm;
    // Forward: O (M×N) = A (M×K) · W (K×N). Weight tile spans
    // (rows·g) × cols of (K, N); M rows stream through.
    let fwd = system.array.weight_stationary_cycles(g, p_fwd);
    // Backward activation (Fig 12b): ∇A = ∇O·Wᵀ with the *same* stored W
    // tile — ∇O enters from the other side, so the tiling is identical and
    // only the chunk passes change (reduction now runs across the columns).
    let ga = system.array.weight_stationary_cycles(g, p_ga);
    // Backward weight (Fig 12c): ∇W (K×N) accumulates in place over the
    // same tile geometry while M streams.
    let gw = system.array.accumulation_stationary_cycles(g, p_gw);
    fwd + ga + gw
}

/// Cost of a full training iteration over all layers.
pub fn training_iteration(system: &SystemConfig, layers: &[LayerWork]) -> IterationCost {
    let cycles: u64 = layers.iter().map(|w| layer_cycles(system, w)).sum();
    let seconds = cycles as f64 / system.freq_hz;
    IterationCost {
        cycles,
        seconds,
        energy_j: energy_joules(system, cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_like_layers(m: u32) -> Vec<LayerWork> {
        // Representative ResNet-18/ImageNet conv GEMMs (im2col form) at the
        // paper's mini-batch of 256.
        [
            Gemm {
                m: 802_816,
                k: 576,
                n: 64,
            },
            Gemm {
                m: 200_704,
                k: 1152,
                n: 128,
            },
            Gemm {
                m: 50_176,
                k: 2304,
                n: 256,
            },
            Gemm {
                m: 12_544,
                k: 4608,
                n: 512,
            },
        ]
        .iter()
        .map(|&gemm| LayerWork::uniform(gemm, m))
        .collect()
    }

    #[test]
    fn fast_at_low_precision_beats_fast_at_high_precision() {
        let fast = SystemConfig::fast();
        let low = training_iteration(&fast, &resnet_like_layers(2));
        let high = training_iteration(&fast, &resnet_like_layers(4));
        assert!(
            high.cycles > 2 * low.cycles,
            "4-bit should cost ~4 passes vs 1"
        );
        assert!(high.cycles < 5 * low.cycles);
    }

    #[test]
    fn fp32_system_is_slowest_fast_is_fastest() {
        // Fig 19's ordering at matched work: FAST < {MSFP12, HFP8, INT12,
        // bf16, MP} < FP32 for per-iteration time (accuracy effects come on
        // top in the TTA benches).
        let layers4 = resnet_like_layers(4);
        let layers2 = resnet_like_layers(2);
        let fast_sys = SystemConfig::fast();
        // FAST-Adaptive averages low/high precision over training; Fig 17
        // shows most of training at m=2 — use a 2:1 low:high mixture.
        let fast_cycles = (2 * training_iteration(&fast_sys, &layers2).cycles
            + training_iteration(&fast_sys, &layers4).cycles)
            / 3;
        let fp32 = training_iteration(&SystemConfig::fp32(), &layers4).cycles;
        let mp = training_iteration(&SystemConfig::nvidia_mp(), &layers4).cycles;
        let bf16 = training_iteration(&SystemConfig::bf16(), &layers4).cycles;
        let msfp = training_iteration(&SystemConfig::msfp12(), &layers4).cycles;
        assert!(fast_cycles < msfp, "FAST {fast_cycles} vs MSFP {msfp}");
        assert!(msfp < fp32);
        assert!(mp < fp32 && bf16 < mp, "bf16 {bf16} mp {mp} fp32 {fp32}");
        // FP32 should be several times slower than FAST (paper: 8.5× TTA).
        let ratio = fp32 as f64 / fast_cycles as f64;
        assert!(ratio > 3.0, "FP32/FAST per-iteration ratio {ratio:.2}");
    }

    #[test]
    fn variable_precision_only_affects_fmac_systems() {
        let mp = SystemConfig::nvidia_mp();
        let a = training_iteration(&mp, &resnet_like_layers(2)).cycles;
        let b = training_iteration(&mp, &resnet_like_layers(4)).cycles;
        assert_eq!(a, b, "scalar systems ignore mantissa width");
    }

    #[test]
    fn mixed_precision_settings_order_by_gemm_cost() {
        // GEMM-pass cost alone grades the settings into tiers; the strict
        // total order of Fig 17's legend additionally counts gradient
        // conversion/traffic and lives in `fast-core`'s controller.
        let fast = SystemConfig::fast();
        let gemm = Gemm {
            m: 4096,
            k: 1152,
            n: 128,
        };
        let cost = |w, a, g| {
            training_iteration(
                &fast,
                &[LayerWork {
                    gemm,
                    m_w: w,
                    m_a: a,
                    m_g: g,
                }],
            )
            .cycles
        };
        assert!(cost(2, 2, 2) < cost(2, 4, 2));
        // The three single-4-bit settings tie at the GEMM level (5 passes).
        assert_eq!(cost(2, 4, 2), cost(4, 2, 2));
        assert_eq!(cost(4, 2, 2), cost(2, 2, 4));
        assert!(cost(2, 2, 4) < cost(4, 4, 2));
        assert!(cost(4, 4, 4) > cost(4, 2, 4));
        assert!(cost(4, 4, 4) == cost(4, 4, 4));
    }

    #[test]
    fn energy_tracks_time_times_power() {
        let sys = SystemConfig::fast();
        let it = training_iteration(&sys, &resnet_like_layers(4));
        let expect = sys.total_power_w() * it.seconds;
        assert!((it.energy_j - expect).abs() < 1e-12);
    }
}
