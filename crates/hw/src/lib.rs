//! Hardware model of the FAST system (paper Sections V and VII).
//!
//! * [`gates`] — analytical gate-cost primitives (the Synopsys/NanGate/CACTI
//!   stand-in; substitution documented in DESIGN.md §2).
//! * [`MacKind`] — the MAC designs of Table IV with both model-derived and
//!   paper-calibrated area/power/LUT/FF numbers.
//! * [`FmacCell`] — functional fMAC: chunk-serial variable-precision BFP dot
//!   products, bit-identical to `fast_bfp::dot` (Figs 11, 13).
//! * [`BfpConverter`] — the converter datapath of Fig 14 in integer steps,
//!   bit-identical to the reference quantizer, including the Eq. 2
//!   improvement block.
//! * [`SystolicArray`] / [`SystolicFunctionalSim`] — cycle model and the
//!   three-dataflow functional simulation of Fig 12 (no explicit matrix
//!   transposition).
//! * [`SystemConfig`] — the FAST system and the area-equalized baselines of
//!   Section VII-B; [`fast_breakdown`] reproduces Table III.
//! * [`training_iteration`] — per-iteration time/energy, the cost half of
//!   Figs 19/20.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gates;

mod converter;
mod energy;
mod fmac;
mod mac;
mod perf;
mod sram;
mod system;
mod systolic;

pub use converter::{BfpConverter, ConverterOutput};
pub use energy::{energy_joules, fast_breakdown, ComponentShare};
pub use fmac::FmacCell;
pub use mac::{MacCost, MacKind};
pub use perf::{layer_cycles, training_iteration, IterationCost, LayerWork};
pub use sram::{Sram, SRAM_GE_PER_KB, SRAM_MW_PER_KB, SRAM_PJ_PER_ACCESS};
pub use system::SystemConfig;
pub use systolic::{Gemm, SystolicArray, SystolicFunctionalSim};
