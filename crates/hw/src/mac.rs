//! MAC designs: the fMAC and the comparison designs of paper Table IV.
//!
//! For each design two sets of numbers exist:
//!
//! * **model** — derived from the analytical gate model ([`crate::gates`]),
//!   which reproduces the paper's orderings (quadratic multiplier growth,
//!   FP-accumulator amortization across BFP groups);
//! * **paper** — the published Table IV values (ASIC area ratio, power,
//!   FPGA LUT/FF), used as calibrated ground truth by the system-level
//!   presets so that Figs 19/20 inherit the authors' synthesis results.
//!
//! All costs are for a *16-element unit*: one fMAC (which performs a whole
//! g=16 BFP dot product per pass) or sixteen scalar MACs of the baseline
//! designs — exactly Table IV's "16×" convention.

use crate::gates::{
    adder_ge, adder_tree_ge, comparator_ge, fp_adder_ge, luts_from_ge, multiplier_ge, register_ge,
};

/// A multiply-accumulate design evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacKind {
    /// The FAST MAC: 16 two-bit-chunk multipliers, adder tree, one FP32
    /// accumulator per group (paper Fig 11).
    Fmac,
    /// 16 × INT8 fixed-point MACs.
    Int8,
    /// 16 × HFP8 MACs (costed at 4-bit exponent / 2-bit mantissa, strictly
    /// cheaper than either HFP8 format, as the paper does).
    Hfp8,
    /// 16 × INT12 fixed-point MACs.
    Int12,
    /// 16 × bfloat16 MACs with FP32 accumulation.
    Bf16,
    /// 16 × FP16 MACs with FP32 accumulation (Nvidia MP compute).
    Fp16,
    /// 16 × FP32 MACs (not in Table IV; derived from the gate model).
    Fp32,
    /// 16 × MSFP-12 MACs (shared exponent, 4-bit signed mantissa, FP
    /// accumulation amortized per group; array dims given in Section VII-B).
    Msfp12,
}

/// Cost breakdown of a 16-element MAC unit in gate equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacCost {
    /// Combinational logic.
    pub combinational_ge: f64,
    /// Register (flip-flop) state.
    pub register_ge: f64,
}

impl MacCost {
    /// Total gate equivalents.
    pub fn total_ge(&self) -> f64 {
        self.combinational_ge + self.register_ge
    }
}

impl MacKind {
    /// All designs of Table IV, in the paper's row order.
    pub const TABLE4: [MacKind; 6] = [
        MacKind::Fmac,
        MacKind::Int8,
        MacKind::Hfp8,
        MacKind::Int12,
        MacKind::Bf16,
        MacKind::Fp16,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MacKind::Fmac => "fMAC",
            MacKind::Int8 => "16x INT-8",
            MacKind::Hfp8 => "16x HFP8",
            MacKind::Int12 => "16x INT-12",
            MacKind::Bf16 => "16x bfloat16",
            MacKind::Fp16 => "16x FP16",
            MacKind::Fp32 => "16x FP32",
            MacKind::Msfp12 => "16x MSFP-12",
        }
    }

    /// Analytical gate-model cost of the 16-element unit.
    pub fn model_cost(&self) -> MacCost {
        match self {
            MacKind::Fmac => MacCost {
                // 16 × 2b×2b magnitude multipliers + sign logic, a 16-input
                // adder tree, one shared-exponent adder and one FP32
                // accumulator for the whole group (Fig 11).
                combinational_ge: 16.0 * (multiplier_ge(2, 2) + 8.0)
                    + adder_tree_ge(16, 5)
                    + adder_ge(8)
                    + fp_adder_ge(8, 23),
                register_ge: register_ge(32) + register_ge(16 * 3), // FP acc + operand staging
            },
            MacKind::Int8 => MacCost {
                combinational_ge: 16.0 * (multiplier_ge(8, 8) + adder_ge(24)),
                register_ge: 16.0 * register_ge(24),
            },
            MacKind::Hfp8 => MacCost {
                // 4×4 mantissa multipliers (3 bits + implicit 1), 4-bit
                // exponent add, FP16 accumulation per element.
                combinational_ge: 16.0 * (multiplier_ge(4, 4) + adder_ge(4) + fp_adder_ge(5, 10)),
                register_ge: 16.0 * register_ge(16),
            },
            MacKind::Int12 => MacCost {
                combinational_ge: 16.0 * (multiplier_ge(12, 12) + adder_ge(32)),
                register_ge: 16.0 * register_ge(32),
            },
            MacKind::Bf16 => MacCost {
                combinational_ge: 16.0 * (multiplier_ge(8, 8) + adder_ge(8) + fp_adder_ge(8, 23)),
                register_ge: 16.0 * register_ge(32),
            },
            MacKind::Fp16 => MacCost {
                combinational_ge: 16.0 * (multiplier_ge(11, 11) + adder_ge(5) + fp_adder_ge(8, 23)),
                register_ge: 16.0 * register_ge(32),
            },
            MacKind::Fp32 => MacCost {
                combinational_ge: 16.0 * (multiplier_ge(24, 24) + adder_ge(8) + fp_adder_ge(8, 23)),
                register_ge: 16.0 * register_ge(32),
            },
            MacKind::Msfp12 => MacCost {
                // 4-bit signed mantissa multipliers, 16-bit integer
                // accumulate within the group; the FP32 accumulator and
                // exponent adder are amortized across the group like fMAC.
                combinational_ge: 16.0 * (multiplier_ge(4, 4) + adder_ge(16))
                    + comparator_ge(8)
                    + adder_ge(8)
                    + fp_adder_ge(8, 23),
                register_ge: 16.0 * register_ge(16) + register_ge(32),
            },
        }
    }

    /// Model-derived area ratio relative to one fMAC.
    pub fn model_area_ratio(&self) -> f64 {
        self.model_cost().total_ge() / MacKind::Fmac.model_cost().total_ge()
    }

    /// Model-derived power (mW) for the 16-element unit at 500 MHz,
    /// calibrated so the fMAC dissipates the paper's 0.885 mW.
    pub fn model_power_mw(&self) -> f64 {
        0.885 * self.model_cost().total_ge() / MacKind::Fmac.model_cost().total_ge()
    }

    /// Model-derived FPGA resources `(LUT, FF)`.
    pub fn model_fpga(&self) -> (u64, u64) {
        let c = self.model_cost();
        (
            luts_from_ge(c.combinational_ge),
            (c.register_ge / 6.0).round() as u64,
        )
    }

    /// Paper Table IV area ratio (relative to fMAC), when published.
    pub fn paper_area_ratio(&self) -> Option<f64> {
        match self {
            MacKind::Fmac => Some(1.0),
            MacKind::Int8 => Some(3.8),
            MacKind::Hfp8 => Some(4.1),
            MacKind::Int12 => Some(5.6),
            MacKind::Bf16 => Some(9.6),
            MacKind::Fp16 => Some(10.6),
            _ => None,
        }
    }

    /// Paper Table IV power (mW per 16-element unit), when published.
    pub fn paper_power_mw(&self) -> Option<f64> {
        match self {
            MacKind::Fmac => Some(0.885),
            MacKind::Int8 => Some(2.241),
            MacKind::Hfp8 => Some(2.406),
            MacKind::Int12 => Some(2.920),
            MacKind::Bf16 => Some(3.869),
            MacKind::Fp16 => Some(4.474),
            _ => None,
        }
    }

    /// Paper Table IV FPGA resources `(LUT, FF)`, when published.
    pub fn paper_fpga(&self) -> Option<(u64, u64)> {
        match self {
            MacKind::Fmac => Some((269, 140)),
            MacKind::Int8 => Some((498, 195)),
            MacKind::Hfp8 => Some((527, 220)),
            MacKind::Int12 => Some((730, 273)),
            MacKind::Bf16 => Some((1305, 684)),
            MacKind::Fp16 => Some((1514, 753)),
            _ => None,
        }
    }

    /// Calibrated area of the 16-element unit in fMAC units: the paper's
    /// number when available, otherwise the gate model scaled through the
    /// nearest published anchor (FP32 through FP16; MSFP-12 through the
    /// equal-area array dimensions of Section VII-B, see
    /// [`crate::system::SystemConfig`]).
    pub fn calibrated_area_ratio(&self) -> f64 {
        if let Some(a) = self.paper_area_ratio() {
            return a;
        }
        match self {
            MacKind::Fp32 => {
                // Scale FP16's published ratio by the model FP32/FP16 ratio.
                let model =
                    MacKind::Fp32.model_cost().total_ge() / MacKind::Fp16.model_cost().total_ge();
                10.6 * model
            }
            // Derived from equal-area 230×230 MSFP-12 vs 256×64 fMAC arrays.
            MacKind::Msfp12 => 16.0 * (256.0 * 64.0) / (230.0 * 230.0),
            _ => unreachable!("all other kinds have paper values"),
        }
    }

    /// Calibrated power (mW per 16-element unit), paper value when
    /// available, else model-scaled through FP16 / interpolation.
    pub fn calibrated_power_mw(&self) -> f64 {
        if let Some(p) = self.paper_power_mw() {
            return p;
        }
        match self {
            MacKind::Fp32 => {
                let model =
                    MacKind::Fp32.model_cost().total_ge() / MacKind::Fp16.model_cost().total_ge();
                4.474 * model
            }
            // Between HFP8 and INT12, matching its calibrated area position.
            MacKind::Msfp12 => {
                let a = MacKind::Msfp12.calibrated_area_ratio();
                0.885 * a * (2.920 / (0.885 * 5.6)) // scale like INT12's power/area
            }
            _ => unreachable!("all other kinds have paper values"),
        }
    }

    /// Elements of the reduction dimension consumed per cell per cycle:
    /// 16 for the fMAC (one whole BFP group per pass, Fig 11), 1 for all
    /// scalar MAC baselines (including MSFP-12, whose Section VII-B array of
    /// 230×230 cells is scalar with group-amortized FP accumulation).
    pub fn group_elements_per_cycle(&self) -> usize {
        match self {
            MacKind::Fmac => 16,
            _ => 1,
        }
    }

    /// Whether this design supports variable-precision chunk passes
    /// (only the fMAC does; paper Section V-B).
    pub fn supports_variable_precision(&self) -> bool {
        matches!(self, MacKind::Fmac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_paper_area_ordering() {
        // Table IV row order is fMAC < INT8 < HFP8 < INT12 < bf16 < FP16.
        // The gate model must reproduce the ordering (absolute ratios are
        // calibrated separately).
        let ratios: Vec<f64> = MacKind::TABLE4
            .iter()
            .map(|m| m.model_area_ratio())
            .collect();
        for w in ratios.windows(2) {
            assert!(w[0] < w[1], "ordering violated: {ratios:?}");
        }
    }

    #[test]
    fn model_ratios_are_in_the_papers_ballpark() {
        // Within 2× of the published ratios — the gate model is a proxy for
        // synthesis, not a replacement.
        for mac in MacKind::TABLE4 {
            let model = mac.model_area_ratio();
            let paper = mac.paper_area_ratio().unwrap();
            let ratio = model / paper;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: model {model:.2} vs paper {paper:.2}",
                mac.name()
            );
        }
    }

    #[test]
    fn fmac_is_cheapest_design() {
        for mac in [
            MacKind::Int8,
            MacKind::Hfp8,
            MacKind::Int12,
            MacKind::Bf16,
            MacKind::Fp16,
        ] {
            assert!(mac.model_area_ratio() > 1.0, "{}", mac.name());
            assert!(mac.calibrated_area_ratio() > 1.0);
            assert!(mac.calibrated_power_mw() > MacKind::Fmac.calibrated_power_mw());
        }
    }

    #[test]
    fn fp32_is_most_expensive() {
        let fp32 = MacKind::Fp32.calibrated_area_ratio();
        for mac in MacKind::TABLE4 {
            assert!(fp32 > mac.calibrated_area_ratio());
        }
        // FP32 should be roughly 2-3x FP16 (24-bit vs 11-bit multipliers).
        let rel = fp32 / 10.6;
        assert!((1.5..=3.5).contains(&rel), "FP32/FP16 = {rel}");
    }

    #[test]
    fn group_based_designs() {
        assert_eq!(MacKind::Fmac.group_elements_per_cycle(), 16);
        assert_eq!(MacKind::Msfp12.group_elements_per_cycle(), 1);
        assert_eq!(MacKind::Fp16.group_elements_per_cycle(), 1);
        assert!(MacKind::Fmac.supports_variable_precision());
        assert!(!MacKind::Msfp12.supports_variable_precision());
    }

    #[test]
    fn calibrated_values_match_paper_where_published() {
        assert_eq!(MacKind::Int12.calibrated_area_ratio(), 5.6);
        assert_eq!(MacKind::Bf16.calibrated_power_mw(), 3.869);
        assert_eq!(MacKind::Fmac.paper_fpga(), Some((269, 140)));
    }

    #[test]
    fn msfp12_sits_between_hfp8_and_bf16() {
        let a = MacKind::Msfp12.calibrated_area_ratio();
        assert!(a > 4.1 && a < 9.6, "MSFP-12 area ratio {a}");
    }
}
