//! Shared experiment infrastructure for the paper-reproduction harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library provides the common
//! pieces: quick/full experiment scaling, the format zoo of Table II /
//! Fig 20, standard workload builders, and training runners that couple the
//! `fast-nn` training loop with the `fast-hw` cost meter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formats;
pub mod runner;
pub mod suite;
pub mod table;
pub mod workloads;

/// Experiment scale: `Quick` finishes in seconds-to-minutes per binary;
/// `Full` runs the larger grids recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced grid for fast iteration and CI.
    Quick,
    /// The full experiment grid.
    Full,
}

impl Scale {
    /// Reads the scale from argv (`--scale quick|full`) or the
    /// `FAST_EXPT_SCALE` environment variable; defaults to `Quick`.
    pub fn from_env() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                if let Some(v) = args.next() {
                    return Scale::parse(&v);
                }
            } else if let Some(v) = a.strip_prefix("--scale=") {
                return Scale::parse(v);
            }
        }
        match std::env::var("FAST_EXPT_SCALE") {
            Ok(v) => Scale::parse(&v),
            Err(_) => Scale::Quick,
        }
    }

    fn parse(v: &str) -> Scale {
        match v.to_ascii_lowercase().as_str() {
            "full" => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks `quick` or `full` value by scale.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("full"), Scale::Full);
        assert_eq!(Scale::parse("quick"), Scale::Quick);
        assert_eq!(Scale::parse("anything"), Scale::Quick);
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
