//! The number-format zoo evaluated by the paper (Table II columns, Fig 19
//! and Fig 20 series), each paired with the hardware system that executes
//! it.

use fast_hw::SystemConfig;
use fast_nn::LayerPrecision;

/// A named training format with its execution substrate.
#[derive(Debug, Clone, Copy)]
pub struct FormatEntry {
    /// Column/series name as the paper prints it.
    pub name: &'static str,
    /// Per-layer precision assignment used during training.
    pub precision: LayerPrecision,
    /// Hardware system used for time/energy accounting (None = accuracy
    /// only, e.g. the fixed-BFP rows run on the FAST system).
    pub system: fn() -> SystemConfig,
    /// Fixed fMAC mantissa widths to charge when the format runs on the
    /// FAST system (None = use the layer's own widths; scalar systems
    /// ignore this entirely).
    pub fast_widths: Option<u32>,
}

/// The full Table II column set.
pub fn table2_formats() -> Vec<FormatEntry> {
    vec![
        FormatEntry {
            name: "FP32",
            precision: LayerPrecision::fp32(),
            system: SystemConfig::fp32,
            fast_widths: None,
        },
        FormatEntry {
            name: "bfloat16",
            precision: LayerPrecision::bf16(),
            system: SystemConfig::bf16,
            fast_widths: None,
        },
        FormatEntry {
            name: "Nvidia MP",
            precision: LayerPrecision::nvidia_mp(),
            system: SystemConfig::nvidia_mp,
            fast_widths: None,
        },
        FormatEntry {
            name: "INT8",
            precision: LayerPrecision::int8(),
            system: SystemConfig::int8,
            fast_widths: None,
        },
        FormatEntry {
            name: "INT12",
            precision: LayerPrecision::int12(),
            system: SystemConfig::int12,
            fast_widths: None,
        },
        FormatEntry {
            name: "MSFP-12",
            precision: LayerPrecision::msfp12(),
            system: SystemConfig::msfp12,
            fast_widths: None,
        },
        FormatEntry {
            name: "LowBFP",
            precision: LayerPrecision::bfp_fixed(2),
            system: SystemConfig::fast,
            fast_widths: Some(2),
        },
        FormatEntry {
            name: "MidBFP",
            precision: LayerPrecision::bfp_fixed(3),
            system: SystemConfig::fast,
            fast_widths: Some(3),
        },
        FormatEntry {
            name: "HighBFP",
            precision: LayerPrecision::bfp_fixed(4),
            system: SystemConfig::fast,
            fast_widths: Some(4),
        },
        FormatEntry {
            name: "HFP8",
            precision: LayerPrecision::hfp8(),
            system: SystemConfig::hfp8,
            fast_widths: None,
        },
    ]
}

/// The Fig 19 / Fig 20 comparison series (formats with a hardware story).
pub fn fig20_formats() -> Vec<FormatEntry> {
    table2_formats()
        .into_iter()
        .filter(|f| {
            matches!(
                f.name,
                "FP32" | "Nvidia MP" | "bfloat16" | "INT12" | "MSFP-12" | "HFP8" | "MidBFP"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_table2_columns() {
        let names: Vec<&str> = table2_formats().iter().map(|f| f.name).collect();
        for want in [
            "FP32",
            "bfloat16",
            "Nvidia MP",
            "INT8",
            "INT12",
            "MSFP-12",
            "LowBFP",
            "MidBFP",
            "HighBFP",
            "HFP8",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn fig20_series_is_a_subset() {
        assert_eq!(fig20_formats().len(), 7);
    }
}
