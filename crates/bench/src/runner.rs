//! Training runners coupling the `fast-nn` loop with the `fast-hw` cost
//! meter, producing the accuracy-vs-simulated-time curves behind paper
//! Figs 9, 19 and 20 and the final-quality numbers of Table II.

use fast_core::CostMeter;
use fast_data::{SequenceTask, SyntheticDetection, SyntheticImages};
use fast_nn::models::{decode_predictions, map_lite, yolo_loss, YoloConfig};
use fast_nn::{accuracy_percent, Sequential, Session, Sgd, TrainHook, Trainer};

/// Hyperparameters for a training run.
#[derive(Debug, Clone)]
pub struct RunCfg {
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// `(epoch, multiplier)` learning-rate drops.
    pub lr_drops: Vec<(usize, f32)>,
    /// RNG seed (model init seed is supplied separately by the caller).
    pub seed: u64,
}

impl RunCfg {
    /// Sensible defaults for the synthetic image task.
    pub fn images(epochs: usize, seed: u64) -> Self {
        RunCfg {
            epochs,
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            lr_drops: vec![(epochs / 2, 0.1)],
            seed,
        }
    }
}

/// One evaluation snapshot.
#[derive(Debug, Clone, Copy)]
pub struct EvalPoint {
    /// Epoch index (1-based after the epoch completes).
    pub epoch: usize,
    /// Optimizer iterations completed.
    pub iter: usize,
    /// Validation quality (accuracy %, token accuracy %, or mAP %).
    pub quality: f64,
    /// Simulated hardware seconds so far (0 when no system attached).
    pub sim_seconds: f64,
    /// Simulated hardware energy so far in joules.
    pub sim_energy_j: f64,
}

/// A completed training run.
#[derive(Debug, Clone)]
pub struct TrainRun {
    /// Per-epoch evaluation snapshots.
    pub evals: Vec<EvalPoint>,
    /// Mean training loss of the final epoch.
    pub final_loss: f64,
}

impl TrainRun {
    /// Best quality seen at any evaluation point.
    pub fn best_quality(&self) -> f64 {
        self.evals
            .iter()
            .map(|e| e.quality)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Final-epoch quality.
    pub fn final_quality(&self) -> f64 {
        self.evals.last().map(|e| e.quality).unwrap_or(0.0)
    }

    /// Simulated seconds at which `target` quality is first reached
    /// (linear interpolation between evaluation points), or `None`.
    pub fn time_to_quality(&self, target: f64) -> Option<f64> {
        let mut prev: Option<&EvalPoint> = None;
        for e in &self.evals {
            if e.quality >= target {
                return match prev {
                    Some(p) if e.quality > p.quality => {
                        let f = (target - p.quality) / (e.quality - p.quality);
                        Some(p.sim_seconds + f * (e.sim_seconds - p.sim_seconds))
                    }
                    _ => Some(e.sim_seconds),
                };
            }
            prev = Some(e);
        }
        None
    }

    /// Simulated energy at which `target` quality is first reached.
    pub fn energy_to_quality(&self, target: f64) -> Option<f64> {
        let mut prev: Option<&EvalPoint> = None;
        for e in &self.evals {
            if e.quality >= target {
                return match prev {
                    Some(p) if e.quality > p.quality => {
                        let f = (target - p.quality) / (e.quality - p.quality);
                        Some(p.sim_energy_j + f * (e.sim_energy_j - p.sim_energy_j))
                    }
                    _ => Some(e.sim_energy_j),
                };
            }
            prev = Some(e);
        }
        None
    }
}

fn apply_lr_drops(opt: &mut Sgd, drops: &[(usize, f32)], epoch: usize, base_lr: f32) {
    let mut lr = base_lr;
    for &(at, mult) in drops {
        if epoch >= at {
            lr *= mult;
        }
    }
    opt.set_lr(lr);
}

/// Trains an image classifier, evaluating every epoch.
pub fn run_images(
    model: Sequential,
    data: &SyntheticImages,
    cfg: &RunCfg,
    hook: &mut dyn TrainHook,
    meter: Option<CostMeter>,
) -> TrainRun {
    let opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut trainer = Trainer::new(model, opt, cfg.seed);
    let mut meter = meter;
    let test = data.test_batches(cfg.batch.max(64));
    let mut evals = Vec::new();
    let mut final_loss = 0.0;
    for epoch in 0..cfg.epochs {
        apply_lr_drops(&mut trainer.opt, &cfg.lr_drops, epoch, cfg.lr);
        let mut loss_sum = 0.0;
        let mut nb = 0usize;
        for (x, labels) in data.train_batches(cfg.batch, epoch as u64) {
            let stats = trainer.step_classification(&x, &labels, hook);
            if let Some(m) = meter.as_mut() {
                m.record(&mut trainer.model);
            }
            loss_sum += stats.loss;
            nb += 1;
        }
        final_loss = loss_sum / nb.max(1) as f64;
        let quality = trainer.evaluate_classification(&test);
        evals.push(EvalPoint {
            epoch: epoch + 1,
            iter: trainer.iterations(),
            quality,
            sim_seconds: meter.as_ref().map(|m| m.total_seconds()).unwrap_or(0.0),
            sim_energy_j: meter.as_ref().map(|m| m.total_energy_j).unwrap_or(0.0),
        });
    }
    TrainRun { evals, final_loss }
}

/// Trains the transformer on the sequence task (Adam is approximated with
/// high-momentum SGD at small scale when `use_adam` is false).
pub fn run_sequence(
    model: Sequential,
    data: &SequenceTask,
    cfg: &RunCfg,
    hook: &mut dyn TrainHook,
    meter: Option<CostMeter>,
) -> TrainRun {
    use fast_nn::{softmax_cross_entropy, Adam, Layer};
    let mut session = Session::new(cfg.seed);
    let mut model = model;
    let mut opt = Adam::new(cfg.lr);
    let mut meter = meter;
    let test = data.test_batches(cfg.batch.max(64));
    let mut evals = Vec::new();
    let mut final_loss = 0.0;
    let mut iter = 0usize;
    for epoch in 0..cfg.epochs {
        let mut loss_sum = 0.0;
        let mut nb = 0usize;
        for (x, labels) in data.train_batches(cfg.batch, epoch as u64) {
            hook.before_iteration(iter, &mut model);
            session.train = true;
            let logits = model.forward(&x, &mut session);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad, &mut session);
            hook.after_backward(iter, &mut model);
            opt.step(&mut model);
            if let Some(m) = meter.as_mut() {
                m.record(&mut model);
            }
            loss_sum += loss;
            nb += 1;
            iter += 1;
        }
        final_loss = loss_sum / nb.max(1) as f64;
        // Token accuracy as the BLEU proxy.
        session.train = false;
        let mut correct = 0.0f64;
        let mut total = 0usize;
        for (x, labels) in &test {
            let logits = model.forward(x, &mut session);
            correct += accuracy_percent(&logits, labels) * labels.len() as f64;
            total += labels.len();
        }
        session.train = true;
        let quality = if total == 0 {
            0.0
        } else {
            correct / total as f64
        };
        evals.push(EvalPoint {
            epoch: epoch + 1,
            iter,
            quality,
            sim_seconds: meter.as_ref().map(|m| m.total_seconds()).unwrap_or(0.0),
            sim_energy_j: meter.as_ref().map(|m| m.total_energy_j).unwrap_or(0.0),
        });
    }
    TrainRun { evals, final_loss }
}

/// Trains TinyYolo on the detection task; quality = mAP@0.5 (%).
pub fn run_detection(
    model: Sequential,
    data: &SyntheticDetection,
    yolo_cfg: YoloConfig,
    cfg: &RunCfg,
    hook: &mut dyn TrainHook,
    meter: Option<CostMeter>,
) -> TrainRun {
    use fast_nn::Layer;
    let mut session = Session::new(cfg.seed);
    let mut model = model;
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut meter = meter;
    let test = data.test_batches(cfg.batch.max(32));
    let mut evals = Vec::new();
    let mut final_loss = 0.0;
    let mut iter = 0usize;
    for epoch in 0..cfg.epochs {
        apply_lr_drops(&mut opt, &cfg.lr_drops, epoch, cfg.lr);
        let mut loss_sum = 0.0;
        let mut nb = 0usize;
        for (x, gts) in data.train_batches(cfg.batch, epoch as u64) {
            hook.before_iteration(iter, &mut model);
            session.train = true;
            let out = model.forward(&x, &mut session);
            let (loss, grad) = yolo_loss(&out, &gts, yolo_cfg);
            model.backward(&grad, &mut session);
            hook.after_backward(iter, &mut model);
            opt.step(&mut model);
            if let Some(m) = meter.as_mut() {
                m.record(&mut model);
            }
            loss_sum += loss;
            nb += 1;
            iter += 1;
        }
        final_loss = loss_sum / nb.max(1) as f64;
        session.train = false;
        let mut dets = Vec::new();
        let mut gts_all = Vec::new();
        for (x, gts) in &test {
            let out = model.forward(x, &mut session);
            dets.extend(decode_predictions(&out, yolo_cfg, 0.3));
            gts_all.extend(gts.iter().cloned());
        }
        session.train = true;
        let quality = map_lite(&dets, &gts_all, yolo_cfg.num_classes, 0.5);
        evals.push(EvalPoint {
            epoch: epoch + 1,
            iter,
            quality,
            sim_seconds: meter.as_ref().map(|m| m.total_seconds()).unwrap_or(0.0),
            sim_energy_j: meter.as_ref().map(|m| m.total_energy_j).unwrap_or(0.0),
        });
    }
    TrainRun { evals, final_loss }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_to_quality_interpolates() {
        let run = TrainRun {
            evals: vec![
                EvalPoint {
                    epoch: 1,
                    iter: 10,
                    quality: 40.0,
                    sim_seconds: 1.0,
                    sim_energy_j: 1.0,
                },
                EvalPoint {
                    epoch: 2,
                    iter: 20,
                    quality: 60.0,
                    sim_seconds: 2.0,
                    sim_energy_j: 2.0,
                },
            ],
            final_loss: 0.0,
        };
        assert_eq!(run.time_to_quality(50.0), Some(1.5));
        assert_eq!(run.time_to_quality(40.0), Some(1.0));
        assert_eq!(run.time_to_quality(70.0), None);
        assert_eq!(run.best_quality(), 60.0);
    }
}
