//! The six-workload evaluation suite (Table II rows, Fig 20 panels) with
//! uniform entry points for fixed-format and FAST-Adaptive training.

use crate::formats::FormatEntry;
use crate::runner::{run_detection, run_images, run_sequence, RunCfg, TrainRun};
use crate::workloads::{CnnModel, DetWorkload, ImageTask, SeqWorkload};
use crate::Scale;
use fast_core::{CostMeter, DimScale, EpsilonSchedule, FastController, FixedPolicy, HookChain};
use fast_hw::SystemConfig;
use fast_nn::LayerPrecision;

/// One evaluation workload of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// An image-classification CNN.
    Cnn(CnnModel),
    /// The transformer sequence task.
    Transformer,
    /// The TinyYolo detection task.
    Yolo,
}

impl Workload {
    /// All six paper workloads, in Table II row order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::Cnn(CnnModel::ResNet18),
            Workload::Cnn(CnnModel::ResNet50),
            Workload::Cnn(CnnModel::MobileNet),
            Workload::Cnn(CnnModel::Vgg16),
            Workload::Transformer,
            Workload::Yolo,
        ]
    }

    /// Paper row label.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Cnn(m) => m.name(),
            Workload::Transformer => "Transformer",
            Workload::Yolo => "YOLOv2",
        }
    }

    /// The quality metric's name.
    pub fn metric(&self) -> &'static str {
        match self {
            Workload::Cnn(_) => "val acc %",
            Workload::Transformer => "token acc % (BLEU proxy)",
            Workload::Yolo => "mAP@0.5 %",
        }
    }

    /// The dimension scale lifting lite-model GEMMs to paper-scale
    /// equivalents for the hardware cost model (DESIGN.md §6).
    pub fn dim_scale(&self) -> DimScale {
        match self {
            Workload::Cnn(_) | Workload::Yolo => DimScale::CNN_PAPER,
            Workload::Transformer => DimScale::TRANSFORMER_PAPER,
        }
    }

    fn meter(&self, system: Option<SystemConfig>) -> Option<CostMeter> {
        system.map(|sys| CostMeter::new(sys).with_dim_scale(self.dim_scale()))
    }

    /// Default epoch count at a scale.
    pub fn epochs(&self, scale: Scale) -> usize {
        match self {
            Workload::Cnn(_) => scale.pick(6, 24),
            Workload::Transformer => scale.pick(8, 30),
            Workload::Yolo => scale.pick(8, 30),
        }
    }

    fn run_cfg(&self, epochs: usize, seed: u64) -> RunCfg {
        match self {
            Workload::Cnn(_) => RunCfg::images(epochs, seed),
            Workload::Transformer => RunCfg {
                epochs,
                batch: 32,
                lr: 2e-3,
                momentum: 0.9,
                weight_decay: 0.0,
                lr_drops: vec![],
                seed,
            },
            Workload::Yolo => RunCfg {
                epochs,
                batch: 32,
                lr: 0.02,
                momentum: 0.9,
                weight_decay: 5e-4,
                lr_drops: vec![(epochs / 2, 0.1)],
                seed,
            },
        }
    }

    /// Trains under a fixed format; attaches the cost meter when `system`
    /// is given. `extra_epochs` extends the schedule beyond the scale
    /// default (used by the TTA experiments so slow-starting systems still
    /// reach the target).
    pub fn run_fixed(
        &self,
        scale: Scale,
        precision: LayerPrecision,
        system: Option<SystemConfig>,
        seed: u64,
        extra_epochs: usize,
    ) -> TrainRun {
        let epochs = self.epochs(scale) + extra_epochs;
        let cfg = self.run_cfg(epochs, seed);
        let mut policy = FixedPolicy { precision };
        let meter = self.meter(system);
        match self {
            Workload::Cnn(m) => {
                let task = ImageTask::at(scale);
                let data = task.dataset(1234);
                let model = m.build(task, seed);
                run_images(model, &data, &cfg, &mut policy, meter)
            }
            Workload::Transformer => {
                let wl = SeqWorkload::at(scale, 1234);
                let model = wl.model(seed);
                run_sequence(model, &wl.data, &cfg, &mut policy, meter)
            }
            Workload::Yolo => {
                let wl = DetWorkload::at(scale, 1234);
                let model = wl.model(seed);
                run_detection(model, &wl.data, wl.cfg, &cfg, &mut policy, meter)
            }
        }
    }

    /// Trains under a format-zoo entry (convenience over [`Self::run_fixed`]).
    pub fn run_entry(&self, scale: Scale, entry: &FormatEntry, seed: u64, meter: bool) -> TrainRun {
        let system = meter.then(|| (entry.system)());
        self.run_fixed(scale, entry.precision, system, seed, 0)
    }

    /// [`Self::run_entry`] with extra epochs appended (TTA experiments).
    pub fn run_entry_extended(
        &self,
        scale: Scale,
        entry: &FormatEntry,
        seed: u64,
        extra_epochs: usize,
    ) -> TrainRun {
        self.run_fixed(
            scale,
            entry.precision,
            Some((entry.system)()),
            seed,
            extra_epochs,
        )
    }

    /// Trains under FAST-Adaptive (Algorithm 1) on the FAST system,
    /// returning the run and the recorded precision trace.
    pub fn run_fast_adaptive(
        &self,
        scale: Scale,
        seed: u64,
        meter: bool,
    ) -> (TrainRun, FastController) {
        self.run_fast_adaptive_extended(scale, seed, meter, 0)
    }

    /// [`Self::run_fast_adaptive`] with extra epochs appended.
    pub fn run_fast_adaptive_extended(
        &self,
        scale: Scale,
        seed: u64,
        meter: bool,
        extra_epochs: usize,
    ) -> (TrainRun, FastController) {
        let epochs = self.epochs(scale) + extra_epochs;
        let cfg = self.run_cfg(epochs, seed);
        let system = self.meter(meter.then(SystemConfig::fast));
        match self {
            Workload::Cnn(m) => {
                let task = ImageTask::at(scale);
                let data = task.dataset(1234);
                let model = m.build(task, seed);
                let iters = epochs * data.train_len().div_ceil(cfg.batch);
                let mut ctl = FastController::new(iters.max(1), EpsilonSchedule::paper_default());
                let run = {
                    let mut chain = HookChain::new().push(&mut ctl);
                    run_images(model, &data, &cfg, &mut chain, system)
                };
                (run, ctl)
            }
            Workload::Transformer => {
                let wl = SeqWorkload::at(scale, 1234);
                let model = wl.model(seed);
                let iters = epochs * scale.pick(384usize, 2048).div_ceil(cfg.batch);
                let mut ctl = FastController::new(iters.max(1), EpsilonSchedule::paper_default());
                let run = {
                    let mut chain = HookChain::new().push(&mut ctl);
                    run_sequence(model, &wl.data, &cfg, &mut chain, system)
                };
                (run, ctl)
            }
            Workload::Yolo => {
                let wl = DetWorkload::at(scale, 1234);
                let model = wl.model(seed);
                let iters = epochs * scale.pick(256usize, 1536).div_ceil(cfg.batch);
                let mut ctl = FastController::new(iters.max(1), EpsilonSchedule::paper_default());
                let run = {
                    let mut chain = HookChain::new().push(&mut ctl);
                    run_detection(model, &wl.data, wl.cfg, &cfg, &mut chain, system)
                };
                (run, ctl)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_metrics() {
        let all = Workload::all();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].name(), "ResNet-18");
        assert_eq!(all[4].metric(), "token acc % (BLEU proxy)");
    }
}
