//! Standard workload builders at quick/full scale: the six evaluation
//! models of the paper paired with their synthetic datasets.

use crate::Scale;
use fast_data::{SequenceTask, SyntheticDetection, SyntheticImages};
use fast_nn::models::{
    mobilenet_lite, resnet_lite, tiny_transformer, tiny_yolo, vgg_lite, MobileNetConfig,
    ResNetConfig, TransformerConfig, VggConfig, YoloConfig,
};
use fast_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Image classification defaults shared by the CNN workloads.
#[derive(Debug, Clone, Copy)]
pub struct ImageTask {
    /// Classes.
    pub classes: usize,
    /// Image side.
    pub size: usize,
    /// Training set size.
    pub train_n: usize,
    /// Test set size.
    pub test_n: usize,
}

impl ImageTask {
    /// The scaled image task.
    pub fn at(scale: Scale) -> Self {
        ImageTask {
            classes: 10,
            size: 16,
            train_n: scale.pick(320, 2560),
            test_n: scale.pick(200, 640),
        }
    }

    /// Generates the dataset.
    pub fn dataset(&self, seed: u64) -> SyntheticImages {
        SyntheticImages::generate(self.classes, self.size, self.train_n, self.test_n, seed)
    }
}

/// The CNN model variants of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnnModel {
    /// ResNet-18 analogue.
    ResNet18,
    /// ResNet-50 analogue (deeper).
    ResNet50,
    /// MobileNet-v2 analogue.
    MobileNet,
    /// VGG-16 analogue.
    Vgg16,
}

impl CnnModel {
    /// Paper row label.
    pub fn name(&self) -> &'static str {
        match self {
            CnnModel::ResNet18 => "ResNet-18",
            CnnModel::ResNet50 => "ResNet-50",
            CnnModel::MobileNet => "MobileNet-v2",
            CnnModel::Vgg16 => "VGG-16",
        }
    }

    /// Builds the model for an image task.
    pub fn build(&self, task: ImageTask, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            CnnModel::ResNet18 => resnet_lite(ResNetConfig::resnet18(8, task.classes), &mut rng),
            CnnModel::ResNet50 => resnet_lite(ResNetConfig::resnet50(8, task.classes), &mut rng),
            CnnModel::MobileNet => mobilenet_lite(
                MobileNetConfig {
                    in_channels: 3,
                    stem_channels: 8,
                    blocks: 4,
                    num_classes: task.classes,
                },
                &mut rng,
            ),
            CnnModel::Vgg16 => vgg_lite(
                VggConfig {
                    in_channels: 3,
                    image_size: task.size,
                    base_channels: 8,
                    fc_dim: 64,
                    num_classes: task.classes,
                },
                &mut rng,
            ),
        }
    }
}

/// ResNet-20 analogue used by the Fig 9 / Fig 17 / Fig 18 experiments.
pub fn resnet20(classes: usize, symmetric: bool, seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = ResNetConfig {
        symmetric,
        ..ResNetConfig::resnet20(8, classes)
    };
    resnet_lite(cfg, &mut rng)
}

/// The transformer workload (sequence reversal, BLEU proxy = token acc.).
pub struct SeqWorkload {
    /// Dataset.
    pub data: SequenceTask,
    /// Config used for the model.
    pub cfg: TransformerConfig,
}

impl SeqWorkload {
    /// Builds the scaled sequence workload.
    pub fn at(scale: Scale, seed: u64) -> Self {
        let vocab = 12;
        let seq_len = 8;
        let cfg = TransformerConfig {
            vocab,
            d_model: 32,
            heads: 4,
            ff_dim: 64,
            layers: 2,
            seq_len,
        };
        let data = SequenceTask::generate(
            vocab,
            seq_len,
            scale.pick(384, 2048),
            scale.pick(192, 512),
            seed,
        );
        SeqWorkload { data, cfg }
    }

    /// Builds the model.
    pub fn model(&self, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        tiny_transformer(self.cfg, &mut rng)
    }
}

/// The detection workload (TinyYolo on synthetic scenes).
pub struct DetWorkload {
    /// Dataset.
    pub data: SyntheticDetection,
    /// Model/grid config.
    pub cfg: YoloConfig,
}

impl DetWorkload {
    /// Builds the scaled detection workload.
    pub fn at(scale: Scale, seed: u64) -> Self {
        let cfg = YoloConfig {
            in_channels: 3,
            image_size: 16,
            grid: 4,
            num_classes: 3,
            base_channels: 8,
        };
        let data = SyntheticDetection::generate(
            cfg.num_classes,
            cfg.image_size,
            scale.pick(256, 1536),
            scale.pick(128, 384),
            seed,
        );
        DetWorkload { data, cfg }
    }

    /// Builds the model.
    pub fn model(&self, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        tiny_yolo(self.cfg, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::{quant_layer_count, Layer, Session};
    use fast_tensor::Tensor;

    #[test]
    fn all_cnn_models_build_and_run() {
        let task = ImageTask {
            classes: 4,
            size: 16,
            train_n: 8,
            test_n: 4,
        };
        for m in [
            CnnModel::ResNet18,
            CnnModel::ResNet50,
            CnnModel::MobileNet,
            CnnModel::Vgg16,
        ] {
            let mut model = m.build(task, 1);
            let mut s = Session::new(0);
            let y = model.forward(&Tensor::zeros(vec![2, 3, 16, 16]), &mut s);
            assert_eq!(y.shape(), &[2, 4], "{}", m.name());
            assert!(quant_layer_count(&mut model) >= 8, "{}", m.name());
        }
    }

    #[test]
    fn seq_and_det_workloads_build() {
        let seq = SeqWorkload::at(Scale::Quick, 1);
        let mut m = seq.model(2);
        let mut s = Session::new(0);
        let (x, _) = seq.data.train_batches(4, 0).remove(0);
        let y = m.forward(&x, &mut s);
        assert_eq!(y.shape()[1], seq.cfg.vocab);

        let det = DetWorkload::at(Scale::Quick, 1);
        let mut dm = det.model(2);
        let (dx, _) = det.data.train_batches(2, 0).remove(0);
        let dy = dm.forward(&dx, &mut s);
        assert_eq!(dy.shape(), &[2, 8, 4, 4]);
    }
}
