//! Ablation: the effect of (a) the e-bit exponent-window model and (b)
//! stochastic rounding of gradients (paper Section III-C: "using stochastic
//! rounding in conjunction with BFP is critical to model accuracy").

use fast_bench::runner::{run_images, RunCfg};
use fast_bench::table::{f, Table};
use fast_bench::workloads::{resnet20, ImageTask};
use fast_bench::Scale;
use fast_bfp::{BfpFormat, Rounding};
use fast_core::FixedPolicy;
use fast_nn::{LayerPrecision, NumericFormat};

fn precision(m: u32, windowed: bool, sr_gradients: bool) -> LayerPrecision {
    let fmt = BfpFormat::high().with_mantissa_bits(m).expect("valid");
    let nearest = NumericFormat::Bfp {
        format: fmt,
        rounding: Rounding::Nearest,
        windowed,
    };
    let grad = NumericFormat::Bfp {
        format: fmt,
        rounding: if sr_gradients {
            Rounding::STOCHASTIC8
        } else {
            Rounding::Nearest
        },
        windowed,
    };
    LayerPrecision {
        weights: nearest,
        activations: nearest,
        gradients: grad,
    }
}

fn main() {
    let scale = Scale::from_env();
    let task = ImageTask::at(scale);
    let data = task.dataset(123);
    let epochs = scale.pick(6, 20);
    println!(
        "== Ablations: exponent window & stochastic rounding (m=2/3, {} epochs) ==\n",
        epochs
    );
    let mut t = Table::new(vec!["configuration", "best acc %"]);
    for (name, m, windowed, sr) in [
        ("m=3, windowed e=3, SR grads", 3, true, true),
        ("m=3, unbounded exp, SR grads", 3, false, true),
        ("m=3, unbounded exp, nearest grads", 3, false, false),
        ("m=2, windowed e=3, SR grads", 2, true, true),
        ("m=2, unbounded exp, SR grads", 2, false, true),
        ("m=2, unbounded exp, nearest grads", 2, false, false),
    ] {
        let model = resnet20(task.classes, false, 7);
        let cfg = RunCfg::images(epochs, 7);
        let mut hook = FixedPolicy {
            precision: precision(m, windowed, sr),
        };
        let run = run_images(model, &data, &cfg, &mut hook, None);
        t.row(vec![name.to_string(), f(run.best_quality(), 1)]);
        println!("{}", t.render());
    }
    println!(
        "Paper claims: SR on gradients is critical at low mantissa widths\n\
         (nearest-rounded gradients should lose several points at m=2)."
    );
}
