//! Serving benchmark for the `fast_serve` inference engine.
//!
//! Two measurements, written to `BENCH_serve.json` (the serving companion
//! of `BENCH_quant_gemm.json`; experiment index in DESIGN.md §4):
//!
//! 1. **Single-stream**: batch-1 forward latency of the re-quantize-every-
//!    forward evaluation path vs the frozen [`CompiledModel`] path on the
//!    ResNet-lite, MLP and Transformer-lite workloads. The ratio is the
//!    payoff of caching frozen weights (DESIGN.md §8).
//! 2. **Served load**: a closed-loop load generator (C client threads in a
//!    submit→wait loop) against a [`Server`] with replicated workers and
//!    dynamic micro-batching; reports QPS, p50/p99 latency and the
//!    batch-size histogram.
//!
//! Usage:
//!
//! ```text
//! serve_bench [--quick] [--out PATH]
//! ```
//!
//! `--quick` lowers iteration counts for CI smoke runs.

use fast_nn::models::{mlp, resnet_lite, tiny_transformer, ResNetConfig, TransformerConfig};
use fast_nn::{set_uniform_precision, Layer, LayerPrecision, Sequential, Session};
use fast_serve::{BatchConfig, CompiledModel, Server};
use fast_tensor::Tensor;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times two closures in alternating *blocks* (several rounds of `block`
/// iterations each, after a warm-up block) and returns the median
/// per-iteration wall time of each. Alternating blocks keeps clock drift
/// (frequency scaling, noisy neighbours) from biasing the a/b ratio the way
/// one long back-to-back pair would, while a whole block per switch still
/// lets each path run cache-hot, as it would in a real serving process.
fn time_pair_ns<F, G>(rounds: usize, block: usize, mut a: F, mut b: G) -> (f64, f64)
where
    F: FnMut(),
    G: FnMut(),
{
    for _ in 0..block {
        a();
        b();
    }
    let mut sa = Vec::with_capacity(rounds * block);
    let mut sb = Vec::with_capacity(rounds * block);
    for _ in 0..rounds {
        for _ in 0..block {
            let t = Instant::now();
            a();
            sa.push(t.elapsed().as_nanos() as f64);
        }
        for _ in 0..block {
            let t = Instant::now();
            b();
            sb.push(t.elapsed().as_nanos() as f64);
        }
    }
    let median = |s: &mut Vec<f64>| {
        s.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        s[s.len() / 2]
    };
    (median(&mut sa), median(&mut sb))
}

/// One workload: a model builder (fresh, identically seeded model per call)
/// and a batch-1 sample input.
struct Workload {
    name: &'static str,
    build: Box<dyn Fn() -> Sequential>,
    sample: Tensor,
}

fn workloads() -> Vec<Workload> {
    let precision = LayerPrecision::bfp_fixed(4); // HighBFP, the paper default
    let with_precision = move |mut m: Sequential| {
        set_uniform_precision(&mut m, precision);
        m
    };
    vec![
        Workload {
            // ResNet-18-lite at serving width (stem 16 → 16/32/64-channel
            // stages): the deep stages are weight-dominated at batch 1,
            // which is exactly what frozen-weight serving amortizes.
            name: "resnet",
            build: Box::new(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                with_precision(resnet_lite(ResNetConfig::resnet18(16, 10), &mut rng))
            }),
            sample: Tensor::from_vec(
                vec![1, 3, 16, 16],
                (0..3 * 256).map(|i| (i as f32 * 0.021).sin()).collect(),
            ),
        },
        Workload {
            name: "mlp",
            build: Box::new(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                with_precision(mlp(&[64, 256, 256, 10], &mut rng))
            }),
            sample: Tensor::from_vec(
                vec![1, 64],
                (0..64).map(|i| (i as f32 * 0.13).cos()).collect(),
            ),
        },
        Workload {
            name: "transformer",
            build: Box::new(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                let cfg = TransformerConfig {
                    vocab: 12,
                    d_model: 32,
                    heads: 4,
                    ff_dim: 64,
                    layers: 2,
                    seq_len: 8,
                };
                with_precision(tiny_transformer(cfg, &mut rng))
            }),
            sample: Tensor::from_vec(vec![1, 8], (0..8).map(|i| (i % 12) as f32).collect()),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (rounds, block) = if quick { (3, 5) } else { (7, 11) };
    let mut fields: Vec<(String, String)> = vec![
        ("quick".into(), quick.to_string()),
        (
            "gemm_workers".into(),
            fast_tensor::parallelism().workers().to_string(),
        ),
        ("resnet_config".into(), "\"resnet18-lite stem=16\"".into()),
        ("mlp_config".into(), "\"64-256-256-10\"".into()),
        (
            "transformer_config".into(),
            "\"d=32 h=4 ff=64 L=2 seq=8\"".into(),
        ),
    ];

    // --- 1. Single-stream: re-quantize path vs frozen compiled path. ---
    for w in workloads() {
        let mut train_path = (w.build)();
        let mut eval = Session::eval(0);
        let mut compiled = CompiledModel::compile((w.build)(), 0);
        compiled.warm(&w.sample);
        let (requant_ns, compiled_ns) = time_pair_ns(
            rounds,
            block,
            || {
                black_box(train_path.forward(black_box(&w.sample), &mut eval));
            },
            || {
                black_box(compiled.infer(black_box(&w.sample)));
            },
        );

        let speedup = requant_ns / compiled_ns;
        println!(
            "{:<12} requant {:>9.0} ns  compiled {:>9.0} ns  speedup {:.2}x",
            w.name, requant_ns, compiled_ns, speedup
        );
        fields.push((format!("{}_requant_ns", w.name), format!("{requant_ns:.0}")));
        fields.push((
            format!("{}_compiled_ns", w.name),
            format!("{compiled_ns:.0}"),
        ));
        fields.push((
            format!("{}_cached_speedup_x", w.name),
            format!("{speedup:.2}"),
        ));
    }

    // --- 2. Served load: closed-loop clients against a worker pool. ---
    let workers = 2usize;
    let clients = 4usize;
    let per_client = if quick { 40usize } else { 250 };
    let cfg = BatchConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(200),
    };
    let resnet = workloads().swap_remove(0);
    let replicas: Vec<CompiledModel> = (0..workers)
        .map(|_| {
            let mut c = CompiledModel::compile((resnet.build)(), 0);
            c.warm(&resnet.sample); // freeze before the clock starts
            c
        })
        .collect();
    let server = Server::start(replicas, cfg);

    let wall = Instant::now();
    let mut latencies_ns: Vec<f64> = Vec::with_capacity(clients * per_client);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = &server;
                let sample = &resnet.sample;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let t = Instant::now();
                        black_box(server.infer(sample.clone()));
                        lat.push(t.elapsed().as_nanos() as f64);
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies_ns.extend(h.join().expect("client thread panicked"));
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();
    let stats = server.shutdown();

    latencies_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize] / 1000.0;
    let total = latencies_ns.len();
    let qps = total as f64 / wall_s;
    println!(
        "served {total} requests: {qps:.0} QPS, p50 {:.0} µs, p99 {:.0} µs, mean batch {:.2}",
        pct(0.50),
        pct(0.99),
        stats.mean_batch()
    );

    fields.push(("serve_workers".into(), workers.to_string()));
    fields.push(("serve_clients".into(), clients.to_string()));
    fields.push(("serve_max_batch".into(), cfg.max_batch.to_string()));
    fields.push((
        "serve_max_wait_us".into(),
        cfg.max_wait.as_micros().to_string(),
    ));
    fields.push(("serve_requests".into(), total.to_string()));
    fields.push(("serve_qps".into(), format!("{qps:.0}")));
    fields.push(("serve_p50_us".into(), format!("{:.0}", pct(0.50))));
    fields.push(("serve_p99_us".into(), format!("{:.0}", pct(0.99))));
    fields.push((
        "serve_mean_batch".into(),
        format!("{:.2}", stats.mean_batch()),
    ));
    let hist = stats
        .batch_histogram
        .iter()
        .map(|(size, n)| format!("\"{size}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    fields.push(("serve_batch_histogram".into(), format!("{{ {hist} }}")));

    // --- Emit JSON. ---
    let body = fields
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!("{{\n  \"current\": {{\n{body}\n  }}\n}}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
}
