//! Serving benchmark for the `fast_serve` inference engine.
//!
//! Three measurements, written to `BENCH_serve.json` (the serving companion
//! of `BENCH_quant_gemm.json`; experiment index in DESIGN.md §4):
//!
//! 1. **Single-stream**: batch-1 forward latency of the re-quantize-every-
//!    forward evaluation path vs the frozen [`CompiledModel`] path on the
//!    ResNet-lite, MLP and Transformer-lite workloads. The ratio is the
//!    payoff of caching frozen weights (DESIGN.md §8).
//! 2. **Capacity probe**: a closed-loop load generator (C client threads in
//!    a submit→wait loop) against a [`Server`] with continuous batching;
//!    reports the saturated QPS, end-to-end/queue/service percentiles and
//!    the batch-size histogram. The saturated QPS anchors the sweep below.
//! 3. **Open-loop load sweep** (DESIGN.md §14): Poisson arrivals at fixed
//!    offered rates — fractions and multiples of the probed capacity —
//!    submitted from a generator thread that never waits for responses, so
//!    a slow server cannot slow the arrival process down (no coordinated
//!    omission; latency is measured from the *scheduled* arrival to the
//!    worker-stamped completion instant). Every request carries a deadline,
//!    so the overload points also measure goodput under load shedding.
//!
//! Usage:
//!
//! ```text
//! serve_bench [--quick] [--out PATH] [--baseline-file PATH] [--metrics-out PATH]
//! ```
//!
//! `--quick` lowers request counts for CI smoke runs. `--baseline-file`
//! embeds a previously written measurement object under `"baseline"` and
//! reports a `serve_qps_x` throughput ratio against it. `--metrics-out`
//! dumps the capacity probe's telemetry snapshot (per-model serving
//! series + process-global spans/counters, DESIGN.md §15) as JSON.
//!
//! The capacity probe repeats as adjacent (spans-off, spans-on) pairs;
//! the record carries best-of-leg QPS for both settings plus the median
//! per-pair overhead (`telemetry_overhead_serve_pct`), keeping the §15
//! overhead budget measured on every recorded run.

use fast_nn::models::{mlp, resnet_lite, tiny_transformer, ResNetConfig, TransformerConfig};
use fast_nn::{set_uniform_precision, Layer, LayerPrecision, Sequential, Session};
use fast_serve::{BatchConfig, CompiledModel, Pending, Server};
use fast_tensor::Tensor;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times two closures in alternating *blocks* (several rounds of `block`
/// iterations each, after a warm-up block) and returns the median
/// per-iteration wall time of each. Alternating blocks keeps clock drift
/// (frequency scaling, noisy neighbours) from biasing the a/b ratio the way
/// one long back-to-back pair would, while a whole block per switch still
/// lets each path run cache-hot, as it would in a real serving process.
fn time_pair_ns<F, G>(rounds: usize, block: usize, mut a: F, mut b: G) -> (f64, f64)
where
    F: FnMut(),
    G: FnMut(),
{
    for _ in 0..block {
        a();
        b();
    }
    let mut sa = Vec::with_capacity(rounds * block);
    let mut sb = Vec::with_capacity(rounds * block);
    for _ in 0..rounds {
        for _ in 0..block {
            let t = Instant::now();
            a();
            sa.push(t.elapsed().as_nanos() as f64);
        }
        for _ in 0..block {
            let t = Instant::now();
            b();
            sb.push(t.elapsed().as_nanos() as f64);
        }
    }
    let median = |s: &mut Vec<f64>| {
        s.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        s[s.len() / 2]
    };
    (median(&mut sa), median(&mut sb))
}

/// One workload: a model builder (fresh, identically seeded model per call)
/// and a batch-1 sample input.
struct Workload {
    name: &'static str,
    build: Box<dyn Fn() -> Sequential>,
    sample: Tensor,
}

fn workloads() -> Vec<Workload> {
    let precision = LayerPrecision::bfp_fixed(4); // HighBFP, the paper default
    let with_precision = move |mut m: Sequential| {
        set_uniform_precision(&mut m, precision);
        m
    };
    vec![
        Workload {
            // ResNet-18-lite at serving width (stem 16 → 16/32/64-channel
            // stages): the deep stages are weight-dominated at batch 1,
            // which is exactly what frozen-weight serving amortizes.
            name: "resnet",
            build: Box::new(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                with_precision(resnet_lite(ResNetConfig::resnet18(16, 10), &mut rng))
            }),
            sample: Tensor::from_vec(
                vec![1, 3, 16, 16],
                (0..3 * 256).map(|i| (i as f32 * 0.021).sin()).collect(),
            ),
        },
        Workload {
            name: "mlp",
            build: Box::new(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                with_precision(mlp(&[64, 256, 256, 10], &mut rng))
            }),
            sample: Tensor::from_vec(
                vec![1, 64],
                (0..64).map(|i| (i as f32 * 0.13).cos()).collect(),
            ),
        },
        Workload {
            name: "transformer",
            build: Box::new(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                let cfg = TransformerConfig {
                    vocab: 12,
                    d_model: 32,
                    heads: 4,
                    ff_dim: 64,
                    layers: 2,
                    seq_len: 8,
                };
                with_precision(tiny_transformer(cfg, &mut rng))
            }),
            sample: Tensor::from_vec(vec![1, 8], (0..8).map(|i| (i % 12) as f32).collect()),
        },
    ]
}

/// Pulls `"key": <number>` out of a flat JSON object without a JSON parser
/// (the workspace is offline; good enough for our own output format).
fn extract_num(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    sorted_ns[((sorted_ns.len() - 1) as f64 * p) as usize]
}

/// Builds the serving fleet for the load sections: replicated compiled
/// models, warmed before the clock starts.
fn fleet(w: &Workload, replicas: usize) -> Vec<CompiledModel> {
    (0..replicas)
        .map(|_| {
            let mut c = CompiledModel::compile((w.build)(), 0);
            c.warm(&w.sample);
            c
        })
        .collect()
}

/// The per-sweep result of one offered-rate point.
struct SweepPoint {
    offered_qps: f64,
    duration_s: f64,
    submitted: usize,
    served: usize,
    shed: usize,
    missed: usize,
    goodput_qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    mean_batch: f64,
}

/// One open-loop run: `n` Poisson arrivals at `rate` QPS against a fresh
/// server, every request carrying `deadline`.
///
/// The generator submits on an absolute exponential schedule — when it
/// falls behind (sleep granularity, a borrowed core) it catches up in a
/// burst rather than silently stretching the arrival process, and latency
/// is measured from the *scheduled* arrival to the worker-stamped
/// completion instant, so queueing delay the generator did not observe
/// still counts (no coordinated omission).
fn open_loop_run(
    w: &Workload,
    workers: usize,
    max_batch: usize,
    rate: f64,
    n: usize,
    deadline: Duration,
    seed: u64,
) -> SweepPoint {
    use fast_serve::{ServeError, ServeRequest};
    let server = Server::start(fleet(w, workers), BatchConfig::no_wait(max_batch));
    // Warm the admission estimator so the first overload arrivals are shed
    // rather than queued blind.
    for _ in 0..4 {
        black_box(server.infer(w.sample.clone()));
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut pending: Vec<(Instant, Pending)> = Vec::with_capacity(n);
    let mut next = start;
    for _ in 0..n {
        // Exponential inter-arrival times make the offered load Poisson.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        next += Duration::from_secs_f64(-u.ln() / rate);
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        let p = server.submit_request(ServeRequest::new(w.sample.clone()).with_deadline(deadline));
        pending.push((next, p));
    }
    let submitted = pending.len();
    let mut served_ns: Vec<f64> = Vec::with_capacity(submitted);
    let (mut shed, mut missed, mut ok_within) = (0usize, 0usize, 0usize);
    for (scheduled, p) in pending {
        let outcome = p.outcome();
        match outcome.result {
            Ok(_) => {
                let lat = outcome.finished_at.saturating_duration_since(scheduled);
                if lat <= deadline {
                    ok_within += 1;
                }
                served_ns.push(lat.as_nanos() as f64);
            }
            Err(ServeError::Rejected { .. }) => shed += 1,
            Err(ServeError::DeadlineMissed { .. }) => missed += 1,
            Err(e) => panic!("unexpected serve failure under load: {e}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    served_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    SweepPoint {
        offered_qps: rate,
        duration_s: wall_s,
        submitted,
        served: served_ns.len(),
        shed,
        missed,
        goodput_qps: ok_within as f64 / wall_s,
        p50_us: percentile(&served_ns, 0.50) / 1000.0,
        p99_us: percentile(&served_ns, 0.99) / 1000.0,
        p999_us: percentile(&served_ns, 0.999) / 1000.0,
        mean_batch: stats.mean_batch(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let baseline = arg_value("--baseline-file").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });
    // Where to dump the capacity probe's telemetry snapshot (DESIGN.md
    // §15 JSON export); omitted = no dump.
    let metrics_out = arg_value("--metrics-out");

    let (rounds, block) = if quick { (3, 5) } else { (7, 11) };
    let mut fields: Vec<(String, String)> = vec![
        ("quick".into(), quick.to_string()),
        (
            "gemm_workers".into(),
            fast_tensor::parallelism().workers().to_string(),
        ),
        ("resnet_config".into(), "\"resnet18-lite stem=16\"".into()),
        ("mlp_config".into(), "\"64-256-256-10\"".into()),
        (
            "transformer_config".into(),
            "\"d=32 h=4 ff=64 L=2 seq=8\"".into(),
        ),
    ];

    // --- 1. Single-stream: re-quantize path vs frozen compiled path. ---
    for w in workloads() {
        let mut train_path = (w.build)();
        let mut eval = Session::eval(0);
        let mut compiled = CompiledModel::compile((w.build)(), 0);
        compiled.warm(&w.sample);
        let (requant_ns, compiled_ns) = time_pair_ns(
            rounds,
            block,
            || {
                black_box(train_path.forward(black_box(&w.sample), &mut eval));
            },
            || {
                black_box(compiled.infer(black_box(&w.sample)));
            },
        );

        let speedup = requant_ns / compiled_ns;
        println!(
            "{:<12} requant {:>9.0} ns  compiled {:>9.0} ns  speedup {:.2}x",
            w.name, requant_ns, compiled_ns, speedup
        );
        fields.push((format!("{}_requant_ns", w.name), format!("{requant_ns:.0}")));
        fields.push((
            format!("{}_compiled_ns", w.name),
            format!("{compiled_ns:.0}"),
        ));
        fields.push((
            format!("{}_cached_speedup_x", w.name),
            format!("{speedup:.2}"),
        ));
    }

    // --- 2. Capacity probe: closed-loop clients saturate the dispatcher
    // on the MLP workload (the ISSUE/ROADMAP throughput target). ---
    let workers = 2usize;
    let clients = 8usize;
    let max_batch = 32usize;
    // Quick mode still needs ~milliseconds of sustained saturation per
    // probe leg: shorter runs make the off/on QPS pair (and the §15
    // overhead gate in CI) dominated by startup jitter.
    let per_client = if quick { 400usize } else { 1500 };
    let wl = workloads().swap_remove(1); // mlp

    // One closed-loop saturation run; returns (sorted latencies, wall
    // seconds, stats, snapshot JSON of the server's live metrics).
    let run_probe = || {
        let server = Server::start(fleet(&wl, workers), BatchConfig::no_wait(max_batch));
        let wall = Instant::now();
        let mut latencies_ns: Vec<f64> = Vec::with_capacity(clients * per_client);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let server = &server;
                    let sample = &wl.sample;
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(per_client);
                        for _ in 0..per_client {
                            let t = Instant::now();
                            black_box(server.infer(sample.clone()));
                            lat.push(t.elapsed().as_nanos() as f64);
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                latencies_ns.extend(h.join().expect("client thread panicked"));
            }
        });
        let wall_s = wall.elapsed().as_secs_f64();
        let snapshot_json = server.metrics_snapshot().to_json();
        let stats = server.shutdown();
        latencies_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (latencies_ns, wall_s, stats, snapshot_json)
    };

    // Telemetry overhead on serving capacity (DESIGN.md §15): the same
    // probe run with span collection off (the recorded capacity, as
    // before) and on. The counters and serve histograms are always on in
    // both legs; the pair isolates the span clock reads.
    //
    // Estimator: saturation probes on shared hardware carry several
    // percent of per-leg variance plus slow drift (cgroup throttling
    // under sustained load) — more than the span cost being resolved. So
    // the probe runs as adjacent (off, on) pairs — drift between two
    // back-to-back legs is small — and the reported overhead is the
    // MEDIAN of the per-pair QPS ratios, which is robust to the
    // occasional preempted leg. The recorded capacity stays the best
    // spans-off leg (noise only ever slows a probe down).
    fast_telemetry::set_collection(false);
    let (latencies_ns, wall_s, stats, _) = run_probe();
    let leg_qps = |n: usize, s: f64| n as f64 / s;
    let mut qps = leg_qps(latencies_ns.len(), wall_s);
    let mut qps_span_on = 0.0f64;
    let mut pair_pcts: Vec<f64> = Vec::new();
    let mut snapshot_json = String::new();
    for _ in 0..if quick { 3 } else { 8 } {
        fast_telemetry::set_collection(false);
        let (lat_off, wall_off, _, _) = run_probe();
        fast_telemetry::set_collection(true);
        let (lat_on, wall_on, _, snap) = run_probe();
        fast_telemetry::set_collection(false);
        let (off, on) = (
            leg_qps(lat_off.len(), wall_off),
            leg_qps(lat_on.len(), wall_on),
        );
        qps = qps.max(off);
        qps_span_on = qps_span_on.max(on);
        pair_pcts.push((1.0 - on / off) * 100.0);
        snapshot_json = snap;
    }
    pair_pcts.sort_by(|a, b| a.partial_cmp(b).expect("finite pcts"));
    let overhead_serve_pct = pair_pcts[pair_pcts.len() / 2];
    if let Some(path) = &metrics_out {
        std::fs::write(path, &snapshot_json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote metrics snapshot to {path}");
    }
    let total = latencies_ns.len();
    println!(
        "capacity ({}): {total} requests, {qps:.0} QPS, p50 {:.0} µs, p99 {:.0} µs, \
         mean batch {:.2}, queue p99 {:.0} µs, service p99 {:.0} µs",
        wl.name,
        percentile(&latencies_ns, 0.50) / 1000.0,
        percentile(&latencies_ns, 0.99) / 1000.0,
        stats.mean_batch(),
        stats.queue_ns.percentile_us(0.99).unwrap_or(0.0),
        stats.service_ns.percentile_us(0.99).unwrap_or(0.0),
    );

    fields.push(("serve_workload".into(), format!("\"{}\"", wl.name)));
    fields.push(("serve_workers".into(), workers.to_string()));
    fields.push(("serve_clients".into(), clients.to_string()));
    fields.push(("serve_max_batch".into(), max_batch.to_string()));
    fields.push(("serve_requests".into(), total.to_string()));
    fields.push(("serve_qps".into(), format!("{qps:.0}")));
    // Span-collection overhead on capacity: positive pct = QPS lost with
    // the collector installed (median of adjacent off/on pair ratios).
    // Budget in DESIGN.md §15.
    fields.push(("serve_qps_span_on".into(), format!("{qps_span_on:.0}")));
    fields.push((
        "telemetry_overhead_serve_pct".into(),
        format!("{overhead_serve_pct:.2}"),
    ));
    for (key, p) in [
        ("serve_p50_us", 0.50),
        ("serve_p99_us", 0.99),
        ("serve_p999_us", 0.999),
    ] {
        fields.push((
            key.into(),
            format!("{:.0}", percentile(&latencies_ns, p) / 1000.0),
        ));
    }
    fields.push((
        "serve_mean_batch".into(),
        format!("{:.2}", stats.mean_batch()),
    ));
    for (key, p) in [("p50", 0.50), ("p99", 0.99)] {
        fields.push((
            format!("serve_queue_{key}_us"),
            format!("{:.0}", stats.queue_ns.percentile_us(p).unwrap_or(0.0)),
        ));
        fields.push((
            format!("serve_service_{key}_us"),
            format!("{:.0}", stats.service_ns.percentile_us(p).unwrap_or(0.0)),
        ));
    }
    fields.push((
        "serve_peak_queue_depth".into(),
        stats.peak_queue_depth.to_string(),
    ));
    let hist = stats
        .batch_histogram
        .iter()
        .map(|(size, n)| format!("\"{size}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    fields.push(("serve_batch_histogram".into(), format!("{{ {hist} }}")));

    // --- 3. Open-loop Poisson sweep anchored at the probed capacity:
    // under-load points show latency at honest arrival rates, the ≥2×
    // point shows goodput under overload with deadline shedding. ---
    let deadline = Duration::from_millis(20);
    let multipliers: &[f64] = if quick {
        &[0.5, 2.0]
    } else {
        &[0.25, 0.5, 1.0, 1.5, 2.0]
    };
    let duration_s = if quick { 0.4 } else { 2.0 };
    let mut sweep: Vec<(f64, SweepPoint)> = Vec::new();
    for (i, &mult) in multipliers.iter().enumerate() {
        let rate = (qps * mult).max(1.0);
        let n = (rate * duration_s).ceil() as usize;
        let point = open_loop_run(
            &wl,
            workers,
            max_batch,
            rate,
            n,
            deadline,
            0xFA57 + i as u64,
        );
        println!(
            "open-loop {:>4.2}x capacity: offered {:>7.0} QPS, goodput {:>7.0} QPS, \
             p50 {:>7.0} µs, p99 {:>8.0} µs, p99.9 {:>8.0} µs, shed {}, missed {}, mean batch {:.2}",
            mult,
            point.offered_qps,
            point.goodput_qps,
            point.p50_us,
            point.p99_us,
            point.p999_us,
            point.shed,
            point.missed,
            point.mean_batch,
        );
        sweep.push((mult, point));
    }
    fields.push(("sweep_deadline_us".into(), deadline.as_micros().to_string()));
    let sweep_json = sweep
        .iter()
        .map(|(mult, p)| {
            format!(
                "{{ \"load_x\": {mult}, \"offered_qps\": {:.0}, \"duration_s\": {:.2}, \
                 \"submitted\": {}, \"served\": {}, \"shed\": {}, \"missed\": {}, \
                 \"goodput_qps\": {:.0}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \
                 \"p999_us\": {:.0}, \"mean_batch\": {:.2} }}",
                p.offered_qps,
                p.duration_s,
                p.submitted,
                p.served,
                p.shed,
                p.missed,
                p.goodput_qps,
                p.p50_us,
                p.p99_us,
                p.p999_us,
                p.mean_batch,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    fields.push(("load_sweep".into(), format!("[\n      {sweep_json}\n    ]")));

    // --- Emit JSON (with an optional baseline comparison). ---
    let body = fields
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let current = format!("{{\n{body}\n  }}");
    let json = match &baseline {
        None => format!("{{\n  \"current\": {current}\n}}\n"),
        Some(base_json) => {
            let trimmed = base_json.trim();
            assert!(
                trimmed.starts_with('{') && trimmed.ends_with('}'),
                "baseline file is not a JSON object"
            );
            // Chaining on a previous serve_bench output: compare against
            // (and embed) its "current" section, not the whole nested file.
            let base_obj = match trimmed.find("\"current\":") {
                Some(pos) => {
                    let rest = &trimmed[pos + "\"current\":".len()..];
                    let open = rest.find('{').expect("\"current\" must be an object");
                    let mut depth = 0usize;
                    let mut close = open;
                    for (off, c) in rest[open..].char_indices() {
                        match c {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    close = open + off;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    rest[open..=close].to_string()
                }
                None => trimmed.to_string(),
            };
            let mut speedups: Vec<String> = Vec::new();
            // Throughput ratio: > 1.0 means this build serves more QPS than
            // the committed record (the bench-smoke regression signal).
            if let Some(base_qps) = extract_num(&base_obj, "serve_qps") {
                if base_qps > 0.0 {
                    speedups.push(format!("    \"serve_qps_x\": {:.2}", qps / base_qps));
                }
            }
            for w in ["resnet", "mlp", "transformer"] {
                let key = format!("{w}_compiled_ns");
                if let (Some(before), Some(now)) = (
                    extract_num(&base_obj, &key),
                    fields
                        .iter()
                        .find(|(k, _)| *k == key)
                        .and_then(|(_, v)| v.parse::<f64>().ok()),
                ) {
                    if now > 0.0 {
                        speedups.push(format!("    \"{w}_compiled_x\": {:.2}", before / now));
                    }
                }
            }
            format!(
                "{{\n  \"baseline\": {},\n  \"current\": {current},\n  \"speedup\": {{\n{}\n  }}\n}}\n",
                base_obj.replace('\n', "\n  "),
                speedups.join(",\n")
            )
        }
    };
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
}
