//! Fig 2 — the number-format zoo: prints every format's field layout and
//! per-value storage cost.

use fast_bench::table::Table;
use fast_bfp::{BfpFormat, Minifloat};

fn main() {
    println!("== Paper Fig 2: number formats for DNN training/inference ==\n");
    let mut t = Table::new(vec![
        "format",
        "kind",
        "sign",
        "exponent",
        "mantissa",
        "bits/value",
    ]);
    let fp = |name: &str, m: Minifloat| {
        (
            name.to_string(),
            "floating point",
            1u32,
            m.exp_bits,
            m.man_bits,
            (1 + m.exp_bits + m.man_bits) as f64,
        )
    };
    let rows = vec![
        (
            "FP32 (IEEE 754)".to_string(),
            "floating point",
            1,
            8,
            23,
            32.0,
        ),
        fp("FP16 (IEEE 754)", Minifloat::FP16),
        fp("bfloat16", Minifloat::BF16),
        fp("TensorFloat", Minifloat::TF32),
        fp("HFP8 fwd (1-4-3)", Minifloat::HFP8_FWD),
        fp("HFP8 bwd (1-5-2)", Minifloat::HFP8_BWD),
        ("INT8".to_string(), "fixed point", 1, 0, 7, 8.0),
        ("INT12".to_string(), "fixed point", 1, 0, 11, 12.0),
        ("Binary".to_string(), "fixed point", 1, 0, 0, 1.0),
    ];
    for (name, kind, s, e, m, bits) in rows {
        t.row(vec![
            name,
            kind.to_string(),
            s.to_string(),
            e.to_string(),
            m.to_string(),
            format!("{bits:.2}"),
        ]);
    }
    for (name, fmt) in [
        ("MSFP-12", BfpFormat::msfp12()),
        ("LowBFP (paper)", BfpFormat::low()),
        ("MidBFP (paper)", BfpFormat::mid()),
        ("HighBFP (paper)", BfpFormat::high()),
        ("BFP g=4 e=4 m=6", BfpFormat::new(4, 6, 4).unwrap()),
        ("BFP g=2 e=4 m=4", BfpFormat::new(2, 4, 4).unwrap()),
    ] {
        t.row(vec![
            format!("{name} (g={})", fmt.group_size()),
            "block floating point".to_string(),
            "1".to_string(),
            format!("{} shared", fmt.exponent_bits()),
            fmt.mantissa_bits().to_string(),
            format!("{:.2}", fmt.storage_bits_per_value()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nBFP bits/value uses the chunked storage layout of Fig 15\n\
         (e + g*(m/2)*3 bits per group; paper quotes 3.2 / 6.2 bits for m=2 / m=4)."
    );
}
