//! Table III — area and power breakdown of the FAST system.

use fast_bench::table::{f, Table};
use fast_hw::{fast_breakdown, SystemConfig};

fn main() {
    println!("== Paper Table III: FAST system area/power breakdown ==\n");
    let rows = fast_breakdown();
    let mut t = Table::new(vec![
        "Component",
        "area % (model)",
        "area % (paper)",
        "power W (model)",
        "power W (paper)",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            f(r.area_percent, 2),
            f(r.paper_area_percent, 2),
            f(r.power_w, 2),
            f(r.paper_power_w, 2),
        ]);
    }
    print!("{}", t.render());
    let total_model: f64 = rows.iter().map(|r| r.power_w).sum();
    let total_paper: f64 = rows.iter().map(|r| r.paper_power_w).sum();
    println!(
        "\nTotal power: model {:.2} W, paper {:.2} W",
        total_model, total_paper
    );

    println!("\nSystem presets (Section VII-B equal-area configurations):");
    let mut t2 = Table::new(vec![
        "system",
        "array",
        "MAC",
        "array area (fMAC units)",
        "total power W",
    ]);
    for sys in SystemConfig::all() {
        t2.row(vec![
            sys.name.to_string(),
            format!("{}x{}", sys.array.rows, sys.array.cols),
            format!("{:?}", sys.array.mac),
            f(sys.array_area_fmac_units(), 0),
            f(sys.total_power_w(), 2),
        ]);
    }
    print!("{}", t2.render());
}
