//! Fig 7 / Fig 8 / Theorem 1 — the effect of rounding on gradient descent:
//! biased rounding-down loses sub-ulp gradient mass and stalls at a higher
//! loss, while stochastic rounding matches FP32 in expectation.

use fast_bench::table::{f, Table};
use fast_bfp::{BitSource, Lfsr16, Rounding};

struct NoBits;
impl BitSource for NoBits {
    fn next_bits(&mut self, _n: u32) -> u32 {
        unreachable!("deterministic rounding draws no bits")
    }
}

fn main() {
    println!("== Paper Fig 8 / Theorem 1: stochastic rounding in gradient descent ==\n");

    // Part 1: the paper's worked example — gradient x = 2/3 in decision
    // interval [0, 1]. E[SR(x)] must equal x.
    let x = 2.0 / 3.0;
    let mut lfsr = Lfsr16::new(0xACE1);
    let n = 100_000;
    let mut sum = 0i64;
    let mut first_three = Vec::new();
    for i in 0..n {
        let r = Rounding::STOCHASTIC8.round(x, &mut lfsr);
        if i < 3 {
            first_three.push(r);
        }
        sum += r;
    }
    println!("gradient x = 2/3, SR over {n} draws:");
    println!("  first three roundings: {first_three:?}   (paper's example: 1, 0, 1)");
    println!(
        "  empirical E[SR(x)] = {:.5}  (Theorem 1: = x = {:.5})",
        sum as f64 / n as f64,
        x
    );
    println!(
        "  truncation gives {} always -> expected increment 0\n",
        Rounding::Truncate.round(x, &mut NoBits)
    );

    // Part 2: Fig 7's picture — descend a 1-D quadratic loss where every
    // true gradient step is a sub-ulp fraction, quantizing the weight
    // update to integer ulps under three rounding rules.
    println!("1-D quadratic descent, loss = (w - 20)^2 / 2, update quantized to 1 ulp:");
    let mut t = Table::new(vec!["iteration", "FP32 w", "truncate w", "stochastic w"]);
    let (mut w_fp, mut w_tr, mut w_sr) = (0.0f64, 0.0f64, 0.0f64);
    let lr = 0.05;
    let mut lfsr = Lfsr16::new(0x5EED);
    for it in 0..=60 {
        if it % 10 == 0 {
            t.row(vec![it.to_string(), f(w_fp, 3), f(w_tr, 3), f(w_sr, 3)]);
        }
        let g = |w: f64| lr * (20.0 - w); // exact gradient step, usually < 1 ulp
        w_fp += g(w_fp);
        w_tr += Rounding::Truncate.round(g(w_tr).max(0.0), &mut NoBits) as f64;
        w_sr += Rounding::STOCHASTIC8.round(g(w_sr).max(0.0), &mut lfsr) as f64;
    }
    print!("{}", t.render());
    let loss = |w: f64| (w - 20.0) * (w - 20.0) / 2.0;
    println!(
        "\nfinal losses: FP32 {:.3}, truncate {:.3} (stuck — Fig 7 right), SR {:.3}",
        loss(w_fp),
        loss(w_tr),
        loss(w_sr)
    );
    println!(
        "\nThe general-interval form of Theorem 1 ([a, b], x = p(b-a)/q + a) is\n\
         property-tested in crates/bfp/tests/proptests.rs."
    );
}
