//! Fig 20 — normalized training time and energy to reach a target quality,
//! for all six workloads under each training system.

use fast_bench::formats::fig20_formats;
use fast_bench::suite::Workload;
use fast_bench::table::{f, Table};
use fast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("== Paper Fig 20: normalized training time and energy ==");
    println!("(N/A = target quality never reached, as in the paper)\n");

    let formats = fig20_formats();
    let mut time_table = Table::new(
        std::iter::once("Model (time)".to_string())
            .chain(std::iter::once("FAST-Adaptive".to_string()))
            .chain(formats.iter().map(|e| e.name.to_string()))
            .collect::<Vec<_>>(),
    );
    let mut energy_table = Table::new(
        std::iter::once("Model (energy)".to_string())
            .chain(std::iter::once("FAST-Adaptive".to_string()))
            .chain(formats.iter().map(|e| e.name.to_string()))
            .collect::<Vec<_>>(),
    );

    // Quick scale covers three representative workloads (one CNN, the
    // transformer, the detector); full scale runs all six paper rows.
    let workloads: Vec<_> = match scale {
        fast_bench::Scale::Quick => Workload::all()
            .into_iter()
            .filter(|w| matches!(w.name(), "ResNet-18" | "Transformer" | "YOLOv2"))
            .collect(),
        fast_bench::Scale::Full => Workload::all(),
    };
    let extra = scale.pick(6, 8);
    for wl in workloads {
        eprintln!("[fig20] {} / FAST-Adaptive ...", wl.name());
        let (fast_run, _) = wl.run_fast_adaptive_extended(scale, 5, true, extra);
        let mut runs = vec![fast_run];
        for entry in &formats {
            eprintln!("[fig20] {} / {} ...", wl.name(), entry.name);
            runs.push(wl.run_entry_extended(scale, entry, 5, extra));
        }
        let best = runs.iter().map(|r| r.best_quality()).fold(0.0f64, f64::max);
        let target = 0.85 * best;
        let fast_time = runs[0].time_to_quality(target);
        let fast_energy = runs[0].energy_to_quality(target);

        let norm = |v: Option<f64>, base: Option<f64>| match (v, base) {
            (Some(v), Some(b)) if b > 0.0 => f(v / b, 2),
            _ => "N/A".to_string(),
        };
        let mut trow = vec![format!("{} (tgt {:.1})", wl.name(), target)];
        let mut erow = vec![format!("{} (tgt {:.1})", wl.name(), target)];
        for r in &runs {
            trow.push(norm(r.time_to_quality(target), fast_time));
            erow.push(norm(r.energy_to_quality(target), fast_energy));
        }
        time_table.row(trow);
        energy_table.row(erow);
        println!("{}", time_table.render());
    }

    println!("{}", energy_table.render());
    println!(
        "Paper Fig 20 reference (ResNet-18 row): time FP32 8.71 | MP 5.84 |\n\
         bf16 3.94 | INT-12 2.95 | MSFP-12 2.32 | HFP8 2.03 | MidBFP 1.86 |\n\
         FAST 1.00; energy ratios track time closely. Expected shape: FAST\n\
         fastest and most efficient everywhere, FP32 6-9x worse, reduced\n\
         formats in between."
    );
}
