//! Fig 17 — FAST-Adaptive precision map: how the per-layer (W, A, G)
//! BFP setting evolves across layers and training iterations.

use fast_bench::suite::Workload;
use fast_bench::table::{f, Table};
use fast_bench::workloads::CnnModel;
use fast_bench::Scale;
use fast_core::Setting;

fn main() {
    let scale = Scale::from_env();
    println!("== Paper Fig 17: FAST BFP precision over layers and iterations ==\n");
    let (run, ctl) = Workload::Cnn(CnnModel::ResNet18).run_fast_adaptive(scale, 5, false);
    println!(
        "FAST-Adaptive ResNet-18-lite: final accuracy {:.1}% after {} evals\n",
        run.final_quality(),
        run.evals.len()
    );

    println!("Setting legend (cost order, as in the paper):");
    for (i, s) in Setting::legend_order().iter().enumerate() {
        print!("  {i}={s}");
    }
    println!("\n");

    // Pick 5 evenly spaced layers like the paper's Fig 17.
    let layers = ctl.trace.layer_count();
    let picks: Vec<usize> = (0..5).map(|i| (i * (layers - 1)) / 4).collect();
    println!("ASCII heat map (rows = layers, deepest on top; columns = training deciles;");
    println!("cell = mean legend index 0..7):\n");
    let buckets = 10;
    let max_iter = ctl.trace.samples.last().map(|(i, _)| i + 1).unwrap_or(1);
    for &layer in picks.iter().rev() {
        let label = ctl
            .trace
            .layer_labels
            .get(layer)
            .cloned()
            .unwrap_or_default();
        print!("{:>24} |", format!("L{layer} {label}"));
        for b in 0..buckets {
            let from = b * max_iter / buckets;
            let to = ((b + 1) * max_iter / buckets).max(from + 1);
            print!(
                "{}",
                ctl.trace.mean_legend_index(layer, from, to).round() as usize
            );
        }
        println!();
    }

    println!("\nMean legend index by training phase (all layers):");
    let mut t = Table::new(vec!["layer", "first third", "middle third", "last third"]);
    for layer in 0..layers {
        t.row(vec![
            format!("{layer}"),
            f(ctl.trace.mean_legend_index(layer, 0, max_iter / 3), 2),
            f(
                ctl.trace
                    .mean_legend_index(layer, max_iter / 3, 2 * max_iter / 3),
                2,
            ),
            f(
                ctl.trace
                    .mean_legend_index(layer, 2 * max_iter / 3, max_iter),
                2,
            ),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nPaper's claim to verify: the precision (legend index) grows with BOTH\n\
         training progress (left to right) and layer depth (bottom to top)."
    );
}
