//! Fig 9 — temporal and layerwise precision schedules: Low-to-High vs
//! High-to-Low, 3 seeds each, mean ± std of validation accuracy.
//!
//! Temporal: BFP(m=3) ↔ FP32 switched at the halfway iteration.
//! Layerwise: BFP(m=3) ↔ FP32 split at half the depth of a *symmetric*
//! ResNet-20 (identical filter layout in both halves, as the paper does).

use fast_bench::runner::{run_images, RunCfg};
use fast_bench::table::{f, Table};
use fast_bench::workloads::{resnet20, ImageTask};
use fast_bench::Scale;
use fast_core::{LayerwisePolicy, TemporalPolicy};
use fast_nn::TrainHook;

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let scale = Scale::from_env();
    let seeds = [11u64, 22, 33];
    let task = ImageTask::at(scale);
    let epochs = scale.pick(8, 24);
    println!("== Paper Fig 9: temporal & layerwise precision schedules ==");
    println!(
        "(symmetric ResNet-20-lite, {} seeds, {} epochs)\n",
        seeds.len(),
        epochs
    );

    let data = task.dataset(99);
    let iters_per_epoch = task.train_n.div_ceil(32);
    let total_iters = epochs * iters_per_epoch;

    type HookMaker = Box<dyn Fn(usize) -> Box<dyn TrainHook>>;
    let schemes: Vec<(&str, bool, HookMaker)> = vec![
        (
            "Temporal Low-to-High",
            false,
            Box::new(move |iters| Box::new(TemporalPolicy::low_to_high(iters))),
        ),
        (
            "Temporal High-to-Low",
            false,
            Box::new(move |iters| Box::new(TemporalPolicy::high_to_low(iters))),
        ),
        (
            "Layerwise Low-to-High",
            true,
            Box::new(|_| Box::new(LayerwisePolicy::low_to_high())),
        ),
        (
            "Layerwise High-to-Low",
            true,
            Box::new(|_| Box::new(LayerwisePolicy::high_to_low())),
        ),
    ];

    let mut t = Table::new(vec!["scheme", "final acc % (mean)", "std", "best acc %"]);
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, symmetric, make_hook) in &schemes {
        let mut finals = Vec::new();
        let mut bests = Vec::new();
        let mut per_epoch: Vec<Vec<f64>> = vec![Vec::new(); epochs];
        for &seed in &seeds {
            let model = resnet20(task.classes, *symmetric, seed);
            let cfg = RunCfg::images(epochs, seed);
            let mut hook = make_hook(total_iters);
            let run = run_images(model, &data, &cfg, hook.as_mut(), None);
            finals.push(run.final_quality());
            bests.push(run.best_quality());
            for (e, p) in run.evals.iter().enumerate() {
                per_epoch[e].push(p.quality);
            }
        }
        let (mf, sf) = mean_std(&finals);
        let (mb, _) = mean_std(&bests);
        t.row(vec![name.to_string(), f(mf, 2), f(sf, 2), f(mb, 2)]);
        curves.push((
            name.to_string(),
            per_epoch.iter().map(|v| mean_std(v).0).collect(),
        ));
    }
    print!("{}", t.render());

    println!("\nAccuracy curves (mean over seeds):");
    let mut ct = Table::new(
        std::iter::once("epoch".to_string())
            .chain(curves.iter().map(|(n, _)| n.clone()))
            .collect::<Vec<_>>(),
    );
    for e in 0..epochs {
        let mut row = vec![format!("{}", e + 1)];
        for (_, c) in &curves {
            row.push(f(c[e], 1));
        }
        ct.row(row);
    }
    print!("{}", ct.render());
    println!(
        "\nPaper's claims to verify: Low-to-High beats High-to-Low in BOTH the\n\
         temporal (left panel) and layerwise (right panel) settings — early\n\
         iterations and early layers tolerate low precision best."
    );
}
