//! Fig 6 — distribution of the gap between each value's exponent and its
//! group's shared exponent, for weights / activations / gradients at group
//! sizes g ∈ {8, 16, 32}, captured from a mid-training CNN layer.

use fast_bench::runner::RunCfg;
use fast_bench::table::{f, Table};
use fast_bench::workloads::{resnet20, ImageTask};
use fast_bench::Scale;
use fast_bfp::stats::exponent_gap_histogram;
use fast_nn::{Layer, Session};
use fast_tensor::Tensor;

fn main() {
    let scale = Scale::from_env();
    println!("== Paper Fig 6: distribution of difference to BFP shared exponent ==");
    println!("(ResNet-20-lite, middle layer, halfway through training)\n");

    // Train to the halfway point of a normal schedule, keeping the model.
    let task = ImageTask::at(scale);
    let data = task.dataset(77);
    let mut model = resnet20(task.classes, false, 7);
    let epochs = scale.pick(4, 12);
    let cfg = RunCfg::images(epochs, 0);
    let mut session = Session::new(0);
    // This experiment reads the captured gradient tensors below; sensitivity
    // caching is off by default for plain training.
    session.record_sensitivity = true;
    let mut opt = fast_nn::Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    for epoch in 0..epochs {
        for (x, labels) in data.train_batches(cfg.batch, epoch as u64) {
            let out = model.forward(&x, &mut session);
            let (_, grad) = fast_nn::softmax_cross_entropy(&out, &labels);
            model.backward(&grad, &mut session);
            opt.step(&mut model);
        }
    }
    println!("trained {epochs} epochs; capturing tensors from the last batch...\n");

    // Capture W / A / G of a middle quantized layer (paper uses layer 10).
    let total = fast_nn::quant_layer_count(&mut model);
    let target = total / 2;
    let mut captured: Option<(Tensor, Option<Tensor>, Option<Tensor>, String)> = None;
    let mut idx = 0usize;
    model.visit_quant(&mut |q| {
        if idx == target {
            captured = Some((
                q.weight().clone(),
                q.last_input().cloned(),
                q.last_grad_output().cloned(),
                q.label(),
            ));
        }
        idx += 1;
    });
    let (w, a, g, label) = captured.expect("middle layer exists");
    println!("layer {target}/{total}: {label}\n");

    let max_gap = 16;
    for (name, tensor) in [("Weights", Some(w)), ("Activations", a), ("Gradients", g)] {
        let tensor = tensor.expect("tensor captured after training");
        let mut t = Table::new(vec!["gap", "g=8 (%)", "g=16 (%)", "g=32 (%)"]);
        let h8 = exponent_gap_histogram(tensor.data(), 8, max_gap);
        let h16 = exponent_gap_histogram(tensor.data(), 16, max_gap);
        let h32 = exponent_gap_histogram(tensor.data(), 32, max_gap);
        for gap in 0..=max_gap {
            let lbl = if gap == max_gap {
                format!(">={gap}")
            } else {
                gap.to_string()
            };
            t.row(vec![
                lbl,
                f(h8.bins[gap], 1),
                f(h16.bins[gap], 1),
                f(h32.bins[gap], 1),
            ]);
        }
        println!(
            "{name}: mean gap  g=8: {:.2}  g=16: {:.2}  g=32: {:.2}",
            h8.mean_gap, h16.mean_gap, h32.mean_gap
        );
        print!("{}", t.render());
        println!();
    }
    println!(
        "Paper's observations to verify: (1) gradients show a much wider gap\n\
         distribution than weights/activations (=> SR is essential for them);\n\
         (2) the mass moves right as g grows (=> larger groups truncate more)."
    );
}
