//! Fig 19 — Time-to-Accuracy for ResNet-18 under each training system:
//! validation-accuracy curves against simulated hardware time, and the
//! normalized TTA table.

use fast_bench::formats::fig20_formats;
use fast_bench::suite::Workload;
use fast_bench::table::{f, Table};
use fast_bench::workloads::CnnModel;
use fast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let wl = Workload::Cnn(CnnModel::ResNet18);
    println!("== Paper Fig 19: TTA for ResNet-18 across training systems ==\n");

    // Extra epochs beyond the scale default so slow-starting systems still
    // cross the target during the measured window.
    let extra = scale.pick(6, 8);

    // FAST-Adaptive first (the normalization baseline).
    eprintln!("[fig19] running FAST-Adaptive ...");
    let (fast_run, _) = wl.run_fast_adaptive_extended(scale, 5, true, extra);
    let mut runs = vec![("FAST-Adaptive".to_string(), fast_run)];
    for entry in fig20_formats() {
        eprintln!("[fig19] running {} ...", entry.name);
        let run = wl.run_entry_extended(scale, &entry, 5, extra);
        runs.push((entry.name.to_string(), run));
    }

    // Target accuracy: 85% of the best quality any system reached (the
    // paper uses a fixed 68% for ImageNet; our noisy quick-scale runs need
    // more slack).
    let best = runs
        .iter()
        .map(|(_, r)| r.best_quality())
        .fold(0.0f64, f64::max);
    let target = 0.85 * best;
    println!(
        "target accuracy: {:.1}% (85% of best-reached {:.1}%)\n",
        target, best
    );

    let fast_tta = runs[0].1.time_to_quality(target);
    let mut t = Table::new(vec![
        "system",
        "best acc %",
        "sim time to target (s)",
        "normalized TTA",
        "paper TTA",
    ]);
    let paper: &[(&str, &str)] = &[
        ("FAST-Adaptive", "1.00"),
        ("MidBFP", "1.86"),
        ("MSFP-12", "2.27"),
        ("INT-12", "2.92"),
        ("bfloat16", "3.85"),
        ("Nvidia MP", "5.69"),
        ("FP32", "8.51"),
        ("HFP8", "-"),
    ];
    for (name, run) in &runs {
        let tta = run.time_to_quality(target);
        let norm = match (tta, fast_tta) {
            (Some(t), Some(ft)) if ft > 0.0 => f(t / ft, 2),
            _ => "N/A".to_string(),
        };
        let paper_val = paper
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.to_string())
            .unwrap_or_else(|| "-".to_string());
        t.row(vec![
            name.clone(),
            f(run.best_quality(), 1),
            tta.map(|v| f(v, 4)).unwrap_or_else(|| "N/A".to_string()),
            norm,
            paper_val,
        ]);
    }
    print!("{}", t.render());

    println!("\nAccuracy vs simulated time (per system):");
    for (name, run) in &runs {
        let pts: Vec<String> = run
            .evals
            .iter()
            .map(|e| format!("({:.3}s, {:.1}%)", e.sim_seconds, e.quality))
            .collect();
        println!("  {name:>14}: {}", pts.join(" "));
    }
    println!(
        "\nPaper's shape to verify: FAST-Adaptive reaches the target first;\n\
         MidBFP ~2x slower; MSFP-12/INT-12 next; bfloat16/Nvidia MP 4-6x;\n\
         FP32 slowest at ~8.5x."
    );
}
