//! Table II — validation quality of every number format on every workload
//! (accuracy % for CNNs, token accuracy for the transformer, mAP for YOLO).

use fast_bench::formats::table2_formats;
use fast_bench::suite::Workload;
use fast_bench::table::{f, Table};
use fast_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("== Paper Table II: validation quality across number formats ==");
    println!("(synthetic stand-in tasks — compare the *ranking* of formats per row,");
    println!(" not absolute numbers; paper reference ranking shown below)\n");

    let formats = table2_formats();
    let mut header: Vec<String> = vec!["Model".to_string()];
    header.extend(formats.iter().map(|e| e.name.to_string()));
    header.push("FAST".to_string());
    let mut t = Table::new(header);

    for wl in Workload::all() {
        eprintln!("[table2] running {} ...", wl.name());
        let mut row = vec![wl.name().to_string()];
        for entry in &formats {
            let run = wl.run_entry(scale, entry, 5, false);
            row.push(f(run.best_quality(), 1));
        }
        let (fast_run, _) = wl.run_fast_adaptive(scale, 5, false);
        row.push(f(fast_run.best_quality(), 1));
        t.row(row);
        // Print incrementally so long runs show progress.
        println!("{}", t.render());
    }

    println!("Paper Table II reference (ImageNet/IWSLT14/VOC):");
    println!("  ResNet-18:  FP32 68.60 | bf16 68.55 | MP 68.57 | INT8 65.53 | INT12 68.51");
    println!("              MSFP-12 68.13 | LowBFP 63.10 | MidBFP 68.10 | HighBFP 68.57");
    println!("              HFP8 68.53 | FAST 68.52");
    println!("  Expected shape: FP32 ≈ bf16 ≈ MP ≈ INT12 ≈ HighBFP ≈ HFP8 ≈ FAST");
    println!("                  > MidBFP (−1-2 pts) > INT8, LowBFP (−4-6 pts)");
}
