//! Table IV — ASIC area/power and FPGA LUT/FF comparison of MAC designs.
//!
//! Prints the analytical gate-model numbers next to the paper's published
//! synthesis results (the model reproduces the ordering and rough ratios;
//! the published values calibrate the system-level presets).

use fast_bench::table::{f, Table};
use fast_hw::MacKind;

fn main() {
    println!("== Paper Table IV: MAC design comparison (per 16-element unit) ==\n");
    let mut t = Table::new(vec![
        "MAC design",
        "area (model)",
        "area (paper)",
        "power mW (model)",
        "power mW (paper)",
        "LUT (model)",
        "LUT (paper)",
        "FF (model)",
        "FF (paper)",
    ]);
    for mac in MacKind::TABLE4 {
        let (lut_m, ff_m) = mac.model_fpga();
        let (lut_p, ff_p) = mac.paper_fpga().expect("table4 rows have paper values");
        t.row(vec![
            mac.name().to_string(),
            format!("{}x", f(mac.model_area_ratio(), 2)),
            format!("{}x", f(mac.paper_area_ratio().expect("published"), 1)),
            f(mac.model_power_mw(), 3),
            f(mac.paper_power_mw().expect("published"), 3),
            lut_m.to_string(),
            lut_p.to_string(),
            ff_m.to_string(),
            ff_p.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\nDerived designs (not in the paper's table):");
    let mut t2 = Table::new(vec![
        "MAC design",
        "area (calibrated)",
        "power mW (calibrated)",
    ]);
    for mac in [MacKind::Msfp12, MacKind::Fp32] {
        t2.row(vec![
            mac.name().to_string(),
            format!("{}x", f(mac.calibrated_area_ratio(), 2)),
            f(mac.calibrated_power_mw(), 3),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "\nModel = analytical gate counts (array multipliers quadratic in mantissa\n\
         width, FP accumulator amortized per BFP group). Paper = published 45nm\n\
         synthesis. The fMAC advantage holds in both: every other design costs\n\
         3.8-10.6x its area."
    );
}
