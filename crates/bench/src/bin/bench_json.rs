//! JSON microbenchmark runner for the perf-tracked hot paths.
//!
//! Times the three costs that dominate a quantized training step — BFP
//! slice quantization, the quantize+GEMM pair of one layer, and a full
//! training iteration — and writes the medians to a JSON file so the repo
//! keeps a perf trajectory (`BENCH_quant_gemm.json` at the repo root).
//!
//! Usage:
//!
//! ```text
//! bench_json [--quick] [--out PATH] [--baseline-file PATH]
//! ```
//!
//! `--quick` lowers iteration counts for CI smoke runs. `--baseline-file`
//! embeds a previously written measurement object under `"baseline"` and
//! reports speedup ratios against it.

use fast_bfp::kernel::{fake_quantize_slice_counter, fake_quantize_slice_with};
use fast_bfp::GroupAxis;
use fast_bfp::{BfpFormat, CounterRng, Lfsr16, Rounding};
use fast_nn::models::{resnet_lite, ResNetConfig};
use fast_nn::qgemm::{execute, execute_with, prepare, Orient};
use fast_nn::{
    set_uniform_precision, ExecMode, LayerPrecision, NoopHook, NumericFormat, Session, Sgd, Trainer,
};
use fast_tensor::{matmul, Tensor};

use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Runs `f` `iters` times after `warmup` unmeasured runs; returns the median
/// wall time per iteration in nanoseconds.
fn time_ns<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Pulls `"key": <number>` out of a flat JSON object without a JSON parser
/// (the workspace is offline; good enough for our own output format).
fn extract_ns(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_quant_gemm.json".to_string());
    let baseline = arg_value("--baseline-file").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let (warmup, iters, step_iters) = if quick { (1, 5, 3) } else { (3, 15, 8) };
    let mut results: Vec<(&str, f64)> = Vec::new();

    // --- Slice quantization: 64k values, HighBFP (g=16, m=4, e=3). ---
    let fmt = BfpFormat::high();
    let base: Vec<f32> = (0..65536).map(|i| (i as f32 * 0.137).sin() * 3.0).collect();
    let mut buf = base.clone();
    let mut lfsr = Lfsr16::default();
    results.push((
        "quant_slice_m4_nearest_ns",
        time_ns(warmup, iters, || {
            buf.copy_from_slice(&base);
            black_box(fake_quantize_slice_with(
                &mut buf,
                fmt,
                Rounding::Nearest,
                &mut lfsr,
                None,
            ));
        }),
    ));
    results.push((
        "quant_slice_m4_stochastic_ns",
        time_ns(warmup, iters, || {
            buf.copy_from_slice(&base);
            black_box(fake_quantize_slice_with(
                &mut buf,
                fmt,
                Rounding::STOCHASTIC8,
                &mut lfsr,
                None,
            ));
        }),
    ));

    // --- The same SR quantize under the counter noise source (DESIGN.md
    // §12): one SplitMix64 hash yields eight 8-bit lanes, and draws are
    // indexed by element offset instead of threaded through a serial
    // generator. The `_par` row shards the identical draws across the
    // worker pool — bit-identical output to the single-thread row; on a
    // one-core runner the two rows coincide. Compare either against
    // `quant_slice_m4_stochastic_ns` (the `counter_sr_over_lfsr_sr_x`
    // ratio below).
    let crng = CounterRng::new(0xACE1);
    results.push((
        "quant_slice_m4_counter_sr_ns",
        time_ns(warmup, iters, || {
            buf.copy_from_slice(&base);
            black_box(fake_quantize_slice_counter(
                &mut buf,
                fmt,
                Rounding::STOCHASTIC8,
                crng,
                0,
                None,
                1,
            ));
        }),
    ));
    results.push((
        "quant_slice_m4_counter_sr_par_ns",
        time_ns(warmup, iters, || {
            buf.copy_from_slice(&base);
            black_box(fake_quantize_slice_counter(
                &mut buf,
                fmt,
                Rounding::STOCHASTIC8,
                crng,
                0,
                None,
                fast_tensor::parallelism().workers(),
            ));
        }),
    ));

    // --- Quantize + GEMM, the `quant_matmul` criterion config (64×256×64). ---
    let (m, k, n) = (64usize, 256, 64);
    let a = Tensor::from_vec(
        vec![m, k],
        (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect(),
    );
    let b = Tensor::from_vec(
        vec![k, n],
        (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect(),
    );
    results.push((
        "fp32_gemm_ns",
        time_ns(warmup, iters, || {
            black_box(matmul(black_box(&a), black_box(&b)));
        }),
    ));
    for (key, numfmt) in [
        (
            "quant_gemm_bfp_m4_ns",
            NumericFormat::bfp_nearest(BfpFormat::high()),
        ),
        (
            "quant_gemm_bfp_m2_ns",
            NumericFormat::bfp_nearest(BfpFormat::low()),
        ),
        (
            "quant_gemm_bfp_m4_sr_ns",
            NumericFormat::bfp_stochastic(BfpFormat::high()),
        ),
    ] {
        results.push((
            key,
            time_ns(warmup, iters, || {
                let mut aq = a.clone();
                let mut bq = b.clone();
                numfmt.quantize_matrix(&mut aq, GroupAxis::AlongRow, &mut lfsr);
                numfmt.quantize_matrix(&mut bq, GroupAxis::AlongCol, &mut lfsr);
                black_box(matmul(&aq, &bq));
            }),
        ));
    }

    // --- The same quantize+GEMM configs through the shared qgemm plan:
    // operands are packed to i8 mantissas + group scales and multiplied
    // without the dequantized f32 materialization (bit-identical results;
    // compare each `qgemm_*` row to its `quant_gemm_*` twin above). ---
    let mut session = Session::new(0);
    for (key, numfmt) in [
        (
            "qgemm_bfp_m4_ns",
            NumericFormat::bfp_nearest(BfpFormat::high()),
        ),
        (
            "qgemm_bfp_m2_ns",
            NumericFormat::bfp_nearest(BfpFormat::low()),
        ),
        (
            "qgemm_bfp_m4_sr_ns",
            NumericFormat::bfp_stochastic(BfpFormat::high()),
        ),
    ] {
        results.push((
            key,
            time_ns(warmup, iters, || {
                let ap = prepare(&mut session, black_box(&a), numfmt, GroupAxis::AlongRow);
                let bp = prepare(&mut session, black_box(&b), numfmt, GroupAxis::AlongCol);
                black_box(execute(&mut session, Orient::Nn, &ap, &bp));
            }),
        ));
    }

    // --- Integer-domain execution (DESIGN.md §11): the same packed
    // operands multiplied with i8×i8→i32 inner products. These rows are
    // **execute-only over pre-packed operands** — packing cost is already
    // tracked by the `qgemm_*` rows, and the integer kernels' claim
    // (faster than the FP32 GEMM) is about the multiply itself, which in
    // training/serving runs against operands that are packed once and
    // reused (frozen weights, plan caches). Compare against
    // `fp32_gemm_ns`, which likewise times only `matmul` over
    // pre-materialized tensors.
    for (key, numfmt) in [
        (
            "qgemm_int_bfp_m4_ns",
            NumericFormat::bfp_nearest(BfpFormat::high()),
        ),
        (
            "qgemm_int_bfp_m2_ns",
            NumericFormat::bfp_nearest(BfpFormat::low()),
        ),
        (
            "qgemm_int_bfp_m4_sr_ns",
            NumericFormat::bfp_stochastic(BfpFormat::high()),
        ),
    ] {
        let ap = prepare(&mut session, &a, numfmt, GroupAxis::AlongRow);
        let bp = prepare(&mut session, &b, numfmt, GroupAxis::AlongCol);
        results.push((
            key,
            time_ns(warmup, iters, || {
                black_box(execute_with(
                    &mut session,
                    ExecMode::Integer,
                    Orient::Nn,
                    black_box(&ap),
                    black_box(&bp),
                ));
            }),
        ));
    }

    // Within-run plan-vs-pipeline ratios (same machine state for both
    // sides, unlike the cross-commit "speedup" section).
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for fmt_key in ["bfp_m4", "bfp_m2", "bfp_m4_sr"] {
        let find = |k: &str| results.iter().find(|(key, _)| *key == k).map(|&(_, ns)| ns);
        if let (Some(pipeline), Some(plan)) = (
            find(&format!("quant_gemm_{fmt_key}_ns")),
            find(&format!("qgemm_{fmt_key}_ns")),
        ) {
            if plan > 0.0 {
                ratios.push((
                    format!("qgemm_over_quant_gemm_{fmt_key}_x"),
                    pipeline / plan,
                ));
            }
        }
        // Integer-domain BFP vs the unquantized FP32 GEMM, same run: the
        // headline "BFP beats FP32" claim (> 1.0 means BFP is faster).
        if let (Some(fp32), Some(int)) = (
            find("fp32_gemm_ns"),
            find(&format!("qgemm_int_{fmt_key}_ns")),
        ) {
            if int > 0.0 {
                ratios.push((format!("fp32_over_qgemm_int_{fmt_key}_x"), fp32 / int));
            }
        }
    }

    // Counter SR vs LFSR SR on the 64k-value slice quantize, same run
    // (> 1.0 means the counter source is faster).
    {
        let find = |k: &str| results.iter().find(|(key, _)| *key == k).map(|&(_, ns)| ns);
        if let (Some(lfsr_ns), Some(counter_ns)) = (
            find("quant_slice_m4_stochastic_ns"),
            find("quant_slice_m4_counter_sr_ns"),
        ) {
            if counter_ns > 0.0 {
                ratios.push((
                    "counter_sr_over_lfsr_sr_x".to_string(),
                    lfsr_ns / counter_ns,
                ));
            }
        }
    }

    // --- One training step of the small ResNet under HighBFP. ---
    let x = Tensor::from_vec(
        vec![8, 3, 16, 16],
        (0..8 * 3 * 256)
            .map(|i| (i as f32 * 0.01).sin().abs())
            .collect(),
    );
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut model = resnet_lite(ResNetConfig::resnet18(4, 4), &mut rng);
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
    let mut trainer = Trainer::new(model, Sgd::new(0.01, 0.9, 0.0), 0);
    let mut hook = NoopHook;
    results.push((
        "training_step_high_bfp_ns",
        time_ns(1, step_iters, || {
            black_box(trainer.step_classification(&x, &labels, &mut hook));
        }),
    ));

    // --- Telemetry overhead (DESIGN.md §15): the same body timed with
    // span collection off then on, back to back in one process, so the
    // pair isolates the cost of the span clock reads + histogram records
    // (the shape/MAC counters are always on in both legs). The `_pct`
    // rows are the measured overhead and must stay within the §15 budget
    // (<2% steady-state; CI enforces a slack quick-mode bound).
    //
    // Estimator: the bodies are deterministic, so their true cost is the
    // *floor* of the timing distribution — scheduler preemption and cache
    // pollution only ever push samples up, and the medians `time_ns`
    // reports for throughput rows wobble more than the span cost we are
    // trying to resolve. The two legs also alternate off/on at *sample*
    // granularity: timing whole legs back to back confounds the span cost
    // with slow drift (frequency scaling, page-cache warmup — the later
    // leg always runs hotter), while alternating samples draw both floors
    // from the same neighborhood of machine state. ---
    fn overhead_pair<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> (f64, f64) {
        for _ in 0..warmup {
            f();
        }
        let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 * iters {
            for (collect, floor) in [(false, &mut off), (true, &mut on)] {
                fast_telemetry::set_collection(collect);
                let t = Instant::now();
                f();
                *floor = floor.min(t.elapsed().as_nanos() as f64);
            }
        }
        fast_telemetry::set_collection(false);
        (off, on)
    }
    let overhead_pct = |off: f64, on: f64| {
        if off > 0.0 {
            (on - off) / off * 100.0
        } else {
            0.0
        }
    };

    // Quantize+pack (span site `qgemm.prepare`; `prepare` re-packs every
    // call — layer-level weight caches are not in play here).
    let sr_fmt = NumericFormat::bfp_stochastic(BfpFormat::high());
    let (q_off, q_on) = overhead_pair(warmup, iters, || {
        black_box(prepare(
            &mut session,
            black_box(&a),
            sr_fmt,
            GroupAxis::AlongRow,
        ));
    });
    results.push(("telemetry_overhead_quant_off_ns", q_off));
    results.push(("telemetry_overhead_quant_on_ns", q_on));
    ratios.push((
        "telemetry_overhead_quant_pct".to_string(),
        overhead_pct(q_off, q_on),
    ));

    // qGEMM execute (span sites `qgemm.execute.*` + per-mode counters).
    {
        let numfmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let ap = prepare(&mut session, &a, numfmt, GroupAxis::AlongRow);
        let bp = prepare(&mut session, &b, numfmt, GroupAxis::AlongCol);
        let (g_off, g_on) = overhead_pair(warmup, iters, || {
            black_box(execute(
                &mut session,
                Orient::Nn,
                black_box(&ap),
                black_box(&bp),
            ));
        });
        results.push(("telemetry_overhead_qgemm_off_ns", g_off));
        results.push(("telemetry_overhead_qgemm_on_ns", g_on));
        ratios.push((
            "telemetry_overhead_qgemm_pct".to_string(),
            overhead_pct(g_off, g_on),
        ));
    }

    // Full training step (span site `train.step` + per-step gauges, plus
    // every span underneath: im2col, prepare, execute).
    let (t_off, t_on) = overhead_pair(1, step_iters, || {
        black_box(trainer.step_classification(&x, &labels, &mut hook));
    });
    results.push(("telemetry_overhead_train_step_off_ns", t_off));
    results.push(("telemetry_overhead_train_step_on_ns", t_on));
    ratios.push((
        "telemetry_overhead_train_step_pct".to_string(),
        overhead_pct(t_off, t_on),
    ));

    // --- Emit JSON. ---
    let mut current = String::from("{\n");
    current.push_str(&format!("  \"quick\": {quick},\n"));
    current.push_str(&format!(
        "  \"gemm_workers\": {},\n",
        fast_tensor::parallelism().workers()
    ));
    current.push_str("  \"gemm_config\": [64, 256, 64],\n");
    let entries: Vec<String> = results
        .iter()
        .map(|(key, ns)| format!("  \"{key}\": {ns:.0}"))
        .chain(ratios.iter().map(|(key, x)| format!("  \"{key}\": {x:.2}")))
        .collect();
    current.push_str(&entries.join(",\n"));
    current.push_str("\n}");

    let json = match &baseline {
        None => format!("{{\n  \"current\": {}\n}}\n", current.replace('\n', "\n  ")),
        Some(base_json) => {
            let trimmed = base_json.trim();
            assert!(
                trimmed.starts_with('{') && trimmed.ends_with('}'),
                "baseline file is not a JSON object"
            );
            // Chaining on a previous bench_json output: compare against (and
            // embed) its flat "current" section, not the whole nested file.
            let base_obj = match trimmed.find("\"current\":") {
                Some(pos) => {
                    let rest = &trimmed[pos + "\"current\":".len()..];
                    let open = rest.find('{').expect("\"current\" must be an object");
                    let close = rest[open..]
                        .find('}')
                        .expect("\"current\" object must be closed")
                        + open;
                    rest[open..=close].to_string()
                }
                None => trimmed.to_string(),
            };
            let speedups: Vec<String> = results
                .iter()
                .filter_map(|(key, ns)| {
                    let before = extract_ns(&base_obj, key)?;
                    (*ns > 0.0).then(|| {
                        format!("    \"{}\": {:.2}", key.replace("_ns", "_x"), before / ns)
                    })
                })
                .collect();
            format!(
                "{{\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup\": {{\n{}\n  }}\n}}\n",
                base_obj.replace('\n', "\n  "),
                current.replace('\n', "\n  "),
                speedups.join(",\n")
            )
        }
    };
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    println!("wrote {out_path}");
}
