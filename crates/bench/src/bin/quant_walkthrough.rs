//! Fig 4 / Fig 5 — walkthrough of the FP→BFP conversion pipeline and the
//! BFP dot-product decomposition.

use fast_bfp::dot::{dot_chunked, dot_f32, dot_parts};
use fast_bfp::{BfpFormat, BfpGroup, ChunkedGroup, Lfsr16, Rounding};

fn main() {
    println!("== Paper Fig 4: FP32 -> BFP conversion pipeline ==\n");
    let xs = [1.375f32, 0.8125, 0.09375, -0.4375];
    let fmt = BfpFormat::new(4, 4, 8).expect("valid format");
    println!("inputs:            {xs:?}");

    let nearest = BfpGroup::quantize_nearest(&xs, fmt);
    println!("(a) max exponent:  E = {}", nearest.shared_exponent());
    println!(
        "(b,d) mantissas:   {:?}  (aligned, nearest-rounded to m=4)",
        nearest.mantissas()
    );
    println!("      dequantized: {:?}", nearest.dequantize());

    let mut lfsr = Lfsr16::new(0xACE1);
    let sr = BfpGroup::quantize(&xs, fmt, Rounding::STOCHASTIC8, &mut lfsr, None);
    println!("(c) with 8-bit LFSR stochastic rounding (gradient path):");
    println!("      mantissas:   {:?}", sr.mantissas());
    println!("      dequantized: {:?}\n", sr.dequantize());

    println!("== Paper Fig 5: BFP dot product decomposition ==\n");
    // The figure's worked example: mantissas (14,-2,-7,1)·(4,-9,11,0),
    // shared exponents 2 and 4.
    let f5 = BfpFormat::new(4, 5, 8).expect("valid format");
    let a = BfpGroup::from_parts(f5, 2, vec![14, -2, -7, 1]);
    let b = BfpGroup::from_parts(f5, 4, vec![4, -9, 11, 0]);
    let (int_sum, exp) = dot_parts(&a, &b);
    println!("integer part:  14*4 + (-2)(-9) + (-7)(11) + 1*0 = {int_sum}");
    println!(
        "one exponent addition: 2^({} + {}) with mantissa scaling -> 2^{exp}",
        a.shared_exponent(),
        b.shared_exponent()
    );
    println!("dot product = {int_sum} * 2^{exp} = {}\n", dot_f32(&a, &b));

    println!("== Paper Fig 13: variable-precision chunk-serial execution ==\n");
    let fmt4 = BfpFormat::new(4, 4, 8).expect("valid format");
    let fmt2 = BfpFormat::new(4, 2, 8).expect("valid format");
    let x4 = BfpGroup::quantize_nearest(&[1.0, 0.5, -0.75, 0.25], fmt4);
    let y2 = BfpGroup::quantize_nearest(&[0.5, -1.0, 0.5, 1.0], fmt2);
    let cx = ChunkedGroup::from_group(&x4).expect("chunk-aligned");
    let cy = ChunkedGroup::from_group(&y2).expect("chunk-aligned");
    let r = dot_chunked(&cx, &cy);
    println!(
        "4-bit × 2-bit operands -> {} fMAC passes (paper: (4/2)·(2/2) = 2)",
        r.passes
    );
    println!("chunk-serial value  = {}", r.value);
    println!(
        "direct dot product  = {}  (bit-identical)",
        dot_f32(&x4, &y2)
    );
}
