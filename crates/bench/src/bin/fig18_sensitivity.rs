//! Fig 18 — BFP sensitivity analysis: highest validation accuracy as a
//! function of mantissa bitwidth (m ∈ {2,3,4,5}) and group size
//! (g ∈ {8,16,32}).

use fast_bench::runner::{run_images, RunCfg};
use fast_bench::table::{f, Table};
use fast_bench::workloads::{resnet20, ImageTask};
use fast_bench::Scale;
use fast_bfp::BfpFormat;
use fast_core::FixedPolicy;
use fast_nn::{LayerPrecision, NumericFormat};

fn bfp_precision(g: usize, m: u32) -> LayerPrecision {
    let fmt = BfpFormat::new(g, m, 3).expect("valid format");
    LayerPrecision {
        weights: NumericFormat::bfp_nearest(fmt),
        activations: NumericFormat::bfp_nearest(fmt),
        gradients: NumericFormat::bfp_stochastic(fmt),
    }
}

fn main() {
    let scale = Scale::from_env();
    let task = ImageTask::at(scale);
    let epochs = scale.pick(6, 20);
    println!(
        "== Paper Fig 18: BFP sensitivity (ResNet-lite, {} epochs) ==\n",
        epochs
    );
    let data = task.dataset(123);

    let group_sizes = [8usize, 16, 32];
    let mantissas = [2u32, 3, 4, 5];
    let mut t = Table::new(vec!["mantissa bits", "g=8", "g=16", "g=32"]);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &m in &mantissas {
        let mut row = Vec::new();
        for &g in &group_sizes {
            let model = resnet20(task.classes, false, 7);
            let cfg = RunCfg::images(epochs, 7);
            let mut hook = FixedPolicy {
                precision: bfp_precision(g, m),
            };
            let run = run_images(model, &data, &cfg, &mut hook, None);
            row.push(run.best_quality());
        }
        t.row(
            std::iter::once(m.to_string())
                .chain(row.iter().map(|&a| f(a, 2)))
                .collect(),
        );
        rows.push(row);
    }
    print!("{}", t.render());
    println!(
        "\nPaper's claims to verify: accuracy rises with mantissa bits; smaller\n\
         group sizes quantize better at fixed m (g=8 ≥ g=16 ≥ g=32), with\n\
         g=16, m=4 already close to the ceiling (it is the paper's baseline)."
    );
}
