//! Minimal fixed-width table printing for experiment output.

/// A simple text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = widths[c]));
                } else {
                    line.push_str(&format!("  {:>w$}", cell, w = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with the given decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer", "2.50"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
