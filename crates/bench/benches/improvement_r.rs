//! Kernel benchmark: the relative-improvement statistic r(X) of paper
//! Eq. 2 — the per-iteration cost of Algorithm 1's decisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast_bfp::relative_improvement;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("improvement_r");
    for n in [1024usize, 16 * 1024, 128 * 1024] {
        let xs: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.137).sin()).collect();
        group.bench_with_input(BenchmarkId::new("r", n), &xs, |b, xs| {
            b.iter(|| black_box(relative_improvement(black_box(xs), 16)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).sample_size(20);
    targets = bench
}
criterion_main!(benches);
