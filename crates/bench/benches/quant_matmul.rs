//! Kernel benchmark: quantized GEMM (fake-quantize + f32 GEMM) vs plain
//! f32 GEMM — the cost of BFP-aware training at the software level.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_bfp::{GroupAxis, Lfsr16};
use fast_nn::NumericFormat;
use fast_tensor::{matmul, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let (m, k, n) = (64usize, 256, 64);
    let a = Tensor::from_vec(
        vec![m, k],
        (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect(),
    );
    let b = Tensor::from_vec(
        vec![k, n],
        (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect(),
    );
    let mut group = c.benchmark_group("quant_matmul");
    group.bench_function("fp32_gemm", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
    for (name, fmt) in [
        (
            "bfp_m4",
            NumericFormat::bfp_nearest(fast_bfp::BfpFormat::high()),
        ),
        (
            "bfp_m2",
            NumericFormat::bfp_nearest(fast_bfp::BfpFormat::low()),
        ),
        ("int8", NumericFormat::int8()),
        ("bf16", NumericFormat::bf16()),
    ] {
        group.bench_function(format!("quantize+gemm/{name}"), |bch| {
            let mut lfsr = Lfsr16::default();
            bch.iter(|| {
                let mut aq = a.clone();
                let mut bq = b.clone();
                fmt.quantize_matrix(&mut aq, GroupAxis::AlongRow, &mut lfsr);
                fmt.quantize_matrix(&mut bq, GroupAxis::AlongCol, &mut lfsr);
                black_box(matmul(&aq, &bq))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).sample_size(15);
    targets = bench
}
criterion_main!(benches);
