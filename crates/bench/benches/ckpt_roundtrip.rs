//! Checkpoint subsystem benchmark: artifact capture/encode and
//! decode/restore for a ResNet-lite-sized trainer (DESIGN.md §10) — the
//! cost a training loop pays per checkpoint interval, and the cost a
//! serving replica pays per hot reload.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_ckpt::Artifact;
use fast_nn::models::{resnet_lite, ResNetConfig};
use fast_nn::{set_uniform_precision, LayerPrecision, NoopHook, Sequential, Sgd, Trainer};
use fast_tensor::Tensor;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn model() -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut m = resnet_lite(ResNetConfig::resnet18(4, 4), &mut rng);
    set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
    m
}

fn trained() -> Trainer {
    let x = Tensor::from_vec(
        vec![4, 3, 16, 16],
        (0..4 * 3 * 256).map(|i| (i as f32 * 0.013).sin()).collect(),
    );
    let labels: Vec<usize> = (0..4).map(|i| i % 4).collect();
    let mut trainer = Trainer::new(model(), Sgd::new(0.01, 0.9, 1e-4), 0);
    let _ = trainer.step_classification(&x, &labels, &mut NoopHook);
    trainer
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckpt_roundtrip");
    group.bench_function("capture_encode", |b| {
        let mut trainer = trained();
        b.iter(|| black_box(trainer.checkpoint(None).to_bytes()))
    });
    group.bench_function("decode_restore", |b| {
        let mut trainer = trained();
        let bytes = trainer.checkpoint(None).to_bytes();
        b.iter(|| {
            let artifact = Artifact::from_bytes(black_box(&bytes)).expect("decode");
            black_box(
                Trainer::resume(model(), Sgd::new(0.01, 0.9, 1e-4), &artifact, None)
                    .expect("resume"),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).sample_size(10);
    targets = bench
}
criterion_main!(benches);
