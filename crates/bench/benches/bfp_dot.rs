//! Kernel benchmark: BFP group dot products — direct integer form (Fig 5)
//! vs chunk-serial fMAC form (Fig 13) across mantissa widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast_bfp::dot::{dot_chunked, dot_f32};
use fast_bfp::{BfpFormat, BfpGroup, ChunkedGroup};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let xs: Vec<f32> = (0..16).map(|i| ((i as f32) * 0.7).cos()).collect();
    let ys: Vec<f32> = (0..16).map(|i| ((i as f32) * 1.3).sin()).collect();
    let mut group = c.benchmark_group("bfp_dot");
    for m in [2u32, 4, 8] {
        let fmt = BfpFormat::new(16, m, 8).expect("valid");
        let a = BfpGroup::quantize_nearest(&xs, fmt);
        let b = BfpGroup::quantize_nearest(&ys, fmt);
        let ca = ChunkedGroup::from_group(&a).expect("chunk aligned");
        let cb = ChunkedGroup::from_group(&b).expect("chunk aligned");
        group.bench_with_input(BenchmarkId::new("direct", m), &m, |bch, _| {
            bch.iter(|| black_box(dot_f32(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("chunked", m), &m, |bch, _| {
            bch.iter(|| black_box(dot_chunked(black_box(&ca), black_box(&cb))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).sample_size(30);
    targets = bench
}
criterion_main!(benches);
