//! End-to-end benchmark: one training iteration of a small CNN under FP32,
//! HighBFP, and FAST low-precision settings.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_nn::models::{resnet_lite, ResNetConfig};
use fast_nn::{set_uniform_precision, LayerPrecision, NoopHook, Sgd, Trainer};
use fast_tensor::Tensor;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let x = Tensor::from_vec(
        vec![8, 3, 16, 16],
        (0..8 * 3 * 256)
            .map(|i| (i as f32 * 0.01).sin().abs())
            .collect(),
    );
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let mut group = c.benchmark_group("training_step");
    for (name, prec) in [
        ("fp32", LayerPrecision::fp32()),
        ("high_bfp_m4", LayerPrecision::bfp_fixed(4)),
        ("fast_low_2_2_2", LayerPrecision::fast(2, 2, 2)),
    ] {
        group.bench_function(name, |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let mut model = resnet_lite(ResNetConfig::resnet18(4, 4), &mut rng);
            set_uniform_precision(&mut model, prec);
            let mut trainer = Trainer::new(model, Sgd::new(0.01, 0.9, 0.0), 0);
            let mut hook = NoopHook;
            b.iter(|| black_box(trainer.step_classification(&x, &labels, &mut hook)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).sample_size(10);
    targets = bench
}
criterion_main!(benches);
