//! Kernel benchmark: evaluation speed of the systolic cycle model and the
//! functional three-dataflow simulation (paper Fig 12).

use criterion::{criterion_group, criterion_main, Criterion};
use fast_hw::{training_iteration, Gemm, LayerWork, SystemConfig, SystolicFunctionalSim};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let layers: Vec<LayerWork> = [
        Gemm {
            m: 802_816,
            k: 576,
            n: 64,
        },
        Gemm {
            m: 200_704,
            k: 1152,
            n: 128,
        },
        Gemm {
            m: 50_176,
            k: 2304,
            n: 256,
        },
        Gemm {
            m: 12_544,
            k: 4608,
            n: 512,
        },
    ]
    .iter()
    .map(|&gemm| LayerWork {
        gemm,
        m_w: 4,
        m_a: 2,
        m_g: 4,
    })
    .collect();
    let systems = SystemConfig::all();

    let mut group = c.benchmark_group("systolic_model");
    group.bench_function("iteration_cost_all_systems", |b| {
        b.iter(|| {
            for sys in &systems {
                black_box(training_iteration(black_box(sys), black_box(&layers)));
            }
        })
    });

    let (k, n, m) = (32usize, 24, 16);
    let w: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.1).sin()).collect();
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.2).cos()).collect();
    let g: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.3).sin()).collect();
    let sim = SystolicFunctionalSim::load_weights(&w, k, n);
    group.bench_function("functional_three_dataflows", |b| {
        b.iter(|| {
            black_box(sim.forward(&a, m));
            black_box(sim.backward_activation(&g, m));
            black_box(sim.backward_weight(&a, &g, m));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).sample_size(20);
    targets = bench
}
criterion_main!(benches);
