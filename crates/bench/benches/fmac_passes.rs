//! Kernel benchmark: fMAC cell streaming throughput at each variable
//! precision (2×2 → 1 pass, 4×2 → 2, 4×4 → 4; paper Section V-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast_bfp::{BfpFormat, BfpGroup, ChunkedGroup};
use fast_hw::FmacCell;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let xs: Vec<f32> = (0..16).map(|i| ((i as f32) * 0.7).cos()).collect();
    let ws: Vec<f32> = (0..16).map(|i| ((i as f32) * 0.3).sin()).collect();
    let mut group = c.benchmark_group("fmac_passes");
    for (mw, mx) in [(2u32, 2u32), (4, 2), (4, 4)] {
        let w = ChunkedGroup::from_group(&BfpGroup::quantize_nearest(
            &ws,
            BfpFormat::new(16, mw, 8).expect("valid"),
        ))
        .expect("chunk aligned");
        let x = ChunkedGroup::from_group(&BfpGroup::quantize_nearest(
            &xs,
            BfpFormat::new(16, mx, 8).expect("valid"),
        ))
        .expect("chunk aligned");
        group.bench_with_input(
            BenchmarkId::new("consume", format!("{mw}x{mx}")),
            &(w, x),
            |b, (w, x)| {
                let mut cell = FmacCell::new();
                cell.load_weight(w.clone());
                b.iter(|| black_box(cell.consume(black_box(x))))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).sample_size(30);
    targets = bench
}
criterion_main!(benches);
