//! Kernel benchmark: FP32 → BFP conversion throughput (the converter of
//! paper Fig 14), nearest vs stochastic rounding, across group sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast_bfp::{fake_quantize_slice, BfpFormat, Lfsr16, Rounding};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let n = 16 * 1024;
    let xs: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin()).collect();
    let mut group = c.benchmark_group("bfp_convert");
    for g in [8usize, 16, 32] {
        let fmt = BfpFormat::new(g, 4, 8).expect("valid");
        group.bench_with_input(BenchmarkId::new("nearest", g), &fmt, |b, &fmt| {
            let mut lfsr = Lfsr16::default();
            b.iter(|| {
                let mut data = xs.clone();
                fake_quantize_slice(&mut data, fmt, Rounding::Nearest, &mut lfsr, None);
                black_box(data)
            })
        });
        group.bench_with_input(BenchmarkId::new("stochastic", g), &fmt, |b, &fmt| {
            let mut lfsr = Lfsr16::default();
            b.iter(|| {
                let mut data = xs.clone();
                fake_quantize_slice(&mut data, fmt, Rounding::STOCHASTIC8, &mut lfsr, None);
                black_box(data)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).sample_size(20);
    targets = bench
}
criterion_main!(benches);
