//! Kernel benchmark: LFSR noise generation vs a general-purpose RNG vs the
//! counter-based hash as the stochastic-rounding bit source.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_bfp::{BitSource, CounterRng, Lfsr16, RngBits};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sr_lfsr");
    group.bench_function("lfsr16_8bit_draws", |b| {
        let mut lfsr = Lfsr16::default();
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc = acc.wrapping_add(lfsr.next_bits(8));
            }
            black_box(acc)
        })
    });
    group.bench_function("stdrng_8bit_draws", |b| {
        let mut rng = RngBits(rand::rngs::StdRng::seed_from_u64(1));
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc = acc.wrapping_add(rng.next_bits(8));
            }
            black_box(acc)
        })
    });
    // Counter mode's cost model: `bits_at` hashes the offset on every call,
    // but consecutive 8-bit draws land in lanes of one 64-bit hash — the
    // kernels amortize to one SplitMix64 per eight elements.
    group.bench_function("counter_8bit_draws", |b| {
        let rng = CounterRng::new(1);
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1024u64 {
                acc = acc.wrapping_add(rng.bits_at(i, 8));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).sample_size(30);
    targets = bench
}
criterion_main!(benches);
