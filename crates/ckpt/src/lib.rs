//! Checkpoint & model-artifact subsystem for the FAST reproduction
//! (DESIGN.md §10).
//!
//! FAST training is stateful end to end: the variable-precision schedule,
//! the stochastic-rounding bit streams, and the optimizer moments evolve
//! together, so a durable artifact must capture *everything* that
//! determines the trajectory — and a resumed run must continue
//! **bit-identically**, not just "loss looks similar". This crate provides
//! the two layers that make that possible without any external
//! dependencies:
//!
//! * [`Artifact`] — a versioned, self-describing binary container: magic,
//!   format version, named section table, CRC-32 per section. Decoding
//!   malformed input returns typed [`CkptError`]s; nothing panics.
//! * [`StateVisitor`] / [`VisitState`] / [`StateDict`] — named, shaped
//!   state enumeration. An object walks its state once; the same walk
//!   captures ([`capture_state`]) and restores ([`restore_state`]), with
//!   strict validation (missing entries, kind/shape mismatches, and
//!   entries the target never visited are all errors).
//!
//! `fast_nn` builds on this: every [`Layer`] exposes `visit_state`,
//! optimizers implement [`VisitState`] (so any future optimizer is
//! checkpointable by construction), and `Trainer::{save_checkpoint,
//! resume}` assemble/replay the standard sections below. `fast_serve`
//! consumes the same artifacts for hot weight swaps (`Server::reload`).
//!
//! [`Layer`]: https://docs.rs/fast_nn
//!
//! ```
//! use fast_ckpt::{capture_state, restore_state, Artifact, StateVisitor, VisitState, SECTION_MODEL};
//! use fast_tensor::Tensor;
//!
//! struct Counter {
//!     steps: u64,
//! }
//! impl VisitState for Counter {
//!     fn visit_state(&mut self, v: &mut dyn StateVisitor) {
//!         v.scalar_u64("steps", &mut self.steps);
//!     }
//! }
//!
//! let mut trained = Counter { steps: 41 };
//! let mut artifact = Artifact::new();
//! artifact.insert(SECTION_MODEL, capture_state(&mut trained).to_bytes());
//!
//! let bytes = artifact.to_bytes(); // ← what `save`/`load` put on disk
//! let loaded = Artifact::from_bytes(&bytes).unwrap();
//! let mut resumed = Counter { steps: 0 };
//! restore_state(
//!     &mut resumed,
//!     &fast_ckpt::StateDict::from_bytes(loaded.require(SECTION_MODEL).unwrap()).unwrap(),
//! )
//! .unwrap();
//! assert_eq!(resumed.steps, 41);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod error;
mod state;

pub use artifact::{crc32, Artifact, FORMAT_VERSION, MAGIC};
pub use error::CkptError;
pub use state::{capture_state, restore_state, StateDict, StateValue, StateVisitor, VisitState};

/// Standard section: model parameters, buffers and per-layer formats.
pub const SECTION_MODEL: &str = "model";
/// Standard section: optimizer slots (momenta, moments, step counter).
pub const SECTION_OPTIMIZER: &str = "optimizer";
/// Standard section: session RNG and plan counters.
pub const SECTION_SESSION: &str = "session";
/// Standard section: training-loop metadata (iteration count).
pub const SECTION_META: &str = "meta";
/// Standard section: controller/hook state (e.g. `fast_core`'s
/// `FastController` precision settings and trace).
pub const SECTION_HOOK: &str = "hook";
