//! The on-disk artifact container (DESIGN.md §10).
//!
//! An artifact is a self-describing binary file: a fixed header identifying
//! the format and version, a table of named sections, and the section
//! payloads. Every section carries a CRC-32 so bit rot is detected before
//! any payload is interpreted. All integers are little-endian; the layout
//! has no alignment requirements and no external dependencies.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FASTCKPT"
//! 8       4     format version (u32, currently 1)
//! 12      4     section count N (u32)
//!               N section-table entries:
//!                 u32   name length (bytes)
//!                 ..    name (UTF-8)
//!                 u64   payload offset (relative to payload base)
//!                 u64   payload length
//!                 u32   CRC-32 (IEEE) of the payload
//!               payload base: section payloads, in table order
//! ```

use crate::error::CkptError;
use std::io::{Read, Write};
use std::path::Path;

/// Leading magic bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"FASTCKPT";

/// The artifact format version this build writes and reads.
///
/// Compatibility rule: readers accept exactly the versions they know
/// (currently only `1`); any other version is [`CkptError::UnsupportedVersion`].
/// Additive evolution (new sections, new state entries) does not bump the
/// version — unknown sections are preserved and ignored; removing or
/// re-interpreting existing encodings does.
pub const FORMAT_VERSION: u32 = 1;

/// Hard ceilings rejected during decode so a corrupt length prefix cannot
/// drive huge allocations: counts (sections, entries) and name lengths.
const MAX_COUNT: u32 = 1 << 20;
const MAX_NAME: u32 = 4096;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the per-section integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One named payload inside an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Section {
    name: String,
    bytes: Vec<u8>,
}

/// A versioned, checksummed container of named binary sections.
///
/// `Artifact` is the unit of durability: [`Trainer::save_checkpoint`] writes
/// one, [`Trainer::resume`] and `fast_serve::Server::reload` read one. The
/// container itself is payload-agnostic; the `model` / `optimizer` /
/// `session` / `hook` sections hold [`StateDict`](crate::StateDict)
/// encodings, and embedders may add their own sections (they round-trip
/// untouched).
///
/// [`Trainer::save_checkpoint`]: https://docs.rs/fast_nn
/// [`Trainer::resume`]: https://docs.rs/fast_nn
///
/// ```
/// use fast_ckpt::Artifact;
///
/// let mut a = Artifact::new();
/// a.insert("notes", b"hello".to_vec());
/// let bytes = a.to_bytes();
/// let b = Artifact::from_bytes(&bytes).unwrap();
/// assert_eq!(b.section("notes"), Some(&b"hello"[..]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Artifact {
    sections: Vec<Section>,
}

impl Artifact {
    /// Creates an empty artifact.
    pub fn new() -> Self {
        Artifact::default()
    }

    /// Inserts (or replaces) a named section.
    pub fn insert(&mut self, name: &str, bytes: Vec<u8>) {
        match self.sections.iter_mut().find(|s| s.name == name) {
            Some(s) => s.bytes = bytes,
            None => self.sections.push(Section {
                name: name.to_string(),
                bytes,
            }),
        }
    }

    /// The payload of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.bytes.as_slice())
    }

    /// The payload of section `name`, or [`CkptError::MissingSection`].
    pub fn require(&self, name: &str) -> Result<&[u8], CkptError> {
        self.section(name).ok_or_else(|| CkptError::MissingSection {
            section: name.to_string(),
        })
    }

    /// Section names in storage order.
    pub fn names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Serializes the artifact to its byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = 0u64;
        for s in &self.sections {
            out.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(&s.bytes).to_le_bytes());
            offset += s.bytes.len() as u64;
        }
        for s in &self.sections {
            out.extend_from_slice(&s.bytes);
        }
        out
    }

    /// Decodes an artifact, verifying magic, version, table consistency and
    /// every section checksum.
    ///
    /// # Errors
    ///
    /// [`CkptError::BadMagic`], [`CkptError::UnsupportedVersion`],
    /// [`CkptError::Truncated`], [`CkptError::ChecksumMismatch`] or
    /// [`CkptError::Corrupt`] depending on what is wrong with the input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Cursor::new(bytes);
        let magic = r.take_array::<8>("magic")?;
        if magic != MAGIC {
            return Err(CkptError::BadMagic { found: magic });
        }
        let version = r.take_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion { found: version });
        }
        let count = r.take_u32("section count")?;
        if count > MAX_COUNT {
            return Err(CkptError::Corrupt {
                context: format!("section count {count} exceeds limit"),
            });
        }
        let mut table = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = r.take_name("section name")?;
            let offset = r.take_u64("section offset")?;
            let len = r.take_u64("section length")?;
            let crc = r.take_u32("section checksum")?;
            table.push((name, offset, len, crc));
        }
        let payload = r.rest();
        let mut sections = Vec::with_capacity(table.len());
        let mut expected_offset = 0u64;
        for (name, offset, len, crc) in table {
            if offset != expected_offset {
                return Err(CkptError::Corrupt {
                    context: format!(
                        "section `{name}` offset {offset} does not follow its predecessor ({expected_offset})"
                    ),
                });
            }
            let end = offset.checked_add(len).ok_or_else(|| CkptError::Corrupt {
                context: format!("section `{name}` extent overflows"),
            })?;
            if end > payload.len() as u64 {
                return Err(CkptError::Truncated {
                    context: "section payload",
                });
            }
            let body = &payload[offset as usize..end as usize];
            if crc32(body) != crc {
                return Err(CkptError::ChecksumMismatch { section: name });
            }
            expected_offset = end;
            sections.push(Section {
                name,
                bytes: body.to_vec(),
            });
        }
        if expected_offset != payload.len() as u64 {
            return Err(CkptError::Corrupt {
                context: format!(
                    "{} trailing payload bytes after the last section",
                    payload.len() as u64 - expected_offset
                ),
            });
        }
        Ok(Artifact { sections })
    }

    /// Writes the serialized artifact to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), CkptError> {
        w.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads and decodes an artifact from `r` (consumes `r` to EOF).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, CkptError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Artifact::from_bytes(&bytes)
    }

    /// Saves the artifact to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CkptError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads an artifact from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CkptError> {
        Artifact::from_bytes(&std::fs::read(path)?)
    }
}

/// A bounds-checked little-endian reader over a byte slice. Shared by the
/// artifact and state decoders; every read reports *what* was truncated.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CkptError> {
        if self.bytes.len() - self.pos < n {
            return Err(CkptError::Truncated { context });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_array<const N: usize>(
        &mut self,
        context: &'static str,
    ) -> Result<[u8; N], CkptError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N, context)?);
        Ok(out)
    }

    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take_array::<4>(context)?))
    }

    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take_array::<8>(context)?))
    }

    /// Reads a `u32` length-prefixed UTF-8 string with the name-size cap.
    pub fn take_name(&mut self, context: &'static str) -> Result<String, CkptError> {
        let len = self.take_u32(context)?;
        if len > MAX_NAME {
            return Err(CkptError::Corrupt {
                context: format!("name length {len} exceeds limit"),
            });
        }
        let bytes = self.take(len as usize, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Corrupt {
            context: format!("{context}: name is not UTF-8"),
        })
    }

    /// Reads a `u32` element count with the global count cap.
    pub fn take_count(&mut self, context: &'static str) -> Result<u32, CkptError> {
        let n = self.take_u32(context)?;
        if n > MAX_COUNT {
            return Err(CkptError::Corrupt {
                context: format!("{context}: count {n} exceeds limit"),
            });
        }
        Ok(n)
    }

    pub fn rest(self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut a = Artifact::new();
        a.insert("alpha", vec![1, 2, 3, 4]);
        a.insert("beta", Vec::new());
        a.insert("gamma", (0u8..255).collect());
        a
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_sections_and_order() {
        let a = sample();
        let b = Artifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.names(), vec!["alpha", "beta", "gamma"]);
        assert_eq!(b.section("beta"), Some(&[][..]));
        assert!(b.section("delta").is_none());
        assert!(matches!(
            b.require("delta"),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn insert_replaces_existing_section() {
        let mut a = sample();
        a.insert("alpha", vec![9]);
        assert_eq!(a.section("alpha"), Some(&[9u8][..]));
        assert_eq!(a.names().len(), 3);
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        match Artifact::from_bytes(&bytes) {
            Err(CkptError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(CkptError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn every_truncation_point_errors_not_panics() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let result = Artifact::from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn payload_corruption_fails_the_right_sections_checksum() {
        let bytes = sample().to_bytes();
        // Flip the final payload byte: that's inside `gamma`.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0x80;
        match Artifact::from_bytes(&bad) {
            Err(CkptError::ChecksumMismatch { section }) => assert_eq!(section, "gamma"),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn oversized_counts_are_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fast_ckpt_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fastckpt");
        let a = sample();
        a.save(&path).unwrap();
        assert_eq!(Artifact::load(&path).unwrap(), a);
        std::fs::remove_file(&path).unwrap();
    }
}
