//! Typed checkpoint errors.
//!
//! Every way an artifact can fail to load — short file, foreign file, future
//! format, bit rot, architecture mismatch — gets its own variant so callers
//! can distinguish "retry with a newer binary" from "the file is damaged".
//! Nothing in this crate panics on malformed input.

/// Errors produced by artifact encoding/decoding and state restoration.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the artifact magic (`FASTCKPT`).
    BadMagic {
        /// The 8 bytes actually found at the head of the file.
        found: [u8; 8],
    },
    /// The artifact carries a format version this binary does not read.
    UnsupportedVersion {
        /// The version stamped in the artifact header.
        found: u32,
    },
    /// The input ended before the structure it promised was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
    },
    /// A section the decoder requires is absent from the artifact.
    MissingSection {
        /// Name of the absent section.
        section: String,
    },
    /// A state entry the restore target visits is absent from the artifact.
    MissingEntry {
        /// Fully scoped name of the absent entry.
        name: String,
    },
    /// A state entry exists but holds a different kind of value.
    WrongKind {
        /// Fully scoped name of the entry.
        name: String,
        /// The kind the restore target expected.
        expected: &'static str,
    },
    /// A tensor entry's recorded shape differs from the restore target's.
    ShapeMismatch {
        /// Fully scoped name of the entry.
        name: String,
        /// Shape of the tensor being restored into.
        expected: Vec<usize>,
        /// Shape recorded in the artifact.
        found: Vec<usize>,
    },
    /// The artifact carries state entries the restore target never visited —
    /// the saved object had state this object lacks (architecture mismatch).
    UnconsumedEntries {
        /// The first few unconsumed entry names.
        names: Vec<String>,
    },
    /// Structurally invalid content that fits no more specific variant.
    Corrupt {
        /// What was found to be inconsistent.
        context: String,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic { found } => {
                write!(f, "not a FAST checkpoint (magic bytes {found:02x?})")
            }
            CkptError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            CkptError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            CkptError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            CkptError::MissingSection { section } => {
                write!(f, "checkpoint has no `{section}` section")
            }
            CkptError::MissingEntry { name } => {
                write!(f, "checkpoint has no state entry `{name}`")
            }
            CkptError::WrongKind { name, expected } => {
                write!(f, "state entry `{name}` is not a {expected}")
            }
            CkptError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "state entry `{name}` has shape {found:?}, target expects {expected:?}"
            ),
            CkptError::UnconsumedEntries { names } => {
                write!(
                    f,
                    "checkpoint carries state the target never visited: {names:?}"
                )
            }
            CkptError::Corrupt { context } => write!(f, "corrupt checkpoint: {context}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}
