//! Named, shaped state capture and replay.
//!
//! [`StateVisitor`] is the double-ended enumeration protocol: a stateful
//! object (layer tree, optimizer, controller) implements [`VisitState`] by
//! walking its state *once*, handing every piece to the visitor under a
//! stable, hierarchical name. The same walk serves both directions —
//! [`capture_state`] records every entry into a [`StateDict`], and
//! [`restore_state`] writes artifact values back through the identical
//! traversal, so save and load can never disagree about what exists.
//!
//! Restoration is strict: a visited entry missing from the dict, a kind or
//! shape mismatch, and dict entries the object never visited are all typed
//! errors ([`CkptError`]) — an artifact from a different architecture fails
//! loudly instead of silently resuming from half a model.

use crate::artifact::Cursor;
use crate::error::CkptError;
use fast_tensor::Tensor;
use std::collections::BTreeSet;

/// One captured state value.
#[derive(Debug, Clone, PartialEq)]
pub enum StateValue {
    /// A shaped f32 tensor (parameters, moments, cached activations).
    Tensor(Tensor),
    /// A scalar counter (step counts, RNG words, LFSR registers).
    U64(u64),
    /// A scalar hyper-parameter (learning rate).
    F32(f32),
    /// A flat `u32` list (precision settings).
    U32s(Vec<u32>),
    /// A flat `f32` list (running statistics).
    F32s(Vec<f32>),
    /// An opaque, owner-defined encoding (numeric formats, traces).
    Bytes(Vec<u8>),
    /// An ordered list of shaped tensors (optimizer slot buffers, which are
    /// sized lazily and so must carry their shapes through the artifact).
    TensorSeq(Vec<Tensor>),
}

impl StateValue {
    /// Human-readable kind tag, as used in [`CkptError::WrongKind`] messages.
    pub fn kind(&self) -> &'static str {
        match self {
            StateValue::Tensor(_) => "tensor",
            StateValue::U64(_) => "u64",
            StateValue::F32(_) => "f32",
            StateValue::U32s(_) => "u32 list",
            StateValue::F32s(_) => "f32 list",
            StateValue::Bytes(_) => "byte string",
            StateValue::TensorSeq(_) => "tensor list",
        }
    }
}

/// An ordered dictionary of fully-scoped names to [`StateValue`]s — the
/// decoded form of one artifact section.
///
/// Entries keep capture order (the byte encoding is deterministic), with a
/// name index on the side so lookups during restore stay O(1) even for
/// models with thousands of state entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: Vec<(String, StateValue)>,
    index: std::collections::HashMap<String, usize>,
}

impl StateDict {
    /// Creates an empty dict.
    pub fn new() -> Self {
        StateDict::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by fully-scoped name.
    pub fn get(&self, name: &str) -> Option<&StateValue> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Inserts an entry, replacing any previous value under the same name.
    pub fn insert(&mut self, name: String, value: StateValue) {
        match self.index.get(&name) {
            Some(&i) => self.entries[i].1 = value,
            None => {
                self.index.insert(name.clone(), self.entries.len());
                self.entries.push((name, value));
            }
        }
    }

    /// Iterates entries in capture order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StateValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Encodes the dict to section bytes (little-endian, length-prefixed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, value) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            match value {
                StateValue::Tensor(t) => {
                    out.push(1);
                    encode_tensor(&mut out, t);
                }
                StateValue::U64(v) => {
                    out.push(2);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                StateValue::F32(v) => {
                    out.push(3);
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                StateValue::U32s(vs) => {
                    out.push(4);
                    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                StateValue::F32s(vs) => {
                    out.push(5);
                    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
                    for v in vs {
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
                StateValue::Bytes(bs) => {
                    out.push(6);
                    out.extend_from_slice(&(bs.len() as u64).to_le_bytes());
                    out.extend_from_slice(bs);
                }
                StateValue::TensorSeq(ts) => {
                    out.push(7);
                    out.extend_from_slice(&(ts.len() as u32).to_le_bytes());
                    for t in ts {
                        encode_tensor(&mut out, t);
                    }
                }
            }
        }
        out
    }

    /// Decodes a dict from section bytes.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] or [`CkptError::Corrupt`] on malformed input;
    /// never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Cursor::new(bytes);
        let count = r.take_count("state entry count")?;
        let mut dict = StateDict::new();
        for _ in 0..count {
            let name = r.take_name("state entry name")?;
            let tag = r.take_u8("state entry kind")?;
            let value = match tag {
                1 => StateValue::Tensor(decode_tensor(&mut r)?),
                2 => StateValue::U64(r.take_u64("u64 entry")?),
                3 => StateValue::F32(f32::from_bits(r.take_u32("f32 entry")?)),
                4 => {
                    let n = r.take_count("u32 list length")? as usize;
                    let body = r.take(n * 4, "u32 list")?;
                    StateValue::U32s(
                        body.chunks_exact(4)
                            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                            .collect(),
                    )
                }
                5 => {
                    let n = r.take_count("f32 list length")? as usize;
                    let body = r.take(n * 4, "f32 list")?;
                    StateValue::F32s(
                        body.chunks_exact(4)
                            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                            .collect(),
                    )
                }
                6 => {
                    let n = r.take_u64("byte string length")?;
                    if n > bytes.len() as u64 {
                        return Err(CkptError::Truncated {
                            context: "byte string",
                        });
                    }
                    StateValue::Bytes(r.take(n as usize, "byte string")?.to_vec())
                }
                7 => {
                    let n = r.take_count("tensor list length")? as usize;
                    let mut ts = Vec::with_capacity(n);
                    for _ in 0..n {
                        ts.push(decode_tensor(&mut r)?);
                    }
                    StateValue::TensorSeq(ts)
                }
                other => {
                    return Err(CkptError::Corrupt {
                        context: format!("unknown state entry kind tag {other}"),
                    })
                }
            };
            if dict.get(&name).is_some() {
                return Err(CkptError::Corrupt {
                    context: format!("duplicate state entry `{name}`"),
                });
            }
            dict.insert(name, value);
        }
        if !r.is_empty() {
            return Err(CkptError::Corrupt {
                context: "trailing bytes after the last state entry".to_string(),
            });
        }
        Ok(dict)
    }
}

fn encode_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
    for &d in t.shape() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn decode_tensor(r: &mut Cursor<'_>) -> Result<Tensor, CkptError> {
    let rank = r.take_count("tensor rank")?;
    if rank > 8 {
        return Err(CkptError::Corrupt {
            context: format!("tensor rank {rank} exceeds limit"),
        });
    }
    let mut shape = Vec::with_capacity(rank as usize);
    let mut numel = 1u64;
    for _ in 0..rank {
        let d = r.take_u64("tensor dimension")?;
        numel = numel.checked_mul(d).ok_or_else(|| CkptError::Corrupt {
            context: "tensor element count overflows".to_string(),
        })?;
        shape.push(d as usize);
    }
    let body = r.take((numel as usize).saturating_mul(4), "tensor data")?;
    let data = body
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect();
    Ok(Tensor::from_vec(shape, data))
}

/// The enumeration protocol between stateful objects and checkpoint codecs.
///
/// Objects call these methods once per piece of state, in a stable order,
/// under stable names; nested objects are bracketed with
/// [`enter`](StateVisitor::enter)/[`exit`](StateVisitor::exit) so names
/// compose hierarchically (`"3:dense/w"`). Each method takes `&mut` access
/// because the *same* traversal both captures (reads) and restores (writes).
pub trait StateVisitor {
    /// Opens a nested scope; subsequent names are prefixed with `scope/`.
    fn enter(&mut self, scope: &str);
    /// Closes the innermost scope.
    fn exit(&mut self);
    /// A shaped tensor. Restore requires an identical shape.
    fn tensor(&mut self, name: &str, value: &mut Tensor);
    /// A tensor that may be absent (per-layer caches). Captured only when
    /// `Some`; restored to `None` when the artifact has no such entry.
    fn opt_tensor(&mut self, name: &str, value: &mut Option<Tensor>);
    /// An ordered tensor list whose length and shapes are defined by the
    /// artifact on restore (lazily-sized optimizer slots).
    fn tensor_seq(&mut self, name: &str, value: &mut Vec<Tensor>);
    /// A `u64` scalar.
    fn scalar_u64(&mut self, name: &str, value: &mut u64);
    /// An `f32` scalar.
    fn scalar_f32(&mut self, name: &str, value: &mut f32);
    /// A flat `u32` list (length defined by the artifact on restore).
    fn u32s(&mut self, name: &str, value: &mut Vec<u32>);
    /// A flat `f32` list (length defined by the artifact on restore).
    fn f32s(&mut self, name: &str, value: &mut Vec<f32>);
    /// An opaque byte string with an owner-defined encoding.
    fn bytes(&mut self, name: &str, value: &mut Vec<u8>);
    /// Reports that an owner-defined encoding (a [`StateVisitor::bytes`]
    /// entry the object just tried to parse) is malformed. Restoration
    /// surfaces this as [`CkptError::Corrupt`]; capture treats it as an
    /// object-side bug (the object failed to re-parse its own encoding).
    fn invalid(&mut self, name: &str, why: String);
}

/// An object whose trajectory-determining state can be walked by a
/// [`StateVisitor`] — the property that makes it checkpointable by
/// construction.
pub trait VisitState {
    /// Walks every piece of state exactly once, in a stable order.
    fn visit_state(&mut self, v: &mut dyn StateVisitor);
}

/// Any `FnMut(&mut dyn StateVisitor)` is a state walk — the bridge for
/// objects that expose a visitation *method* rather than implementing the
/// trait (e.g. walking a `&mut dyn Layer` from `fast_nn`):
/// `capture_state(&mut |v| layer.visit_state(v))`.
impl<F: FnMut(&mut dyn StateVisitor)> VisitState for F {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        self(v)
    }
}

/// Shared scope bookkeeping for the two visitor directions.
#[derive(Default)]
struct ScopeStack {
    parts: Vec<String>,
}

impl ScopeStack {
    fn qualify(&self, name: &str) -> String {
        if self.parts.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.parts.join("/"), name)
        }
    }
}

/// Captures a visited object's state into a fresh [`StateDict`].
pub fn capture_state(obj: &mut dyn VisitState) -> StateDict {
    let mut v = SaveVisitor {
        scope: ScopeStack::default(),
        dict: StateDict::new(),
    };
    obj.visit_state(&mut v);
    v.dict
}

struct SaveVisitor {
    scope: ScopeStack,
    dict: StateDict,
}

impl SaveVisitor {
    fn record(&mut self, name: &str, value: StateValue) {
        let full = self.scope.qualify(name);
        debug_assert!(
            self.dict.get(&full).is_none(),
            "state entry `{full}` visited twice"
        );
        self.dict.insert(full, value);
    }
}

impl StateVisitor for SaveVisitor {
    fn enter(&mut self, scope: &str) {
        self.scope.parts.push(scope.to_string());
    }
    fn exit(&mut self) {
        self.scope.parts.pop().expect("exit without matching enter");
    }
    fn tensor(&mut self, name: &str, value: &mut Tensor) {
        self.record(name, StateValue::Tensor(value.clone()));
    }
    fn opt_tensor(&mut self, name: &str, value: &mut Option<Tensor>) {
        if let Some(t) = value {
            self.record(name, StateValue::Tensor(t.clone()));
        }
    }
    fn tensor_seq(&mut self, name: &str, value: &mut Vec<Tensor>) {
        self.record(name, StateValue::TensorSeq(value.clone()));
    }
    fn scalar_u64(&mut self, name: &str, value: &mut u64) {
        self.record(name, StateValue::U64(*value));
    }
    fn scalar_f32(&mut self, name: &str, value: &mut f32) {
        self.record(name, StateValue::F32(*value));
    }
    fn u32s(&mut self, name: &str, value: &mut Vec<u32>) {
        self.record(name, StateValue::U32s(value.clone()));
    }
    fn f32s(&mut self, name: &str, value: &mut Vec<f32>) {
        self.record(name, StateValue::F32s(value.clone()));
    }
    fn bytes(&mut self, name: &str, value: &mut Vec<u8>) {
        self.record(name, StateValue::Bytes(value.clone()));
    }
    fn invalid(&mut self, name: &str, why: String) {
        debug_assert!(false, "object rejected its own `{name}` encoding: {why}");
    }
}

/// Restores a captured [`StateDict`] into a visited object.
///
/// The walk must mirror the one that captured the dict: every visited entry
/// must exist with the right kind (and shape, for tensors), and every dict
/// entry must be visited. Optional tensors are the one asymmetry — absent
/// entries restore to `None`.
///
/// # Errors
///
/// The first mismatch encountered, as a typed [`CkptError`]. The object may
/// be partially written when an error is returned; callers should treat it
/// as unusable (both `Trainer::resume` and `Server::reload` restore into a
/// scratch object and discard it on failure).
pub fn restore_state(obj: &mut dyn VisitState, dict: &StateDict) -> Result<(), CkptError> {
    let mut v = RestoreVisitor {
        scope: ScopeStack::default(),
        dict,
        consumed: BTreeSet::new(),
        error: None,
    };
    obj.visit_state(&mut v);
    if let Some(e) = v.error {
        return Err(e);
    }
    let unconsumed: Vec<String> = dict
        .iter()
        .filter(|(n, _)| !v.consumed.contains(*n))
        .map(|(n, _)| n.to_string())
        .take(8)
        .collect();
    if !unconsumed.is_empty() {
        return Err(CkptError::UnconsumedEntries { names: unconsumed });
    }
    Ok(())
}

struct RestoreVisitor<'a> {
    scope: ScopeStack,
    dict: &'a StateDict,
    consumed: BTreeSet<String>,
    error: Option<CkptError>,
}

impl RestoreVisitor<'_> {
    /// Looks up `name`, marks it consumed, and hands it to `apply`; records
    /// the first error and turns all later visits into no-ops.
    fn with_entry(
        &mut self,
        name: &str,
        expected: &'static str,
        apply: impl FnOnce(&StateValue, &str) -> Result<(), CkptError>,
    ) {
        if self.error.is_some() {
            return;
        }
        let full = self.scope.qualify(name);
        match self.dict.get(&full) {
            None => self.error = Some(CkptError::MissingEntry { name: full }),
            Some(value) => {
                self.consumed.insert(full.clone());
                if let Err(e) = apply(value, &full) {
                    let _ = expected;
                    self.error = Some(e);
                }
            }
        }
    }

    fn wrong_kind(name: &str, expected: &'static str) -> CkptError {
        CkptError::WrongKind {
            name: name.to_string(),
            expected,
        }
    }
}

fn restore_tensor(target: &mut Tensor, found: &Tensor, name: &str) -> Result<(), CkptError> {
    if target.shape() != found.shape() {
        return Err(CkptError::ShapeMismatch {
            name: name.to_string(),
            expected: target.shape().to_vec(),
            found: found.shape().to_vec(),
        });
    }
    target.data_mut().copy_from_slice(found.data());
    Ok(())
}

impl StateVisitor for RestoreVisitor<'_> {
    fn enter(&mut self, scope: &str) {
        self.scope.parts.push(scope.to_string());
    }
    fn exit(&mut self) {
        self.scope.parts.pop().expect("exit without matching enter");
    }
    fn tensor(&mut self, name: &str, value: &mut Tensor) {
        self.with_entry(name, "tensor", |v, full| match v {
            StateValue::Tensor(t) => restore_tensor(value, t, full),
            _ => Err(RestoreVisitor::wrong_kind(full, "tensor")),
        });
    }
    fn opt_tensor(&mut self, name: &str, value: &mut Option<Tensor>) {
        if self.error.is_some() {
            return;
        }
        let full = self.scope.qualify(name);
        match self.dict.get(&full) {
            None => *value = None,
            Some(StateValue::Tensor(t)) => {
                self.consumed.insert(full);
                *value = Some(t.clone());
            }
            Some(_) => self.error = Some(RestoreVisitor::wrong_kind(&full, "tensor")),
        }
    }
    fn tensor_seq(&mut self, name: &str, value: &mut Vec<Tensor>) {
        self.with_entry(name, "tensor list", |v, full| match v {
            StateValue::TensorSeq(ts) => {
                *value = ts.clone();
                Ok(())
            }
            _ => Err(RestoreVisitor::wrong_kind(full, "tensor list")),
        });
    }
    fn scalar_u64(&mut self, name: &str, value: &mut u64) {
        self.with_entry(name, "u64", |v, full| match v {
            StateValue::U64(x) => {
                *value = *x;
                Ok(())
            }
            _ => Err(RestoreVisitor::wrong_kind(full, "u64")),
        });
    }
    fn scalar_f32(&mut self, name: &str, value: &mut f32) {
        self.with_entry(name, "f32", |v, full| match v {
            StateValue::F32(x) => {
                *value = *x;
                Ok(())
            }
            _ => Err(RestoreVisitor::wrong_kind(full, "f32")),
        });
    }
    fn u32s(&mut self, name: &str, value: &mut Vec<u32>) {
        self.with_entry(name, "u32 list", |v, full| match v {
            StateValue::U32s(xs) => {
                *value = xs.clone();
                Ok(())
            }
            _ => Err(RestoreVisitor::wrong_kind(full, "u32 list")),
        });
    }
    fn f32s(&mut self, name: &str, value: &mut Vec<f32>) {
        self.with_entry(name, "f32 list", |v, full| match v {
            StateValue::F32s(xs) => {
                *value = xs.clone();
                Ok(())
            }
            _ => Err(RestoreVisitor::wrong_kind(full, "f32 list")),
        });
    }
    fn bytes(&mut self, name: &str, value: &mut Vec<u8>) {
        self.with_entry(name, "byte string", |v, full| match v {
            StateValue::Bytes(bs) => {
                *value = bs.clone();
                Ok(())
            }
            _ => Err(RestoreVisitor::wrong_kind(full, "byte string")),
        });
    }
    fn invalid(&mut self, name: &str, why: String) {
        if self.error.is_none() {
            self.error = Some(CkptError::Corrupt {
                context: format!("state entry `{}`: {why}", self.scope.qualify(name)),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy checkpointable object exercising every entry kind and nesting.
    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        w: Tensor,
        cache: Option<Tensor>,
        slots: Vec<Tensor>,
        step: u64,
        lr: f32,
        settings: Vec<u32>,
        running: Vec<f32>,
        blob: Vec<u8>,
    }

    impl Toy {
        fn filled() -> Self {
            Toy {
                w: Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 3.5, 0.0, f32::MIN, 1e-40]),
                cache: Some(Tensor::from_vec(vec![1, 2], vec![9.0, -9.0])),
                slots: vec![Tensor::zeros(vec![4]), Tensor::full(vec![2, 2], 7.0)],
                step: 123_456_789_000,
                lr: 0.05,
                settings: vec![2, 4, 2],
                running: vec![0.25, -1.5],
                blob: vec![0xDE, 0xAD],
            }
        }

        fn blank() -> Self {
            Toy {
                w: Tensor::zeros(vec![2, 3]),
                cache: None,
                slots: Vec::new(),
                step: 0,
                lr: 0.0,
                settings: Vec::new(),
                running: Vec::new(),
                blob: Vec::new(),
            }
        }
    }

    impl VisitState for Toy {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            v.enter("inner");
            v.tensor("w", &mut self.w);
            v.opt_tensor("cache", &mut self.cache);
            v.exit();
            v.tensor_seq("slots", &mut self.slots);
            v.scalar_u64("step", &mut self.step);
            v.scalar_f32("lr", &mut self.lr);
            v.u32s("settings", &mut self.settings);
            v.f32s("running", &mut self.running);
            v.bytes("blob", &mut self.blob);
        }
    }

    #[test]
    fn capture_restore_roundtrip_is_exact() {
        let mut original = Toy::filled();
        let dict = capture_state(&mut original);
        assert_eq!(dict.get("inner/w").map(StateValue::kind), Some("tensor"));
        let encoded = dict.to_bytes();
        let decoded = StateDict::from_bytes(&encoded).unwrap();
        assert_eq!(decoded, dict);
        let mut restored = Toy::blank();
        restore_state(&mut restored, &decoded).unwrap();
        assert_eq!(restored, original);
    }

    #[test]
    fn absent_optional_tensor_restores_to_none() {
        let mut original = Toy::filled();
        original.cache = None;
        let dict = capture_state(&mut original);
        let mut restored = Toy::filled(); // starts with Some
        restore_state(&mut restored, &dict).unwrap();
        assert_eq!(restored.cache, None);
    }

    #[test]
    fn missing_entry_is_a_typed_error() {
        let full = capture_state(&mut Toy::filled());
        let mut dict = StateDict::new();
        for (name, value) in full.iter().filter(|(n, _)| *n != "step") {
            dict.insert(name.to_string(), value.clone());
        }
        let err = restore_state(&mut Toy::blank(), &dict).unwrap_err();
        assert!(matches!(err, CkptError::MissingEntry { name } if name == "step"));
    }

    #[test]
    fn kind_mismatch_is_a_typed_error() {
        let mut dict = capture_state(&mut Toy::filled());
        dict.insert("step".into(), StateValue::F32(1.0));
        let err = restore_state(&mut Toy::blank(), &dict).unwrap_err();
        assert!(matches!(err, CkptError::WrongKind { .. }));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let mut dict = capture_state(&mut Toy::filled());
        dict.insert(
            "inner/w".into(),
            StateValue::Tensor(Tensor::zeros(vec![3, 2])),
        );
        let err = restore_state(&mut Toy::blank(), &dict).unwrap_err();
        assert!(matches!(err, CkptError::ShapeMismatch { .. }));
    }

    #[test]
    fn unvisited_entries_are_a_typed_error() {
        let mut dict = capture_state(&mut Toy::filled());
        dict.insert("stray".into(), StateValue::U64(1));
        let err = restore_state(&mut Toy::blank(), &dict).unwrap_err();
        assert!(matches!(err, CkptError::UnconsumedEntries { names } if names == ["stray"]));
    }

    #[test]
    fn nan_payloads_roundtrip_bit_exactly() {
        let mut dict = StateDict::new();
        let bits = [f32::NAN.to_bits(), 0xFFC0_0001, 0x7F80_0000, 0x8000_0000];
        dict.insert(
            "weird".into(),
            StateValue::Tensor(Tensor::from_vec(
                vec![4],
                bits.iter().map(|&b| f32::from_bits(b)).collect(),
            )),
        );
        let decoded = StateDict::from_bytes(&dict.to_bytes()).unwrap();
        match decoded.get("weird").unwrap() {
            StateValue::Tensor(t) => {
                let got: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, bits);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn dict_truncations_error_not_panic() {
        let bytes = capture_state(&mut Toy::filled()).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                StateDict::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn unknown_kind_tag_is_rejected() {
        let mut dict = StateDict::new();
        dict.insert("x".into(), StateValue::U64(1));
        let mut bytes = dict.to_bytes();
        // The kind tag sits right after the 4-byte count, 4-byte name
        // length and 1-byte name.
        bytes[4 + 4 + 1] = 250;
        assert!(matches!(
            StateDict::from_bytes(&bytes),
            Err(CkptError::Corrupt { .. })
        ));
    }
}
