//! Property-based tests for the tensor substrate: GEMM algebra, im2col
//! adjointness, pooling invariants.

use fast_tensor::{
    col2im, col_sums, conv2d, global_avg_pool, im2col, im2row, matmul, matmul_bt, matmul_nt,
    matmul_tn, max_pool2d, row_sums, Conv2dDims, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(vec![rows, cols], v))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn gemm_transpose_identity(
        a in tensor_strategy(4, 6),
        b in tensor_strategy(6, 3),
    ) {
        let left = matmul(&a, &b).transpose2();
        let right = matmul(&b.transpose2(), &a.transpose2());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul_nt and matmul_tn agree with explicit transposition.
    #[test]
    fn transposed_variants_agree(
        a in tensor_strategy(5, 7),
        b in tensor_strategy(4, 7),
        c in tensor_strategy(5, 3),
    ) {
        let nt = matmul_nt(&a, &b);
        let explicit = matmul(&a, &b.transpose2());
        for (x, y) in nt.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let tn = matmul_tn(&a, &c);
        let explicit2 = matmul(&a.transpose2(), &c);
        for (x, y) in tn.data().iter().zip(explicit2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// GEMM is linear in its left operand: (A1 + A2)·B = A1·B + A2·B.
    #[test]
    fn gemm_is_linear(
        a1 in tensor_strategy(3, 5),
        a2 in tensor_strategy(3, 5),
        b in tensor_strategy(5, 4),
    ) {
        let mut a_sum = a1.clone();
        a_sum.add_assign(&a2);
        let lhs = matmul(&a_sum, &b);
        let mut rhs = matmul(&a1, &b);
        rhs.add_assign(&matmul(&a2, &b));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// <im2col(x), y> = <x, col2im(y)> — adjointness, the backbone of the
    /// convolution backward pass.
    #[test]
    fn im2col_col2im_adjoint(
        x_data in prop::collection::vec(-1.0f32..1.0, 2 * 2 * 6 * 6),
        y_seed in 0u64..1000,
    ) {
        let d = Conv2dDims {
            batch: 2, in_c: 2, in_h: 6, in_w: 6, out_c: 1, kernel: 3, stride: 1, pad: 1,
        };
        let x = Tensor::from_vec(vec![2, 2, 6, 6], x_data);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(y_seed);
        let y = Tensor::from_vec(
            vec![d.k_dim(), d.p_dim()],
            (0..d.k_dim() * d.p_dim()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let ax = im2col(&x, d);
        let aty = col2im(&y, d);
        let lhs: f64 = ax.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = x.data().iter().zip(aty.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// im2row is exactly im2col transposed, for random geometries.
    #[test]
    fn im2row_is_im2col_transposed(
        x_data in prop::collection::vec(-1.0f32..1.0, 2 * 3 * 6 * 6),
        kernel in 1usize..=3,
        stride in 1usize..=2,
        pad in 0usize..=1,
    ) {
        prop_assume!(6 + 2 * pad >= kernel);
        let d = Conv2dDims {
            batch: 2, in_c: 3, in_h: 6, in_w: 6, out_c: 1, kernel, stride, pad,
        };
        let x = Tensor::from_vec(vec![2, 3, 6, 6], x_data);
        prop_assert_eq!(im2row(&x, d), im2col(&x, d).transpose2());
    }

    /// matmul_bt replays matmul's exact summation trees from the transposed
    /// layout: results are bit-identical across shapes spanning the 4-row
    /// micro-kernel remainder, the 32-column tile boundary and the 8-wide
    /// reduction blocking, with exact zeros present (quantized operands are
    /// sparse, and the kernels skip zero blocks).
    #[test]
    fn matmul_bt_is_bit_identical_to_matmul(
        m in 1usize..=9,
        k in 1usize..=40,
        n in 1usize..=40,
        seed in 0u64..=u64::MAX,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| if rng.gen_range(0u8..4) == 0 { 0.0 } else { rng.gen_range(-2.0f32..2.0) })
                .collect()
        };
        let a = Tensor::from_vec(vec![m, k], fill(m * k));
        let b = Tensor::from_vec(vec![k, n], fill(k * n));
        let want = matmul(&a, &b);
        let got = matmul_bt(&a, &b.transpose2());
        for (x, y) in want.data().iter().zip(got.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Convolution with a 1×1 all-ones kernel sums channels.
    #[test]
    fn conv_1x1_ones_sums_channels(
        x_data in prop::collection::vec(-1.0f32..1.0, 3 * 4 * 4),
    ) {
        let d = Conv2dDims {
            batch: 1, in_c: 3, in_h: 4, in_w: 4, out_c: 1, kernel: 1, stride: 1, pad: 0,
        };
        let x = Tensor::from_vec(vec![1, 3, 4, 4], x_data);
        let w = Tensor::full(vec![1, 3, 1, 1], 1.0);
        let out = conv2d(&x, &w, d);
        for p in 0..16 {
            let want: f32 = (0..3).map(|c| x.data()[c * 16 + p]).sum();
            prop_assert!((out.data()[p] - want).abs() < 1e-5);
        }
    }

    /// Max pooling never invents values and dominates the average.
    #[test]
    fn max_pool_bounds(x_data in prop::collection::vec(-5.0f32..5.0, 4 * 4)) {
        let x = Tensor::from_vec(vec![1, 1, 4, 4], x_data);
        let pooled = max_pool2d(&x, 2);
        let max_in = x.data().iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        for &v in pooled.output.data() {
            prop_assert!(v <= max_in);
            prop_assert!(x.data().contains(&v));
        }
        let gap = global_avg_pool(&x);
        let pooled_max = pooled.output.data().iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        prop_assert!(gap.data()[0] <= pooled_max + 1e-6);
    }

    /// Row/col sums are consistent with the total.
    #[test]
    fn sums_are_consistent(t in tensor_strategy(5, 7)) {
        let total: f64 = t.data().iter().map(|&v| v as f64).sum();
        let by_rows: f64 = row_sums(&t).iter().map(|&v| v as f64).sum();
        let by_cols: f64 = col_sums(&t).iter().map(|&v| v as f64).sum();
        prop_assert!((total - by_rows).abs() < 1e-3);
        prop_assert!((total - by_cols).abs() < 1e-3);
    }
}

proptest! {
    /// Threaded GEMMs are bit-identical to sequential ones for every worker
    /// count and all three orientations: row panels are sharded at the
    /// micro-kernel granularity, and each output element accumulates its
    /// products in the same order no matter how many workers run.
    #[test]
    fn threaded_matmul_is_bit_identical_to_sequential(
        m in 1usize..=64,
        k in 32usize..=96,
        n in 32usize..=96,
        seed in 0u64..=u64::MAX,
        workers in 2usize..=9,
    ) {
        let a = tensor_from_seed(vec![m, k], seed);
        let b = tensor_from_seed(vec![k, n], seed ^ 0x9E37_79B9);
        let bt = tensor_from_seed(vec![n, k], seed ^ 0x517C_C1B7);
        let at = tensor_from_seed(vec![k, m], seed ^ 0x2545_F491);
        let saved = fast_tensor::parallelism();
        fast_tensor::set_parallelism(fast_tensor::Parallelism::sequential());
        let s_nn = matmul(&a, &b);
        let s_nt = matmul_nt(&a, &bt);
        let s_tn = matmul_tn(&at, &b);
        fast_tensor::set_parallelism(fast_tensor::Parallelism::new(workers));
        let t_nn = matmul(&a, &b);
        let t_nt = matmul_nt(&a, &bt);
        let t_tn = matmul_tn(&at, &b);
        fast_tensor::set_parallelism(saved);
        for (x, y) in s_nn.data().iter().zip(t_nn.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in s_nt.data().iter().zip(t_nt.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in s_tn.data().iter().zip(t_tn.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

fn tensor_from_seed(shape: Vec<usize>, seed: u64) -> Tensor {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
    )
}
