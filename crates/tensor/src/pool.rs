//! Pooling operators (max pooling with saved argmax, global average
//! pooling) with exact backward passes.

use crate::tensor::Tensor;

/// Output of [`max_pool2d`]: pooled values plus the flat input index of the
/// winning element per output cell, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled NCHW tensor `(batch, c, H/k, W/k)`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of the
    /// max element.
    pub argmax: Vec<usize>,
}

/// Non-overlapping `k×k` max pooling (stride = kernel).
///
/// # Panics
///
/// Panics if the spatial dims are not divisible by `k` or input is not 4-D.
pub fn max_pool2d(input: &Tensor, k: usize) -> MaxPoolOutput {
    assert_eq!(input.rank(), 4, "max_pool2d requires NCHW input");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert!(
        k > 0 && h % k == 0 && w % k == 0,
        "pool kernel {k} must divide {h}x{w}"
    );
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(vec![b, c, oh, ow]);
    let mut argmax = vec![0usize; b * c * oh * ow];
    let id = input.data();
    let od = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..k {
                        for dx in 0..k {
                            let idx = base + (oy * k + dy) * w + (ox * k + dx);
                            if id[idx] > best {
                                best = id[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oi = ((bi * c + ci) * oh + oy) * ow + ox;
                    od[oi] = best;
                    argmax[oi] = best_idx;
                }
            }
        }
    }
    MaxPoolOutput {
        output: out,
        argmax,
    }
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input element that won the forward max.
///
/// # Panics
///
/// Panics if `grad_output.numel() != pool.argmax.len()`.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    pool: &MaxPoolOutput,
    input_shape: &[usize],
) -> Tensor {
    assert_eq!(
        grad_output.numel(),
        pool.argmax.len(),
        "grad/argmax length mismatch"
    );
    let mut grad_in = Tensor::zeros(input_shape.to_vec());
    let gd = grad_output.data();
    let gi = grad_in.data_mut();
    for (g, &idx) in gd.iter().zip(&pool.argmax) {
        gi[idx] += g;
    }
    grad_in
}

/// Global average pooling: NCHW `(b, c, h, w)` → `(b, c)`.
///
/// # Panics
///
/// Panics if input is not rank 4.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4, "global_avg_pool requires NCHW input");
    let (b, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(vec![b, c]);
    let id = input.data();
    let od = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * h * w;
            let sum: f32 = id[base..base + h * w].iter().sum();
            od[bi * c + ci] = sum / hw;
        }
    }
    out
}

/// Backward pass of [`global_avg_pool`]: spreads each channel gradient
/// uniformly over the spatial positions.
///
/// # Panics
///
/// Panics if `grad_output` is not `(b, c)` matching `input_shape`.
pub fn global_avg_pool_backward(grad_output: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(input_shape.len(), 4);
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    assert_eq!(
        grad_output.shape(),
        &[b, c],
        "grad_output must be (batch, channels)"
    );
    let hw = (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_shape.to_vec());
    let gd = grad_output.data();
    let gi = grad_in.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            let g = gd[bi * c + ci] / hw;
            let base = (bi * c + ci) * h * w;
            for v in &mut gi[base..base + h * w] {
                *v = g;
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maxima() {
        let input = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let p = max_pool2d(&input, 2);
        assert_eq!(p.output.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let p = max_pool2d(&input, 2);
        let g = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]);
        let gi = max_pool2d_backward(&g, &p, input.shape());
        assert_eq!(gi.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn max_pool_numeric_gradient() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let data: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let input = Tensor::from_vec(vec![2, 1, 4, 4], data);
        let p = max_pool2d(&input, 2);
        let ones = Tensor::full(vec![2, 1, 2, 2], 1.0);
        let gi = max_pool2d_backward(&ones, &p, input.shape());
        let eps = 1e-3f32;
        for idx in [0usize, 5, 17, 31] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let lp: f32 = max_pool2d(&ip, 2).output.data().iter().sum();
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let lm: f32 = max_pool2d(&im, 2).output.data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gi.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let input = Tensor::from_vec(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let out = global_avg_pool(&input);
        assert_eq!(out.data(), &[2.5, 10.0]);
        let g = Tensor::from_vec(vec![1, 2], vec![4.0, 8.0]);
        let gi = global_avg_pool_backward(&g, input.shape());
        assert_eq!(gi.data(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_pool_panics() {
        let input = Tensor::zeros(vec![1, 1, 5, 4]);
        let _ = max_pool2d(&input, 2);
    }
}
