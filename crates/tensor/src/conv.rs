//! Convolution lowered onto GEMM via im2col (paper Fig 3's matrix view).
//!
//! A convolution layer's three training computations all become GEMMs over
//! the im2col matrix `cols` of shape `K × P` with `K = C·k·k` (reduction
//! dim) and `P = B·OH·OW` (output positions):
//!
//! * forward:        `O (O_c×P)  = W (O_c×K) · cols (K×P)`
//! * weight gradient: `∇W (O_c×K) = ∇O (O_c×P) · colsᵀ`
//! * input gradient:  `∇cols (K×P) = Wᵀ · ∇O`, then [`col2im`].

use crate::matmul::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution with square kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dDims {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl Conv2dDims {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// GEMM reduction dimension `K = C·k·k`.
    pub fn k_dim(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// GEMM position dimension `P = B·OH·OW`.
    pub fn p_dim(&self) -> usize {
        self.batch * self.out_h() * self.out_w()
    }

    fn validate(&self) {
        assert!(
            self.kernel > 0 && self.stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            self.in_h + 2 * self.pad >= self.kernel && self.in_w + 2 * self.pad >= self.kernel,
            "kernel {k} larger than padded input {h}x{w}",
            k = self.kernel,
            h = self.in_h + 2 * self.pad,
            w = self.in_w + 2 * self.pad
        );
    }
}

/// Unfolds an NCHW `input` into the im2col matrix of shape `(K, P)`.
///
/// # Panics
///
/// Panics if `input` is not `(batch, in_c, in_h, in_w)`.
pub fn im2col(input: &Tensor, d: Conv2dDims) -> Tensor {
    let _span = fast_telemetry::span!("tensor.im2col");
    d.validate();
    assert_eq!(
        input.shape(),
        &[d.batch, d.in_c, d.in_h, d.in_w],
        "input shape does not match conv dims"
    );
    let (oh, ow) = (d.out_h(), d.out_w());
    let k_dim = d.k_dim();
    let p_dim = d.p_dim();
    let mut cols = vec![0.0f32; k_dim * p_dim];
    let id = input.data();
    for b in 0..d.batch {
        for c in 0..d.in_c {
            for kh in 0..d.kernel {
                for kw in 0..d.kernel {
                    let krow = (c * d.kernel + kh) * d.kernel + kw;
                    for oy in 0..oh {
                        let iy = (oy * d.stride + kh) as isize - d.pad as isize;
                        if iy < 0 || iy >= d.in_h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        let img_row = &id[((b * d.in_c + c) * d.in_h + iy) * d.in_w..][..d.in_w];
                        let col_row = &mut cols[krow * p_dim + (b * oh + oy) * ow..][..ow];
                        if d.stride == 1 {
                            // Unit stride: source and destination both advance
                            // one element per output x, so the in-bounds run
                            // is a single contiguous copy.
                            let shift = kw as isize - d.pad as isize;
                            let ox_lo = (-shift).max(0) as usize;
                            let ox_hi = (d.in_w as isize - shift).clamp(0, ow as isize) as usize;
                            if ox_lo < ox_hi {
                                let src_lo = (ox_lo as isize + shift) as usize;
                                col_row[ox_lo..ox_hi]
                                    .copy_from_slice(&img_row[src_lo..src_lo + (ox_hi - ox_lo)]);
                            }
                        } else {
                            for (ox, col) in col_row.iter_mut().enumerate() {
                                let ix = (ox * d.stride + kw) as isize - d.pad as isize;
                                if ix < 0 || ix >= d.in_w as isize {
                                    continue;
                                }
                                *col = img_row[ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![k_dim, p_dim], cols)
}

/// Unfolds an NCHW `input` into the transposed im2col matrix of shape
/// `(P, K)`: row `p` is the flattened `C·k·k` patch feeding output position
/// `p`, contiguous in memory.
///
/// This is [`im2col`] with the axes swapped (`im2row(x, d)` equals
/// `im2col(x, d).transpose2()`). The layout pairs with [`matmul_bt`]: for
/// narrow-`P` GEMMs (small batches at inference) the patch-contiguous rows
/// turn the forward GEMM into cache-friendly dot products, and quantization
/// groups that ran *down* an im2col column run *along* an im2row row — the
/// same value groups, on the faster `AlongRow` kernel path.
///
/// [`matmul_bt`]: crate::matmul_bt
///
/// # Panics
///
/// Panics if `input` is not `(batch, in_c, in_h, in_w)`.
pub fn im2row(input: &Tensor, d: Conv2dDims) -> Tensor {
    let _span = fast_telemetry::span!("tensor.im2row");
    d.validate();
    assert_eq!(
        input.shape(),
        &[d.batch, d.in_c, d.in_h, d.in_w],
        "input shape does not match conv dims"
    );
    let (oh, ow) = (d.out_h(), d.out_w());
    let k_dim = d.k_dim();
    let p_dim = d.p_dim();
    let mut rows = vec![0.0f32; p_dim * k_dim];
    let id = input.data();
    for b in 0..d.batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let patch = &mut rows[((b * oh + oy) * ow + ox) * k_dim..][..k_dim];
                for c in 0..d.in_c {
                    for kh in 0..d.kernel {
                        let iy = (oy * d.stride + kh) as isize - d.pad as isize;
                        if iy < 0 || iy >= d.in_h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        let img_row = &id[((b * d.in_c + c) * d.in_h + iy) * d.in_w..][..d.in_w];
                        let patch_row = &mut patch[(c * d.kernel + kh) * d.kernel..][..d.kernel];
                        let shift = (ox * d.stride) as isize - d.pad as isize;
                        let kw_lo = (-shift).max(0) as usize;
                        let kw_hi = (d.in_w as isize - shift).clamp(0, d.kernel as isize) as usize;
                        if kw_lo < kw_hi {
                            // The kw run maps to consecutive image pixels.
                            let src = (kw_lo as isize + shift) as usize;
                            patch_row[kw_lo..kw_hi]
                                .copy_from_slice(&img_row[src..src + (kw_hi - kw_lo)]);
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![p_dim, k_dim], rows)
}

/// Folds an im2col-shaped gradient `(K, P)` back to an NCHW tensor, summing
/// contributions of overlapping patches (the adjoint of [`im2col`]).
///
/// # Panics
///
/// Panics if `cols` is not `(K, P)` for the given dims.
pub fn col2im(cols: &Tensor, d: Conv2dDims) -> Tensor {
    let _span = fast_telemetry::span!("tensor.col2im");
    d.validate();
    assert_eq!(
        cols.shape(),
        &[d.k_dim(), d.p_dim()],
        "cols shape does not match conv dims"
    );
    let (oh, ow) = (d.out_h(), d.out_w());
    let p_dim = d.p_dim();
    let mut out = Tensor::zeros(vec![d.batch, d.in_c, d.in_h, d.in_w]);
    let od = out.data_mut();
    let cd = cols.data();
    for b in 0..d.batch {
        for c in 0..d.in_c {
            for kh in 0..d.kernel {
                for kw in 0..d.kernel {
                    let krow = (c * d.kernel + kh) * d.kernel + kw;
                    for oy in 0..oh {
                        let iy = (oy * d.stride + kh) as isize - d.pad as isize;
                        if iy < 0 || iy >= d.in_h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * d.stride + kw) as isize - d.pad as isize;
                            if ix < 0 || ix >= d.in_w as isize {
                                continue;
                            }
                            let p = (b * oh + oy) * ow + ox;
                            od[((b * d.in_c + c) * d.in_h + iy) * d.in_w + ix as usize] +=
                                cd[krow * p_dim + p];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Convolution forward pass: returns the NCHW output
/// `(batch, out_c, OH, OW)`.
///
/// `weight` is `(out_c, in_c, k, k)`; flattened row-major this is exactly
/// the `O_c × K` GEMM operand.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d(input: &Tensor, weight: &Tensor, d: Conv2dDims) -> Tensor {
    let cols = im2col(input, d);
    conv2d_from_cols(&cols, weight, d)
}

/// Forward pass when the caller has already built (and possibly quantized)
/// the im2col matrix.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_from_cols(cols: &Tensor, weight: &Tensor, d: Conv2dDims) -> Tensor {
    assert_eq!(
        weight.shape(),
        &[d.out_c, d.in_c, d.kernel, d.kernel],
        "weight shape does not match conv dims"
    );
    let w_mat = weight.clone().reshape(vec![d.out_c, d.k_dim()]);
    let out_mat = matmul(&w_mat, cols); // (out_c, P)
    gemm_out_to_nchw(&out_mat, d)
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input, NCHW.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the weights, `(out_c, in_c, k, k)`.
    pub grad_weight: Tensor,
}

/// Convolution backward pass from an NCHW `grad_output`.
///
/// `cols` must be the im2col matrix used in the forward pass (quantized or
/// not — the caller controls fidelity); `weight` likewise.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(
    grad_output: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    d: Conv2dDims,
) -> ConvGrads {
    let (oh, ow) = (d.out_h(), d.out_w());
    assert_eq!(grad_output.shape(), &[d.batch, d.out_c, oh, ow]);
    let g_mat = nchw_to_gemm_out(grad_output, d); // (out_c, P)
    let w_mat = weight.clone().reshape(vec![d.out_c, d.k_dim()]);
    // ∇W = ∇O · colsᵀ  (reduction over P).
    let grad_w = matmul_nt(&g_mat, cols).reshape(vec![d.out_c, d.in_c, d.kernel, d.kernel]);
    // ∇cols = Wᵀ · ∇O  (reduction over out_c).
    let grad_cols = matmul_tn(&w_mat, &g_mat);
    let grad_input = col2im(&grad_cols, d);
    ConvGrads {
        grad_input,
        grad_weight: grad_w,
    }
}

/// Reorders a `(out_c, P)` GEMM result into NCHW `(batch, out_c, OH, OW)`.
///
/// # Panics
///
/// Panics if `out_mat` is not `(out_c, P)` for the given dims.
pub fn gemm_out_to_nchw(out_mat: &Tensor, d: Conv2dDims) -> Tensor {
    assert_eq!(
        out_mat.shape(),
        &[d.out_c, d.p_dim()],
        "GEMM output shape mismatch"
    );
    let (oh, ow) = (d.out_h(), d.out_w());
    let p_dim = d.p_dim();
    let hw = oh * ow;
    // For a fixed (o, b) pair both layouts are contiguous over (y, x), and
    // batch-major iteration emits the NCHW buffer in order: plane copies
    // into an uninitialized buffer, no zero fill.
    let mut data = Vec::with_capacity(d.batch * d.out_c * hw);
    let md = out_mat.data();
    for b in 0..d.batch {
        for o in 0..d.out_c {
            data.extend_from_slice(&md[o * p_dim + b * hw..][..hw]);
        }
    }
    Tensor::from_vec(vec![d.batch, d.out_c, oh, ow], data)
}

/// Reorders an NCHW gradient into the `(out_c, P)` GEMM layout.
///
/// # Panics
///
/// Panics if `g` is not `(batch, out_c, OH, OW)` for the given dims.
pub fn nchw_to_gemm_out(g: &Tensor, d: Conv2dDims) -> Tensor {
    assert_eq!(
        g.shape(),
        &[d.batch, d.out_c, d.out_h(), d.out_w()],
        "NCHW shape mismatch"
    );
    let (oh, ow) = (d.out_h(), d.out_w());
    let p_dim = d.p_dim();
    let hw = oh * ow;
    // The adjoint reordering of [`gemm_out_to_nchw`]: plane copies, emitted
    // in channel-major order so the output buffer is built sequentially.
    let mut out = Vec::with_capacity(d.out_c * p_dim);
    let gd = g.data();
    for o in 0..d.out_c {
        for b in 0..d.batch {
            out.extend_from_slice(&gd[(b * d.out_c + o) * hw..][..hw]);
        }
    }
    Tensor::from_vec(vec![d.out_c, p_dim], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    /// Direct (quadruple-loop) convolution reference.
    fn conv_ref(input: &Tensor, weight: &Tensor, d: Conv2dDims) -> Tensor {
        let (oh, ow) = (d.out_h(), d.out_w());
        let mut out = Tensor::zeros(vec![d.batch, d.out_c, oh, ow]);
        for b in 0..d.batch {
            for o in 0..d.out_c {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = 0.0f32;
                        for c in 0..d.in_c {
                            for kh in 0..d.kernel {
                                for kw in 0..d.kernel {
                                    let iy = (y * d.stride + kh) as isize - d.pad as isize;
                                    let ix = (x * d.stride + kw) as isize - d.pad as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= d.in_h as isize
                                        || ix >= d.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += input.at4(b, c, iy as usize, ix as usize)
                                        * weight.at4(o, c, kh, kw);
                                }
                            }
                        }
                        let i = ((b * d.out_c + o) * oh + y) * ow + x;
                        out.data_mut()[i] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv_matches_direct_reference() {
        for (stride, pad, k) in [(1, 0, 1), (1, 1, 3), (2, 1, 3), (1, 2, 5)] {
            let d = Conv2dDims {
                batch: 2,
                in_c: 3,
                in_h: 8,
                in_w: 8,
                out_c: 4,
                kernel: k,
                stride,
                pad,
            };
            let input = rand_tensor(vec![2, 3, 8, 8], 1);
            let weight = rand_tensor(vec![4, 3, k, k], 2);
            let got = conv2d(&input, &weight, d);
            let want = conv_ref(&input, &weight, d);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.data().iter().zip(want.data()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{a} vs {b} (k={k} s={stride} p={pad})"
                );
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property that makes the conv backward pass correct.
        let d = Conv2dDims {
            batch: 1,
            in_c: 2,
            in_h: 6,
            in_w: 6,
            out_c: 1,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let x = rand_tensor(vec![1, 2, 6, 6], 3);
        let y = rand_tensor(vec![d.k_dim(), d.p_dim()], 4);
        let ax = im2col(&x, d);
        let aty = col2im(&y, d);
        let lhs: f64 = ax
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(aty.data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let d = Conv2dDims {
            batch: 1,
            in_c: 2,
            in_h: 5,
            in_w: 5,
            out_c: 3,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let input = rand_tensor(vec![1, 2, 5, 5], 5);
        let weight = rand_tensor(vec![3, 2, 3, 3], 6);
        // Loss = sum(conv output); then dL/dout = ones.
        let cols = im2col(&input, d);
        let ones = Tensor::full(vec![1, 3, d.out_h(), d.out_w()], 1.0);
        let grads = conv2d_backward(&ones, &cols, &weight, d);

        let eps = 1e-3f32;
        // Check a scattering of weight coordinates.
        for idx in [0usize, 7, 20, 35, 53] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let lp: f32 = conv2d(&input, &wp, d).data().iter().sum();
            let lm: f32 = conv2d(&input, &wm, d).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_weight.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "weight[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // And input coordinates.
        for idx in [0usize, 11, 24, 49] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let lp: f32 = conv2d(&ip, &weight, d).data().iter().sum();
            let lm: f32 = conv2d(&im, &weight, d).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_input.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "input[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn output_geometry() {
        let d = Conv2dDims {
            batch: 1,
            in_c: 1,
            in_h: 7,
            in_w: 9,
            out_c: 1,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(d.out_h(), 4);
        assert_eq!(d.out_w(), 5);
        assert_eq!(d.k_dim(), 9);
        assert_eq!(d.p_dim(), 20);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with identity channel mixing.
        let d = Conv2dDims {
            batch: 1,
            in_c: 2,
            in_h: 4,
            in_w: 4,
            out_c: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input = rand_tensor(vec![1, 2, 4, 4], 9);
        let mut weight = Tensor::zeros(vec![2, 2, 1, 1]);
        weight.data_mut()[0] = 1.0; // out0 <- in0
        weight.data_mut()[3] = 1.0; // out1 <- in1
        let out = conv2d(&input, &weight, d);
        assert_eq!(out.data(), input.data());
    }
}
