//! Integer-domain GEMM kernels over packed×packed BFP operand pairs.
//!
//! This is the execution mode the paper's cost argument is about
//! (DESIGN.md §11): when both operands are [`PackedMat`]s whose
//! quantization groups run along the reduction dimension, the product
//! factors per group pair
//!
//! ```text
//! C[i,j] = Σ_seg  (sA(i,seg) · sB(seg,j)) · Σ_{p∈seg} manA[i,p] · manB[p,j]
//! ```
//!
//! so the inner sum is an exact `i8×i8→i32` integer dot product and the f32
//! work collapses to one scale multiply-accumulate per reduction segment —
//! no dequantized panels are ever materialized. The kernels here implement
//! that algebra with explicit AVX2 SIMD (`_mm256_madd_epi16`) and a portable
//! scalar fallback chosen by runtime feature detection; both paths produce
//! **bit-identical** results because the integer partial sums are exact in
//! any association and the f32 fix-up applies the same three operations
//! (`scale-product mul`, `i32→f32 convert + mul`, `add`) per segment in the
//! same ascending-segment order. `.cargo/config.toml` notes why this holds:
//! Rust never contracts separate mul/add into an FMA.
//!
//! The only inexact steps are the per-segment `i32 → f32` conversion (exact
//! while `|acc| < 2²⁴`, i.e. for reduction segments up to 128 values at
//! `m ≤ 7`) and the cross-segment f32 accumulation — which runs in a
//! *different* association than the replay kernels' summation trees, so
//! integer-domain results legitimately diverge from [`ExecMode::Replay`] by
//! a few ULPs (see `crates/nn/tests/integer_mode.rs` for the error gates).
//!
//! [`PackedMat`]: crate::qgemm::PackedMat
//! [`ExecMode::Replay`]: crate::qgemm::ExecMode::Replay
#![allow(unsafe_code)]

use crate::parallel::shard_rows;
use crate::qgemm::{PackedMat, MAX_INT_SEGMENT};
use crate::tensor::Tensor;

/// True when every reduction segment of a `k`-deep product with group sizes
/// `ga`/`gb` fits the exact-i32 bound [`MAX_INT_SEGMENT`]. Segment length is
/// capped by the smaller group (and by `k` itself when groups are wider than
/// the whole reduction).
pub(crate) fn segment_bound_ok(k: usize, ga: usize, gb: usize) -> bool {
    ga.min(gb).min(k.max(1)) <= MAX_INT_SEGMENT
}

/// Reduction segments of a `k`-deep dot product: maximal runs that stay
/// inside one A-group and one B-group. `(start, len, a_block, b_block)`.
/// With `ga == gb == g` this is exactly the block list `[i·g, (i+1)·g)`.
fn segments(k: usize, ga: usize, gb: usize) -> Vec<(usize, usize, usize, usize)> {
    let mut segs = Vec::with_capacity(k.div_ceil(ga.min(gb).max(1)));
    let mut s = 0;
    while s < k {
        let e = ((s / ga + 1) * ga).min((s / gb + 1) * gb).min(k);
        segs.push((s, e - s, s / ga, s / gb));
        s = e;
    }
    segs
}

/// An operand whose scale blocks run along its storage rows: row-major
/// `rows × k` mantissas plus row-major `rows × bpr` scales
/// (`bpr = ceil(k / g)` blocks per row).
struct RowSide<'a> {
    man: &'a [i8],
    scale: &'a [f32],
    bpr: usize,
}

impl<'a> RowSide<'a> {
    /// Views a `RowGroups`-packed matrix (groups along the reduction dim).
    fn of(p: &'a PackedMat) -> Self {
        RowSide {
            man: p.mantissas(),
            scale: p.scales(),
            bpr: p.cols().div_ceil(p.group()).max(1),
        }
    }
}

/// An operand whose scale blocks run down its storage columns: row-major
/// `k × n` mantissas plus row-major `nblocks × n` scales.
struct ColSide<'a> {
    man: &'a [i8],
    scale: &'a [f32],
}

// ---------------------------------------------------------------------------
// NN: A (m×k, RowGroups) · B (k×n, ColGroups).
// ---------------------------------------------------------------------------

/// `C = A·B` in the integer domain. Caller guarantees reduction-grouped
/// layouts and [`segment_bound_ok`].
pub(crate) fn int_nn(a: &PackedMat, b: &PackedMat) -> Tensor {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    debug_assert_eq!(b.rows(), k);
    nn_from_parts(
        &RowSide::of(a),
        a.group(),
        &ColSide {
            man: b.mantissas(),
            scale: b.scales(),
        },
        b.group(),
        (m, k, n),
    )
}

fn nn_from_parts(
    a: &RowSide,
    ga: usize,
    b: &ColSide,
    gb: usize,
    dims: (usize, usize, usize),
) -> Tensor {
    let (m, k, n) = dims;
    let mut out = vec![0.0f32; m * n];
    if m > 0 && n > 0 && k > 0 && !nn_avx2(a, b, ga, gb, dims, &mut out) {
        nn_scalar(a, b, ga, gb, dims, &mut out);
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Portable NN kernel over arbitrary (possibly unequal) group sizes. For
/// equal even groups this is element-for-element the same computation as
/// the AVX2 kernel: the per-segment integer sums are exact, and the f32
/// fix-up applies `acc += (sa·sb) · (iacc as f32)` per segment in ascending
/// order, exactly like the vector code.
fn nn_scalar(
    a: &RowSide,
    b: &ColSide,
    ga: usize,
    gb: usize,
    dims: (usize, usize, usize),
    out: &mut [f32],
) {
    let (_m, k, n) = dims;
    let segs = segments(k, ga, gb);
    shard_rows(out, n, 2 * k * n, 1, |row_start, panel| {
        let mut iacc = vec![0i32; n];
        for (ri, c_row) in panel.chunks_mut(n).enumerate() {
            let i = row_start + ri;
            let arow = &a.man[i * k..i * k + k];
            let arsc = &a.scale[i * a.bpr..(i + 1) * a.bpr];
            for &(s0, len, ab, bb) in &segs {
                iacc.iter_mut().for_each(|x| *x = 0);
                for (p, &av) in arow[s0..s0 + len].iter().enumerate() {
                    let av = av as i32;
                    if av != 0 {
                        let brow = &b.man[(s0 + p) * n..(s0 + p) * n + n];
                        for (x, &bv) in iacc.iter_mut().zip(brow) {
                            *x += av * bv as i32;
                        }
                    }
                }
                let sa = arsc[ab];
                let srow = &b.scale[bb * n..bb * n + n];
                for ((c, &x), &sb) in c_row.iter_mut().zip(&iacc).zip(srow) {
                    *c += (sa * sb) * x as f32;
                }
            }
        }
    });
}

/// Runs the AVX2 NN kernel when the operand pair supports it (equal even
/// group sizes — so `madd` k-pairs never straddle a scale block — on a CPU
/// with AVX2). Returns `false` to fall back to [`nn_scalar`].
#[cfg(target_arch = "x86_64")]
fn nn_avx2(
    a: &RowSide,
    b: &ColSide,
    ga: usize,
    gb: usize,
    dims: (usize, usize, usize),
    out: &mut [f32],
) -> bool {
    let (m, k, n) = dims;
    if ga != gb || !ga.is_multiple_of(2) || !avx2_available() {
        return false;
    }
    let stage = avx2::NnStage::build(a, b, ga, (m, k, n));
    shard_rows(out, n, 2 * k * n, avx2::ROW_QUAD, |row_start, panel| {
        // SAFETY: `avx2_available()` confirmed the target feature at runtime.
        unsafe { avx2::nn_worker(&stage, row_start, panel) }
    });
    true
}

#[cfg(not(target_arch = "x86_64"))]
fn nn_avx2(
    _a: &RowSide,
    _b: &ColSide,
    _ga: usize,
    _gb: usize,
    _dims: (usize, usize, usize),
    _out: &mut [f32],
) -> bool {
    false
}

// ---------------------------------------------------------------------------
// NT / BT: A (m×k, RowGroups) · Bᵀ with B stored n×k RowGroups. Every output
// element is a sum of per-segment dot products over two contiguous i8 rows,
// so the SIMD lever is a straight madd dot; integer exactness makes the
// vector and scalar dots interchangeable bit-for-bit.
// ---------------------------------------------------------------------------

/// `C = A·Bᵀ` in the integer domain (also serves BT: same storage contract).
pub(crate) fn int_nt(a: &PackedMat, b: &PackedMat) -> Tensor {
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    debug_assert_eq!(b.cols(), k);
    let (av, bv) = (RowSide::of(a), RowSide::of(b));
    let segs = segments(k, a.group(), b.group());
    let mut out = vec![0.0f32; m * n];
    if m > 0 && n > 0 {
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            nt_core(&Avx2Dot, &av, &bv, &segs, (k, n), &mut out);
            return Tensor::from_vec(vec![m, n], out);
        }
        nt_core(&ScalarDot, &av, &bv, &segs, (k, n), &mut out);
    }
    Tensor::from_vec(vec![m, n], out)
}

fn nt_core<D: Dot>(
    d: &D,
    a: &RowSide,
    b: &RowSide,
    segs: &[(usize, usize, usize, usize)],
    kn: (usize, usize),
    out: &mut [f32],
) {
    let (k, n) = kn;
    shard_rows(out, n, 2 * k * n, 1, |row_start, panel| {
        for (ri, c_row) in panel.chunks_mut(n).enumerate() {
            let i = row_start + ri;
            let arow = &a.man[i * k..i * k + k];
            let arsc = &a.scale[i * a.bpr..(i + 1) * a.bpr];
            for (j, c) in c_row.iter_mut().enumerate() {
                let brow = &b.man[j * k..j * k + k];
                let brsc = &b.scale[j * b.bpr..(j + 1) * b.bpr];
                let mut acc = 0.0f32;
                for &(s0, len, ab, bb) in segs {
                    let ia = d.dot(&arow[s0..s0 + len], &brow[s0..s0 + len]);
                    acc += (arsc[ab] * brsc[bb]) * ia as f32;
                }
                *c = acc;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// TN: Aᵀ·B with A stored k×m ColGroups, B stored k×n ColGroups. A's
// mantissas and scales are staged transposed (an exact relayout — integer
// and scale data are copied, never recomputed), then the NN kernels run.
// ---------------------------------------------------------------------------

/// `C = Aᵀ·B` in the integer domain.
pub(crate) fn int_tn(a: &PackedMat, b: &PackedMat) -> Tensor {
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    debug_assert_eq!(b.rows(), k);
    let ga = a.group();
    let nba = k.div_ceil(ga).max(1);
    let (am, asc) = (a.mantissas(), a.scales());
    let mut tman = vec![0i8; m * k];
    for (p, src) in am.chunks_exact(m.max(1)).enumerate().take(k) {
        for (i, &v) in src.iter().enumerate() {
            tman[i * k + p] = v;
        }
    }
    let mut tsc = vec![0.0f32; m * nba];
    for (bb, src) in asc.chunks_exact(m.max(1)).enumerate().take(nba) {
        for (i, &s) in src.iter().enumerate() {
            tsc[i * nba + bb] = s;
        }
    }
    nn_from_parts(
        &RowSide {
            man: &tman,
            scale: &tsc,
            bpr: nba,
        },
        ga,
        &ColSide {
            man: b.mantissas(),
            scale: b.scales(),
        },
        b.group(),
        (m, k, n),
    )
}

// ---------------------------------------------------------------------------
// Segment dot products. Both implementations compute the mathematically
// exact i32 sum (the per-segment operand bound is enforced by
// `segment_bound_ok`), so swapping them never changes a result bit.
// ---------------------------------------------------------------------------

trait Dot: Sync {
    fn dot(&self, a: &[i8], b: &[i8]) -> i32;
}

struct ScalarDot;

impl Dot for ScalarDot {
    #[inline]
    fn dot(&self, a: &[i8], b: &[i8]) -> i32 {
        a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
    }
}

#[cfg(target_arch = "x86_64")]
struct Avx2Dot;

#[cfg(target_arch = "x86_64")]
impl Dot for Avx2Dot {
    #[inline]
    fn dot(&self, a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: constructed only behind `avx2_available()`.
        unsafe { avx2::dot_i8(a, b) }
    }
}

/// Runtime AVX2 detection, cached. The kernels themselves are compiled for
/// whatever `-C target-cpu` allows; this gate is what makes the binary safe
/// on older x86-64 silicon.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The SIMD lowering of the segment algebra. One `_mm256_madd_epi16`
    //! computes, for eight output columns at once, the sum of an adjacent
    //! k-pair's products `a[k₀]·b[k₀][j] + a[k₁]·b[k₁][j]` — i16×i16→i32 is
    //! exact for 8-bit mantissas, and pairing never crosses a scale block
    //! because the NN vector path requires an even shared group size.

    use super::{ColSide, RowSide};
    use core::arch::x86_64::*;

    /// Output columns processed per staged panel step (two 256-bit i16
    /// vectors per k-pair).
    const W: usize = 16;
    /// Output rows per register block; also the shard granule so the row
    /// decomposition is identical for every worker count.
    pub(super) const ROW_QUAD: usize = 4;

    /// Operands restaged for the vector NN kernel. Built once on the caller
    /// thread (the restage is deterministic and shared read-only by all
    /// workers):
    ///
    /// * `aq` — A mantissas as little-endian i16 k-pairs, one `u32` per
    ///   pair: `a[2p] | a[2p+1] << 16`, rows padded with a zero high half
    ///   when `k` is odd.
    /// * `bp` — B mantissas interleaved by k-pair: row `p` holds
    ///   `[b[2p][j], b[2p+1][j]]` for each column `j`, zero-padded to a
    ///   16-column multiple so tail panels can use full vector loads.
    /// * `sp` — B scale rows padded to the same 16-column multiple.
    pub(super) struct NnStage<'a> {
        aq: Vec<u32>,
        bp: Vec<i16>,
        sp: Vec<f32>,
        ascale: &'a [f32],
        abpr: usize,
        pairs: usize,
        pairs_per_block: usize,
        nblocks: usize,
        npad: usize,
        n: usize,
    }

    impl<'a> NnStage<'a> {
        pub(super) fn build(
            a: &RowSide<'a>,
            b: &ColSide,
            g: usize,
            dims: (usize, usize, usize),
        ) -> Self {
            let (m, k, n) = dims;
            let pairs = k.div_ceil(2);
            let nblocks = k.div_ceil(g).max(1);
            let npad = n.div_ceil(W) * W;

            let mut aq = vec![0u32; m * pairs];
            for (arow, qrow) in a.man.chunks_exact(k).zip(aq.chunks_exact_mut(pairs)) {
                let mut it = arow.chunks_exact(2);
                for (q, pr) in qrow.iter_mut().zip(&mut it) {
                    *q = (pr[0] as i16 as u16 as u32) | ((pr[1] as i16 as u16 as u32) << 16);
                }
                if let [last] = it.remainder() {
                    qrow[pairs - 1] = *last as i16 as u16 as u32;
                }
            }

            let mut bp = vec![0i16; pairs * 2 * npad];
            for (p, row) in bp.chunks_exact_mut(2 * npad).enumerate() {
                let k0 = 2 * p;
                let b0 = &b.man[k0 * n..k0 * n + n];
                if k0 + 1 < k {
                    let b1 = &b.man[(k0 + 1) * n..(k0 + 1) * n + n];
                    for ((d, &x), &y) in row.chunks_exact_mut(2).zip(b0).zip(b1) {
                        d[0] = x as i16;
                        d[1] = y as i16;
                    }
                } else {
                    for (d, &x) in row.chunks_exact_mut(2).zip(b0) {
                        d[0] = x as i16;
                    }
                }
            }

            let mut sp = vec![0.0f32; nblocks * npad];
            for (srow, dst) in b.scale.chunks_exact(n).zip(sp.chunks_exact_mut(npad)) {
                dst[..n].copy_from_slice(srow);
            }

            NnStage {
                aq,
                bp,
                sp,
                ascale: a.scale,
                abpr: a.bpr,
                pairs,
                pairs_per_block: g / 2,
                nblocks,
                npad,
                n,
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by the caller via `avx2_available`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn nn_worker(s: &NnStage, row_start: usize, panel: &mut [f32]) {
        let rows = panel.len() / s.n;
        let mut ri = 0;
        while ri + ROW_QUAD <= rows {
            nn_rows::<ROW_QUAD>(
                s,
                row_start + ri,
                &mut panel[ri * s.n..(ri + ROW_QUAD) * s.n],
            );
            ri += ROW_QUAD;
        }
        while ri < rows {
            nn_rows::<1>(s, row_start + ri, &mut panel[ri * s.n..(ri + 1) * s.n]);
            ri += 1;
        }
    }

    /// `R` output rows (absolute row `i0`) across all column panels.
    #[target_feature(enable = "avx2")]
    unsafe fn nn_rows<const R: usize>(s: &NnStage, i0: usize, c: &mut [f32]) {
        let n = s.n;
        let mut j0 = 0;
        while j0 < n {
            let w = (n - j0).min(W);
            let mut acc = [[_mm256_setzero_ps(); 2]; R];
            for bb in 0..s.nblocks {
                let p0 = bb * s.pairs_per_block;
                let p1 = ((bb + 1) * s.pairs_per_block).min(s.pairs);
                let mut iacc = [[_mm256_setzero_si256(); 2]; R];
                for p in p0..p1 {
                    let brow = s.bp.as_ptr().add(p * 2 * s.npad + 2 * j0);
                    let bv0 = _mm256_loadu_si256(brow as *const __m256i);
                    let bv1 = _mm256_loadu_si256(brow.add(W) as *const __m256i);
                    for (r, ir) in iacc.iter_mut().enumerate() {
                        let av = _mm256_set1_epi32(s.aq[(i0 + r) * s.pairs + p] as i32);
                        ir[0] = _mm256_add_epi32(ir[0], _mm256_madd_epi16(av, bv0));
                        ir[1] = _mm256_add_epi32(ir[1], _mm256_madd_epi16(av, bv1));
                    }
                }
                let srow = s.sp.as_ptr().add(bb * s.npad + j0);
                let sb0 = _mm256_loadu_ps(srow);
                let sb1 = _mm256_loadu_ps(srow.add(8));
                for (r, ar) in acc.iter_mut().enumerate() {
                    let sa = _mm256_set1_ps(s.ascale[(i0 + r) * s.abpr + bb]);
                    let f0 = _mm256_mul_ps(_mm256_mul_ps(sa, sb0), _mm256_cvtepi32_ps(iacc[r][0]));
                    let f1 = _mm256_mul_ps(_mm256_mul_ps(sa, sb1), _mm256_cvtepi32_ps(iacc[r][1]));
                    ar[0] = _mm256_add_ps(ar[0], f0);
                    ar[1] = _mm256_add_ps(ar[1], f1);
                }
            }
            if w == W {
                for (r, ar) in acc.iter().enumerate() {
                    let dst = c.as_mut_ptr().add(r * n + j0);
                    _mm256_storeu_ps(dst, ar[0]);
                    _mm256_storeu_ps(dst.add(8), ar[1]);
                }
            } else {
                let mut tmp = [0.0f32; W];
                for (r, ar) in acc.iter().enumerate() {
                    _mm256_storeu_ps(tmp.as_mut_ptr(), ar[0]);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(8), ar[1]);
                    c[r * n + j0..r * n + j0 + w].copy_from_slice(&tmp[..w]);
                }
            }
            j0 += w;
        }
    }

    /// Exact i32 dot product of two i8 slices (the NT/BT segment kernel):
    /// sixteen-wide `cvtepi8_epi16` + `madd` blocks, scalar remainder,
    /// horizontal sum. Integer addition is associative, so this equals
    /// `ScalarDot` bit-for-bit.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (checked by the caller via `avx2_available`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let mut vacc = _mm256_setzero_si256();
        let mut p = 0;
        while p + 16 <= a.len() {
            let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p) as *const __m128i));
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p) as *const __m128i));
            vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(av, bv));
            p += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vacc);
        let mut s: i32 = lanes.iter().sum();
        for (&x, &y) in a[p..].iter().zip(&b[p..]) {
            s += x as i32 * y as i32;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgemm::{qmatmul_ex, qmatmul_nt_ex, qmatmul_tn_ex, ExecMode, Operand, PackLayout};
    use rand::{Rng, SeedableRng};

    fn random_pack(
        rows: usize,
        cols: usize,
        group: usize,
        layout: PackLayout,
        seed: u64,
    ) -> PackedMat {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mans: Vec<i8> = (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    0
                } else {
                    rng.gen_range(-127..=127)
                }
            })
            .collect();
        let n_scales = match layout {
            PackLayout::RowGroups => rows * cols.div_ceil(group).max(1),
            PackLayout::ColGroups => rows.div_ceil(group).max(1) * cols,
        };
        let scales: Vec<f32> = (0..n_scales)
            .map(|_| {
                if rng.gen_bool(0.08) {
                    0.0
                } else {
                    2.0f32.powi(rng.gen_range(-12..4))
                }
            })
            .collect();
        PackedMat::new(rows, cols, group, layout, mans, scales)
    }

    /// f64 reference over the dequantized values — the "what the math says"
    /// answer both execution modes approximate.
    fn reference(a: &PackedMat, b: &PackedMat, tn: bool, nt: bool) -> Vec<f64> {
        let (m, k, n) = if tn {
            (a.cols(), a.rows(), b.cols())
        } else if nt {
            (a.rows(), a.cols(), b.rows())
        } else {
            (a.rows(), a.cols(), b.cols())
        };
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    let av = if tn { a.value(p, i) } else { a.value(i, p) } as f64;
                    let bv = if nt { b.value(j, p) } else { b.value(p, j) } as f64;
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn assert_close(got: &Tensor, want: &[f64], tag: &str) {
        let scale = want.iter().fold(1e-30f64, |s, v| s.max(v.abs()));
        for (i, (&g, &w)) in got.data().iter().zip(want).enumerate() {
            let err = (g as f64 - w).abs() / scale;
            assert!(err < 1e-5, "{tag} elem {i}: got {g}, want {w}, rel {err}");
        }
    }

    // Shapes crossing the 16-column panel, the 4-row quad, odd k (pair
    // padding), and single-row/column edges.
    const SHAPES: [(usize, usize, usize); 6] = [
        (4, 32, 32),
        (1, 9, 40),
        (7, 13, 2),
        (9, 40, 33),
        (5, 47, 17),
        (8, 64, 70),
    ];

    #[test]
    fn nn_matches_f64_reference() {
        for (m, k, n) in SHAPES {
            for g in [2usize, 6, 16] {
                let a = random_pack(m, k, g, PackLayout::RowGroups, 7 + m as u64 + g as u64);
                let b = random_pack(k, n, g, PackLayout::ColGroups, 9 + n as u64 + g as u64);
                let got = qmatmul_ex(ExecMode::Integer, Operand::Packed(&a), Operand::Packed(&b));
                assert_close(
                    &got,
                    &reference(&a, &b, false, false),
                    &format!("nn ({m},{k},{n}) g={g}"),
                );
            }
        }
    }

    #[test]
    fn nn_mixed_and_odd_groups_use_the_scalar_path() {
        for (ga, gb) in [(3usize, 3usize), (4, 8), (5, 7), (16, 2)] {
            let a = random_pack(6, 24, ga, PackLayout::RowGroups, 31 + ga as u64);
            let b = random_pack(24, 19, gb, PackLayout::ColGroups, 37 + gb as u64);
            let got = qmatmul_ex(ExecMode::Integer, Operand::Packed(&a), Operand::Packed(&b));
            assert_close(
                &got,
                &reference(&a, &b, false, false),
                &format!("nn ga={ga} gb={gb}"),
            );
        }
    }

    #[test]
    fn nt_and_tn_match_f64_reference() {
        for (m, k, n) in SHAPES {
            let a = random_pack(m, k, 16, PackLayout::RowGroups, 41 + m as u64);
            let bt = random_pack(n, k, 16, PackLayout::RowGroups, 43 + n as u64);
            let got = qmatmul_nt_ex(ExecMode::Integer, Operand::Packed(&a), Operand::Packed(&bt));
            assert_close(
                &got,
                &reference(&a, &bt, false, true),
                &format!("nt ({m},{k},{n})"),
            );

            let at = random_pack(k, m, 16, PackLayout::ColGroups, 47 + m as u64);
            let b = random_pack(k, n, 16, PackLayout::ColGroups, 53 + n as u64);
            let got = qmatmul_tn_ex(ExecMode::Integer, Operand::Packed(&at), Operand::Packed(&b));
            assert_close(
                &got,
                &reference(&at, &b, true, false),
                &format!("tn ({m},{k},{n})"),
            );
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn scalar_and_simd_nn_agree_bitwise() {
        if !avx2_available() {
            return; // vector path unreachable on this host
        }
        for (m, k, n) in SHAPES {
            let a = random_pack(m, k, 16, PackLayout::RowGroups, 61 + m as u64);
            let b = random_pack(k, n, 16, PackLayout::ColGroups, 67 + n as u64);
            let via_dispatch = int_nn(&a, &b); // takes the AVX2 path
            let mut scalar = vec![0.0f32; m * n];
            nn_scalar(
                &RowSide::of(&a),
                &ColSide {
                    man: b.mantissas(),
                    scale: b.scales(),
                },
                16,
                16,
                (m, k, n),
                &mut scalar,
            );
            assert_eq!(
                via_dispatch.data(),
                &scalar[..],
                "simd/scalar divergence at ({m},{k},{n})"
            );
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn scalar_and_simd_segment_dots_agree() {
        if !avx2_available() {
            return;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let a: Vec<i8> = (0..len).map(|_| rng.gen_range(-127..=127)).collect();
            let b: Vec<i8> = (0..len).map(|_| rng.gen_range(-127..=127)).collect();
            assert_eq!(ScalarDot.dot(&a, &b), Avx2Dot.dot(&a, &b), "len {len}");
        }
    }

    #[test]
    fn worker_count_does_not_change_bits() {
        use crate::parallel::{parallelism, set_parallelism, Parallelism};
        let saved = parallelism();
        let a = random_pack(37, 96, 16, PackLayout::RowGroups, 81);
        let b = random_pack(96, 41, 16, PackLayout::ColGroups, 83);
        let bt = random_pack(41, 96, 16, PackLayout::RowGroups, 85);
        set_parallelism(Parallelism::sequential());
        let s1 = int_nn(&a, &b);
        let s2 = int_nt(&a, &bt);
        for workers in [2, 5, 8] {
            set_parallelism(Parallelism::new(workers));
            assert_eq!(int_nn(&a, &b), s1, "nn workers={workers}");
            assert_eq!(int_nt(&a, &bt), s2, "nt workers={workers}");
        }
        set_parallelism(saved);
    }

    #[test]
    fn segment_decomposition_is_exact() {
        assert_eq!(segments(8, 4, 4), vec![(0, 4, 0, 0), (4, 4, 1, 1)]);
        assert_eq!(
            segments(10, 4, 6),
            vec![(0, 4, 0, 0), (4, 2, 1, 0), (6, 2, 1, 1), (8, 2, 2, 1)]
        );
        assert_eq!(segments(3, 8, 8), vec![(0, 3, 0, 0)]);
        assert!(segments(0, 4, 4).is_empty());
        assert!(segment_bound_ok(1 << 20, 128, 16));
        assert!(!segment_bound_ok(1 << 20, 1 << 20, 1 << 20));
    }
}
