//! Dense f32 tensor substrate for the FAST reproduction.
//!
//! Implements the matrix computations of DNN training described in paper
//! Section II-B / Fig 3: the forward GEMM `O = A·W`, the backward GEMMs
//! `∇A = ∇O·Wᵀ` and `∇W = Aᵀ·∇O`, plus the im2col machinery that lowers
//! convolutions onto those GEMMs, pooling, reductions and initializers.
//!
//! The substrate is deliberately plain `f32` + row-major `Vec` storage:
//! quantization is applied *to the operand matrices* by `fast-nn` before
//! GEMMs run, which — as established in `fast-bfp` — is bit-faithful to the
//! fMAC's integer-multiply / FP32-accumulate pipeline.
//!
//! The GEMM kernels are register-tiled and thread-sharded with
//! worker-count-independent results (DESIGN.md §7); [`matmul_bt`] and
//! [`im2row`] are the inference-serving variants that replay the training
//! kernels' exact arithmetic from transposed layouts (DESIGN.md §8). The
//! [`qgemm`] module runs the same kernels over packed-BFP operands (`i8`
//! mantissas + per-group scales) without materializing the dequantized f32
//! copy, bit-identical to the dense composition (DESIGN.md §9).
//!
//! ```
//! use fast_tensor::{matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
//! ```

// `deny` rather than `forbid`: the integer-domain kernels in `qgemm_int`
// carry a module-scoped allowance for the `core::arch` AVX2 intrinsics
// (each unsafe block documents its safety contract); everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod init;
mod matmul;
mod parallel;
mod pool;
pub mod qgemm;
mod qgemm_int;
mod reduce;
mod tensor;

pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_from_cols, gemm_out_to_nchw, im2col, im2row,
    nchw_to_gemm_out, Conv2dDims, ConvGrads,
};
pub use init::{kaiming_normal, uniform_init};
pub use matmul::{matmul, matmul_bt, matmul_nt, matmul_tn};
pub use parallel::{parallelism, set_parallelism, Parallelism};
pub use pool::{
    global_avg_pool, global_avg_pool_backward, max_pool2d, max_pool2d_backward, MaxPoolOutput,
};
pub use qgemm::ExecMode;
pub use reduce::{argmax, col_sums, mean, row_sums, sum};
pub use tensor::Tensor;
