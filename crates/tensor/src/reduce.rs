//! Reductions and small utilities used across layers and metrics.

use crate::tensor::Tensor;

/// Sum of all elements (f64 accumulator).
pub fn sum(t: &Tensor) -> f64 {
    t.data().iter().map(|&v| v as f64).sum()
}

/// Mean of all elements.
pub fn mean(t: &Tensor) -> f64 {
    sum(t) / t.numel() as f64
}

/// Column sums of a rank-2 tensor: returns a vector of length `cols`.
///
/// Used for bias gradients (`∇b = Σ_batch ∇O`).
///
/// # Panics
///
/// Panics if `t` is not rank 2.
pub fn col_sums(t: &Tensor) -> Vec<f32> {
    assert_eq!(t.rank(), 2, "col_sums requires a rank-2 tensor");
    let (r, c) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; c];
    for i in 0..r {
        let row = &t.data()[i * c..(i + 1) * c];
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

/// Row sums of a rank-2 tensor: returns a vector of length `rows`.
///
/// # Panics
///
/// Panics if `t` is not rank 2.
pub fn row_sums(t: &Tensor) -> Vec<f32> {
    assert_eq!(t.rank(), 2, "row_sums requires a rank-2 tensor");
    let (r, c) = (t.shape()[0], t.shape()[1]);
    (0..r)
        .map(|i| t.data()[i * c..(i + 1) * c].iter().sum())
        .collect()
}

/// Index of the maximum element in a slice (first on ties).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0usize;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(sum(&t), 10.0);
        assert_eq!(mean(&t), 2.5);
    }

    #[test]
    fn col_and_row_sums() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(col_sums(&t), vec![5., 7., 9.]);
        assert_eq!(row_sums(&t), vec![6., 15.]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1., 3., 3., 2.]), 1);
        assert_eq!(argmax(&[-5.]), 0);
    }
}
