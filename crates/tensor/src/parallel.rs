//! Worker-pool configuration and row sharding for the GEMM kernels.
//!
//! The kernels in [`crate::matmul`] split their output into contiguous row
//! panels and fan the panels out over scoped [`std::thread`] workers. Each
//! output element is produced by exactly one worker with the same
//! accumulation order as the sequential kernel, so results are bit-identical
//! for every worker count (`crates/tensor/tests/proptests.rs` pins this);
//! `Parallelism::sequential()` simply keeps everything on the caller's
//! thread. Quantization under the serialized LFSR noise source stays
//! sequential either way — its stochastic-rounding bit stream is consumed
//! in a single deterministic order regardless of this setting — while
//! counter-mode stochastic rounding shards across this same pool with
//! bit-identical results for every worker count (DESIGN.md §12).

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads the tensor kernels may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
}

impl Parallelism {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Parallelism {
            workers: workers.max(1),
        }
    }

    /// Single-threaded execution — today's sequential kernels.
    pub fn sequential() -> Self {
        Parallelism { workers: 1 }
    }

    /// One worker per available hardware thread (the default).
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// 0 = unset (resolve to the environment / [`Parallelism::available`] on
/// first use).
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by the GEMM kernels.
pub fn set_parallelism(p: Parallelism) {
    WORKERS.store(p.workers(), Ordering::Relaxed);
}

/// The default worker count when [`set_parallelism`] has not been called:
/// the `FAST_TENSOR_WORKERS` environment variable if set to a positive
/// integer (`FAST_TENSOR_WORKERS=1 cargo test` runs the whole suite
/// sequentially — the CI leg that pins worker-count independence end to
/// end), otherwise one worker per available hardware thread.
fn default_parallelism() -> Parallelism {
    static ENV: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let env = *ENV.get_or_init(|| {
        std::env::var("FAST_TENSOR_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0)
    });
    if env > 0 {
        Parallelism::new(env)
    } else {
        Parallelism::available()
    }
}

/// The current process-wide parallelism setting.
pub fn parallelism() -> Parallelism {
    match WORKERS.load(Ordering::Relaxed) {
        0 => default_parallelism(),
        n => Parallelism::new(n),
    }
}

/// Minimum per-worker share of multiply-accumulates before a GEMM is worth
/// sharding (thread spawn/join costs ~10µs; this is ~50µs of MACs).
const MIN_FLOPS_PER_WORKER: usize = 1 << 17;

/// Runs `work(row_start, panel)` over contiguous `row_len`-wide panels of
/// `out`, sharded across the configured workers. `flops_per_row` sizes the
/// job: small GEMMs run inline on the caller's thread. Panel splits are
/// aligned to `granule` rows so a kernel's row-blocking decomposition — and
/// therefore its per-element arithmetic — is identical for every worker
/// count.
pub(crate) fn shard_rows<F>(
    out: &mut [f32],
    row_len: usize,
    flops_per_row: usize,
    granule: usize,
    work: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.len().checked_div(row_len).unwrap_or(0);
    let max_useful = if flops_per_row == 0 {
        1
    } else {
        (rows * flops_per_row) / MIN_FLOPS_PER_WORKER
    };
    let workers = parallelism()
        .workers()
        .min(rows.max(1))
        .min(max_useful.max(1));
    if workers <= 1 {
        work(0, out);
        return;
    }
    let rows_per_worker = rows.div_ceil(workers).div_ceil(granule) * granule;
    std::thread::scope(|scope| {
        for (w, panel) in out.chunks_mut(rows_per_worker * row_len).enumerate() {
            let work = &work;
            scope.spawn(move || work(w * rows_per_worker, panel));
        }
    });
}
