//! Quantized-operand GEMM kernels over packed-BFP matrices.
//!
//! The fake-quantize → dense-GEMM pipeline materializes a full dequantized
//! f32 copy of every operand. These kernels consume a [`PackedMat`] —
//! integer `i8` mantissas plus per-group shared-exponent scales — directly:
//! operands stream through the caches at a quarter of the f32 footprint and
//! are dequantized on the fly into register-tile-sized scratch panels
//! (matched to the `4×32` micro-kernel of [`crate::matmul`]), never as a
//! whole tensor.
//!
//! **Bit identity.** Every kernel replays the exact per-element summation
//! tree of its dense counterpart ([`matmul`], [`matmul_nt`], [`matmul_tn`],
//! [`matmul_bt`]) — same accumulation order, same pairwise-reduction
//! shapes, same zero-coefficient skip rules in the same column regions —
//! and the dequantized value `mantissa as f32 * scale` is bit-identical to
//! what fake quantization would have written (see `fast_bfp::packed` and
//! DESIGN.md §9). A packed-operand GEMM therefore produces the same f32
//! result bits as quantize-copy + dense GEMM, for every worker count.
//!
//! Dense×dense operand pairs delegate to the dense kernels directly.
//!
//! **Execution modes.** The replay path above is the default. When both
//! operands are packed with their quantization groups along the reduction
//! dimension, the [`ExecMode::Integer`] entry points ([`qmatmul_ex`] and
//! friends) instead run the integer-domain kernels of DESIGN.md §11:
//! `i8×i8→i32` mantissa dot products with one f32 scale multiply per group
//! pair, never touching an f32 panel — the software realization of the
//! fMAC pipeline modeled by `fast_hw`'s `fmac` module. Integer-domain
//! results are a few ULPs away from replay (different cross-group f32
//! association), but remain deterministic: bit-identical across worker
//! counts, across the SIMD/scalar dispatch, and across replicas.

use crate::matmul::{matmul, matmul_bt, matmul_nt, matmul_tn, tree_dot, JB, MR, NR};
use crate::parallel::shard_rows;
use crate::qgemm_int;
use crate::tensor::Tensor;

/// How a packed×packed GEMM executes.
///
/// Both modes are deterministic (bit-identical across worker counts and
/// replicas); they differ in *which* f32 result they deterministically
/// produce. [`ExecMode::Replay`] is the default everywhere.
///
/// ```
/// use fast_tensor::qgemm::ExecMode;
/// assert_eq!(ExecMode::default(), ExecMode::Replay);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Dequantize on the fly into register-tile scratch and replay the
    /// dense kernels' exact summation trees: results are bit-identical to
    /// quantize-copy + dense GEMM (DESIGN.md §9).
    #[default]
    Replay,
    /// Integer-domain execution (DESIGN.md §11): exact `i8×i8→i32` mantissa
    /// dot products per reduction group, one f32 scale multiply-accumulate
    /// per group pair. Faster than the f32 pipeline, but the cross-group
    /// f32 accumulation runs in a different association than the replay
    /// trees, so results diverge from [`ExecMode::Replay`] by a few ULPs.
    ///
    /// Only reduction-grouped packed×packed pairs are eligible; anything
    /// else (a dense operand, groups along the wrong axis, or a group so
    /// long the i32 bound [`MAX_INT_SEGMENT`] could overflow) silently
    /// falls back to the replay path — callers never get garbage, they get
    /// the replay bits.
    Integer,
}

/// Longest reduction segment whose worst-case `i8×i8` products
/// (`127 · 127` each) are guaranteed to fit an `i32` accumulator:
/// `⌊(2³¹ − 1) / 127²⌋ = 133 152` values. Packed groups are far shorter in
/// practice (the BFP format zoo tops out at 16); pairs whose groups exceed
/// this fall back to [`ExecMode::Replay`].
pub const MAX_INT_SEGMENT: usize = (i32::MAX as usize) / (127 * 127);

/// How quantization groups (one scale each) run through a [`PackedMat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackLayout {
    /// Groups are contiguous within each row: `scale(i, j) = s[i][j / g]`.
    /// The layout of an operand quantized along its rows (reduction runs
    /// along the column index).
    RowGroups,
    /// Groups run down each column: `scale(i, j) = s[i / g][j]`. The layout
    /// of an operand quantized along its columns.
    ColGroups,
}

/// A BFP-packed row-major matrix: signed `i8` mantissas plus per-group
/// scales. The represented value at `(i, j)` is exactly
/// `mantissas[i * cols + j] as f32 * scale(i, j)`.
#[derive(Debug, Clone)]
pub struct PackedMat {
    rows: usize,
    cols: usize,
    group: usize,
    layout: PackLayout,
    mans: Vec<i8>,
    scales: Vec<f32>,
}

impl PackedMat {
    /// Wraps packed storage produced by a quantizer (e.g.
    /// `fast_bfp::packed::pack_matrix_with`).
    ///
    /// # Panics
    ///
    /// Panics if `group == 0`, `mans.len() != rows * cols`, or the scale
    /// count does not match the layout (`rows × ceil(cols/g)` for
    /// [`PackLayout::RowGroups`], `ceil(rows/g) × cols` for
    /// [`PackLayout::ColGroups`]; at least one scale slot is kept for
    /// zero-size edges).
    pub fn new(
        rows: usize,
        cols: usize,
        group: usize,
        layout: PackLayout,
        mans: Vec<i8>,
        scales: Vec<f32>,
    ) -> Self {
        assert!(group > 0, "group size must be positive");
        assert_eq!(mans.len(), rows * cols, "mantissa count mismatch");
        let want_scales = match layout {
            PackLayout::RowGroups => rows * cols.div_ceil(group).max(1),
            PackLayout::ColGroups => rows.div_ceil(group).max(1) * cols,
        };
        assert_eq!(scales.len(), want_scales, "scale count mismatch");
        PackedMat {
            rows,
            cols,
            group,
            layout,
            mans,
            scales,
        }
    }

    /// Stored row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Stored column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Values per group (one shared scale each).
    pub fn group(&self) -> usize {
        self.group
    }

    /// Which way groups run through the matrix.
    pub fn layout(&self) -> PackLayout {
        self.layout
    }

    /// The raw row-major `i8` mantissas (`rows × cols`). Quantizers bound
    /// these by the mantissa width (`|m| ≤ 127` at the 8-bit cap) — the
    /// invariant the integer-domain kernels' overflow analysis rests on.
    pub fn mantissas(&self) -> &[i8] {
        &self.mans
    }

    /// The raw per-group scales in the [`PackLayout`] order documented on
    /// [`PackedMat::new`]. Quantizers emit exact powers of two (or `0.0`
    /// for all-zero groups), so a product of two scales is itself exact —
    /// see `fast_bfp::packed`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Heap bytes held by the packed representation (mantissas + scales) —
    /// the serving working set a frozen packed weight occupies, versus
    /// `4 * rows * cols` for the dense f32 copy.
    pub fn heap_bytes(&self) -> usize {
        self.mans.len() + 4 * self.scales.len()
    }

    /// The dequantized value at `(i, j)` — bit-identical to the f32 fake
    /// quantization would have written.
    pub fn value(&self, i: usize, j: usize) -> f32 {
        let s = match self.layout {
            PackLayout::RowGroups => {
                self.scales[i * self.cols.div_ceil(self.group).max(1) + j / self.group]
            }
            PackLayout::ColGroups => self.scales[(i / self.group) * self.cols + j],
        };
        self.mans[i * self.cols + j] as f32 * s
    }

    /// Dequantizes row `i`, columns `[j0, j0 + out.len())`, into `out`.
    fn fill_row_seg(&self, i: usize, j0: usize, out: &mut [f32]) {
        let mans = &self.mans[i * self.cols + j0..i * self.cols + j0 + out.len()];
        match self.layout {
            PackLayout::RowGroups => {
                let g = self.group;
                let gpr = self.cols.div_ceil(g).max(1);
                let srow = &self.scales[i * gpr..(i + 1) * gpr];
                let mut x = 0;
                while x < out.len() {
                    let j = j0 + x;
                    let gi = j / g;
                    let run = ((gi + 1) * g - j).min(out.len() - x);
                    let s = srow[gi];
                    for (o, &mv) in out[x..x + run].iter_mut().zip(&mans[x..x + run]) {
                        *o = mv as f32 * s;
                    }
                    x += run;
                }
            }
            PackLayout::ColGroups => {
                let base = (i / self.group) * self.cols + j0;
                let srow = &self.scales[base..base + out.len()];
                for ((o, &mv), &s) in out.iter_mut().zip(mans).zip(srow) {
                    *o = mv as f32 * s;
                }
            }
        }
    }

    /// Dequantizes column `j` into `out` (length `rows`).
    fn fill_col(&self, j: usize, out: &mut [f32]) {
        match self.layout {
            PackLayout::RowGroups => {
                let gpr = self.cols.div_ceil(self.group).max(1);
                let sj = j / self.group;
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.mans[i * self.cols + j] as f32 * self.scales[i * gpr + sj];
                }
            }
            PackLayout::ColGroups => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.mans[i * self.cols + j] as f32
                        * self.scales[(i / self.group) * self.cols + j];
                }
            }
        }
    }

    /// Materializes the dense dequantized tensor (tests / fallbacks; the
    /// GEMM kernels never call this).
    pub fn to_tensor(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for (i, row) in out.chunks_mut(self.cols.max(1)).enumerate() {
            if !row.is_empty() {
                self.fill_row_seg(i, 0, row);
            }
        }
        Tensor::from_vec(vec![self.rows, self.cols], out)
    }
}

/// A GEMM operand: a dense f32 tensor or a packed-BFP matrix.
#[derive(Debug, Clone, Copy)]
pub enum Operand<'a> {
    /// Dense row-major f32 storage.
    Dense(&'a Tensor),
    /// Packed mantissa + scale storage.
    Packed(&'a PackedMat),
}

impl Operand<'_> {
    /// `(rows, cols)` of the stored matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dense operand is not rank-2.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            Operand::Dense(t) => {
                assert_eq!(t.rank(), 2, "GEMM operands must be rank-2");
                (t.shape()[0], t.shape()[1])
            }
            Operand::Packed(p) => (p.rows, p.cols),
        }
    }
}

// ---------------------------------------------------------------------------
// Operand access traits: dense storage borrows, packed storage dequantizes
// into caller scratch. `NEEDS_BUF` lets kernels skip scratch allocation on
// all-dense paths.
// ---------------------------------------------------------------------------

/// Stored-row access (contiguous runs along the storage row).
trait RowSrc: Sync {
    const NEEDS_BUF: bool;
    /// Row `i` as dequantized f32s (`buf` must hold the row width).
    fn row<'s>(&'s self, i: usize, buf: &'s mut [f32]) -> &'s [f32];
    /// Rows `i0..i0+N` (`buf` must hold `N * width()`).
    fn block<'s, const N: usize>(&'s self, i0: usize, buf: &'s mut [f32]) -> [&'s [f32]; N];
    /// Whether every stored value is finite (packed values always are).
    fn all_finite(&self) -> bool;
}

struct DenseRows<'a> {
    d: &'a [f32],
    w: usize,
}

impl RowSrc for DenseRows<'_> {
    const NEEDS_BUF: bool = false;
    #[inline]
    fn row<'s>(&'s self, i: usize, _buf: &'s mut [f32]) -> &'s [f32] {
        &self.d[i * self.w..(i + 1) * self.w]
    }
    #[inline]
    fn block<'s, const N: usize>(&'s self, i0: usize, _buf: &'s mut [f32]) -> [&'s [f32]; N] {
        std::array::from_fn(|q| &self.d[(i0 + q) * self.w..(i0 + q + 1) * self.w])
    }
    fn all_finite(&self) -> bool {
        self.d.iter().all(|v| v.is_finite())
    }
}

struct PackedRows<'a> {
    p: &'a PackedMat,
}

impl RowSrc for PackedRows<'_> {
    const NEEDS_BUF: bool = true;
    #[inline]
    fn row<'s>(&'s self, i: usize, buf: &'s mut [f32]) -> &'s [f32] {
        let w = self.p.cols;
        self.p.fill_row_seg(i, 0, &mut buf[..w]);
        &buf[..w]
    }
    #[inline]
    fn block<'s, const N: usize>(&'s self, i0: usize, buf: &'s mut [f32]) -> [&'s [f32]; N] {
        let w = self.p.cols;
        for (q, chunk) in buf[..N * w].chunks_mut(w.max(1)).take(N).enumerate() {
            self.p.fill_row_seg(i0 + q, 0, chunk);
        }
        let buf: &'s [f32] = buf;
        std::array::from_fn(|q| &buf[q * w..(q + 1) * w])
    }
    fn all_finite(&self) -> bool {
        true // packed values are sanitized finite by construction
    }
}

/// Column-panel access for the `k × n` right-hand operand of the NN/TN
/// kernels: `stage` dequantizes columns `[j0, j0+w)` of all `k` stored rows
/// into scratch once per panel; `krow` then serves row segments from it
/// (dense sources skip staging and borrow directly).
trait PanelSrc: Sync {
    const NEEDS_BUF: bool;
    fn stage(&self, j0: usize, w: usize, buf: &mut [f32]);
    fn krow<'s>(&'s self, buf: &'s [f32], kk: usize, j0: usize, w: usize) -> &'s [f32];
}

struct DensePanel<'a> {
    d: &'a [f32],
    n: usize,
}

impl PanelSrc for DensePanel<'_> {
    const NEEDS_BUF: bool = false;
    #[inline]
    fn stage(&self, _j0: usize, _w: usize, _buf: &mut [f32]) {}
    #[inline]
    fn krow<'s>(&'s self, _buf: &'s [f32], kk: usize, j0: usize, w: usize) -> &'s [f32] {
        &self.d[kk * self.n + j0..kk * self.n + j0 + w]
    }
}

struct PackedPanel<'a> {
    p: &'a PackedMat,
}

impl PanelSrc for PackedPanel<'_> {
    const NEEDS_BUF: bool = true;
    #[inline]
    fn stage(&self, j0: usize, w: usize, buf: &mut [f32]) {
        for kk in 0..self.p.rows {
            self.p.fill_row_seg(kk, j0, &mut buf[kk * w..kk * w + w]);
        }
    }
    #[inline]
    fn krow<'s>(&'s self, buf: &'s [f32], kk: usize, _j0: usize, w: usize) -> &'s [f32] {
        &buf[kk * w..kk * w + w]
    }
}

/// Stored-column access for the `ka × m` left operand of the TN kernel.
/// Both implementations stage the (strided) column into scratch; the staged
/// values are the same f32s the dense kernel reads in place.
trait ColSrc: Sync {
    fn col<'s>(&'s self, i: usize, buf: &'s mut [f32]) -> &'s [f32];
}

struct DenseCols<'a> {
    d: &'a [f32],
    m: usize,
    ka: usize,
}

impl ColSrc for DenseCols<'_> {
    #[inline]
    fn col<'s>(&'s self, i: usize, buf: &'s mut [f32]) -> &'s [f32] {
        for (kk, o) in buf[..self.ka].iter_mut().enumerate() {
            *o = self.d[kk * self.m + i];
        }
        &buf[..self.ka]
    }
}

struct PackedCols<'a> {
    p: &'a PackedMat,
}

impl ColSrc for PackedCols<'_> {
    #[inline]
    fn col<'s>(&'s self, i: usize, buf: &'s mut [f32]) -> &'s [f32] {
        let ka = self.p.rows;
        self.p.fill_col(i, &mut buf[..ka]);
        &buf[..ka]
    }
}

// ---------------------------------------------------------------------------
// Public entry points: dense×dense delegates, anything packed runs the
// staged generic kernels.
// ---------------------------------------------------------------------------

/// `C (m×n) = A (m×k) · B (k×n)` over quantized operands — bit-identical to
/// [`matmul`] on the dequantized copies.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul(a: Operand<'_>, b: Operand<'_>) -> Tensor {
    let (m, ka) = a.dims();
    let (kb, n) = b.dims();
    assert_eq!(ka, kb, "qmatmul inner dimensions disagree: {ka} vs {kb}");
    match (a, b) {
        (Operand::Dense(x), Operand::Dense(y)) => matmul(x, y),
        (Operand::Dense(x), Operand::Packed(y)) => nn_impl(
            &DenseRows { d: x.data(), w: ka },
            &PackedPanel { p: y },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Dense(y)) => nn_impl(
            &PackedRows { p: x },
            &DensePanel { d: y.data(), n },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Packed(y)) => {
            nn_impl(&PackedRows { p: x }, &PackedPanel { p: y }, m, ka, n)
        }
    }
}

/// `C (m×n) = A (m×k) · Bᵀ` with `B` stored `n×k` — bit-identical to
/// [`matmul_nt`] on the dequantized copies.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_nt(a: Operand<'_>, b: Operand<'_>) -> Tensor {
    let (m, ka) = a.dims();
    let (n, kb) = b.dims();
    assert_eq!(ka, kb, "qmatmul_nt inner dimensions disagree: {ka} vs {kb}");
    match (a, b) {
        (Operand::Dense(x), Operand::Dense(y)) => matmul_nt(x, y),
        (Operand::Dense(x), Operand::Packed(y)) => nt_impl(
            &DenseRows { d: x.data(), w: ka },
            &PackedRows { p: y },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Dense(y)) => nt_impl(
            &PackedRows { p: x },
            &DenseRows { d: y.data(), w: ka },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Packed(y)) => {
            nt_impl(&PackedRows { p: x }, &PackedRows { p: y }, m, ka, n)
        }
    }
}

/// `C (m×n) = Aᵀ · B` with `A` stored `k×m`, `B` stored `k×n` —
/// bit-identical to [`matmul_tn`] on the dequantized copies.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_tn(a: Operand<'_>, b: Operand<'_>) -> Tensor {
    let (ka, m) = a.dims();
    let (kb, n) = b.dims();
    assert_eq!(ka, kb, "qmatmul_tn inner dimensions disagree: {ka} vs {kb}");
    match (a, b) {
        (Operand::Dense(x), Operand::Dense(y)) => matmul_tn(x, y),
        (Operand::Dense(x), Operand::Packed(y)) => tn_impl(
            &DenseCols { d: x.data(), m, ka },
            &PackedPanel { p: y },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Dense(y)) => tn_impl(
            &PackedCols { p: x },
            &DensePanel { d: y.data(), n },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Packed(y)) => {
            tn_impl(&PackedCols { p: x }, &PackedPanel { p: y }, m, ka, n)
        }
    }
}

/// `C (m×n) = A (m×k) · B` with `B` supplied pre-transposed as `n×k` —
/// bit-identical to [`matmul_bt`] (and therefore to [`matmul`]) on the
/// dequantized copies.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_bt(a: Operand<'_>, b: Operand<'_>) -> Tensor {
    let (m, ka) = a.dims();
    let (n, kb) = b.dims();
    assert_eq!(ka, kb, "qmatmul_bt inner dimensions disagree: {ka} vs {kb}");
    match (a, b) {
        (Operand::Dense(x), Operand::Dense(y)) => matmul_bt(x, y),
        (Operand::Dense(x), Operand::Packed(y)) => bt_impl(
            &DenseRows { d: x.data(), w: ka },
            &PackedRows { p: y },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Dense(y)) => bt_impl(
            &PackedRows { p: x },
            &DenseRows { d: y.data(), w: ka },
            m,
            ka,
            n,
        ),
        (Operand::Packed(x), Operand::Packed(y)) => {
            bt_impl(&PackedRows { p: x }, &PackedRows { p: y }, m, ka, n)
        }
    }
}

// ---------------------------------------------------------------------------
// Mode-dispatching entry points. `ExecMode::Replay` is exactly the plain
// functions above; `ExecMode::Integer` routes eligible packed×packed pairs
// to the integer-domain kernels and silently replays everything else.
// Eligibility means the quantization groups of *both* operands run along
// the reduction dimension (so the group-scale product factors out of each
// integer segment) and the segment length respects `MAX_INT_SEGMENT`.
// ---------------------------------------------------------------------------

/// [`qmatmul`] under an explicit [`ExecMode`]. For `A (m×k) · B (k×n)` the
/// integer path needs `A` in [`PackLayout::RowGroups`] and `B` in
/// [`PackLayout::ColGroups`].
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_ex(mode: ExecMode, a: Operand<'_>, b: Operand<'_>) -> Tensor {
    if mode == ExecMode::Integer {
        if let (Operand::Packed(x), Operand::Packed(y)) = (a, b) {
            if x.layout == PackLayout::RowGroups
                && y.layout == PackLayout::ColGroups
                && x.cols == y.rows
                && qgemm_int::segment_bound_ok(x.cols, x.group, y.group)
            {
                return qgemm_int::int_nn(x, y);
            }
        }
    }
    qmatmul(a, b)
}

/// [`qmatmul_nt`] under an explicit [`ExecMode`]. For `A (m×k) · Bᵀ` with
/// `B` stored `n×k`, the integer path needs both operands in
/// [`PackLayout::RowGroups`] (both store the reduction along their rows).
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_nt_ex(mode: ExecMode, a: Operand<'_>, b: Operand<'_>) -> Tensor {
    if mode == ExecMode::Integer {
        if let (Operand::Packed(x), Operand::Packed(y)) = (a, b) {
            if x.layout == PackLayout::RowGroups
                && y.layout == PackLayout::RowGroups
                && x.cols == y.cols
                && qgemm_int::segment_bound_ok(x.cols, x.group, y.group)
            {
                return qgemm_int::int_nt(x, y);
            }
        }
    }
    qmatmul_nt(a, b)
}

/// [`qmatmul_tn`] under an explicit [`ExecMode`]. For `Aᵀ · B` with `A`
/// stored `k×m` and `B` stored `k×n`, the integer path needs both operands
/// in [`PackLayout::ColGroups`] (the reduction runs down their columns).
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_tn_ex(mode: ExecMode, a: Operand<'_>, b: Operand<'_>) -> Tensor {
    if mode == ExecMode::Integer {
        if let (Operand::Packed(x), Operand::Packed(y)) = (a, b) {
            if x.layout == PackLayout::ColGroups
                && y.layout == PackLayout::ColGroups
                && x.rows == y.rows
                && qgemm_int::segment_bound_ok(x.rows, x.group, y.group)
            {
                return qgemm_int::int_tn(x, y);
            }
        }
    }
    qmatmul_tn(a, b)
}

/// [`qmatmul_bt`] under an explicit [`ExecMode`]. Storage-wise identical to
/// [`qmatmul_nt_ex`] — in the integer domain the NT/BT distinction (which
/// dense summation tree gets replayed) vanishes, because both compute the
/// same exact integer segments.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn qmatmul_bt_ex(mode: ExecMode, a: Operand<'_>, b: Operand<'_>) -> Tensor {
    if mode == ExecMode::Integer {
        if let (Operand::Packed(x), Operand::Packed(y)) = (a, b) {
            if x.layout == PackLayout::RowGroups
                && y.layout == PackLayout::RowGroups
                && x.cols == y.cols
                && qgemm_int::segment_bound_ok(x.cols, x.group, y.group)
            {
                return qgemm_int::int_nt(x, y);
            }
        }
    }
    qmatmul_bt(a, b)
}

fn scratch(needed: bool, len: usize) -> Vec<f32> {
    if needed {
        vec![0.0f32; len]
    } else {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// NN: replay of `matmul`'s region decomposition — full 32-column register
// tiles (no zero skip), `accumulate_tail` column tails (skip), and
// `accumulate_row`'s pairwise trees on the `m % 4` remainder rows.
// ---------------------------------------------------------------------------

fn nn_impl<A: RowSrc, B: PanelSrc>(a: &A, b: &B, m: usize, k: usize, n: usize) -> Tensor {
    let mut out = vec![0.0f32; m * n];
    if n > 0 {
        shard_rows(&mut out, n, 2 * k * n, MR, |row_start, panel| {
            let rows = panel.len() / n;
            let mut bbuf = scratch(B::NEEDS_BUF, k * NR);
            let mut abuf = scratch(A::NEEDS_BUF, MR * k);
            let n_full = (n / NR) * NR;
            let mut j0 = 0;
            while j0 < n {
                let (w, full) = if j0 < n_full {
                    (NR, true)
                } else {
                    (n - n_full, false)
                };
                b.stage(j0, w, &mut bbuf);
                let mut ri = 0;
                while ri + MR <= rows {
                    let aq: [&[f32]; MR] = a.block(row_start + ri, &mut abuf);
                    let c_quad = &mut panel[ri * n..(ri + MR) * n];
                    if full {
                        nn_full_tile(&aq, b, &bbuf, j0, k, n, c_quad);
                    } else {
                        for (r, ar) in aq.iter().enumerate() {
                            nn_tail_row(
                                &mut c_quad[r * n + j0..r * n + j0 + w],
                                ar,
                                b,
                                &bbuf,
                                j0,
                                w,
                            );
                        }
                    }
                    ri += MR;
                }
                while ri < rows {
                    let ar = a.row(row_start + ri, &mut abuf);
                    nn_rem_row(
                        &mut panel[ri * n + j0..ri * n + j0 + w],
                        ar,
                        b,
                        &bbuf,
                        j0,
                        w,
                    );
                    ri += 1;
                }
                j0 += w;
            }
        });
    }
    Tensor::from_vec(vec![m, n], out)
}

/// One full `MR×NR` register tile: serial ascending-`k` chains, no skip —
/// `micro_tile`'s exact arithmetic.
#[inline]
#[allow(clippy::needless_range_loop)] // kk walks two operands in lockstep
fn nn_full_tile<B: PanelSrc>(
    aq: &[&[f32]; MR],
    b: &B,
    bbuf: &[f32],
    j0: usize,
    k: usize,
    n: usize,
    c_quad: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let brow = b.krow(bbuf, kk, j0, NR);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let ar = aq[r][kk];
            for (acc_rx, &bv) in acc_r.iter_mut().zip(brow) {
                *acc_rx += ar * bv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        for (cx, &ax) in c_quad[r * n + j0..r * n + j0 + NR].iter_mut().zip(acc_r) {
            *cx += ax;
        }
    }
}

/// Column-tail update for one full-block row: `accumulate_tail`'s serial
/// ascending-`k` loop with the `a == 0.0` skip.
#[inline]
fn nn_tail_row<B: PanelSrc>(
    c_tail: &mut [f32],
    a: &[f32],
    b: &B,
    bbuf: &[f32],
    j0: usize,
    w: usize,
) {
    for (kk, &ak) in a.iter().enumerate() {
        if ak != 0.0 {
            let brow = b.krow(bbuf, kk, j0, w);
            for (c, &bv) in c_tail.iter_mut().zip(brow) {
                *c += ak * bv;
            }
        }
    }
}

/// Remainder-row update restricted to columns `[j0, j0+w)`:
/// `accumulate_row`'s eight-wide pairwise trees and skip rules.
#[inline]
fn nn_rem_row<B: PanelSrc>(c_seg: &mut [f32], a: &[f32], b: &B, bbuf: &[f32], j0: usize, w: usize) {
    let k = a.len();
    let mut kk = 0;
    while kk + 8 <= k {
        let ab = &a[kk..kk + 8];
        if ab.iter().any(|&v| v != 0.0) {
            let b0 = b.krow(bbuf, kk, j0, w);
            let b1 = b.krow(bbuf, kk + 1, j0, w);
            let b2 = b.krow(bbuf, kk + 2, j0, w);
            let b3 = b.krow(bbuf, kk + 3, j0, w);
            let b4 = b.krow(bbuf, kk + 4, j0, w);
            let b5 = b.krow(bbuf, kk + 5, j0, w);
            let b6 = b.krow(bbuf, kk + 6, j0, w);
            let b7 = b.krow(bbuf, kk + 7, j0, w);
            for (j, c) in c_seg.iter_mut().enumerate() {
                let s01 = ab[0] * b0[j] + ab[1] * b1[j];
                let s23 = ab[2] * b2[j] + ab[3] * b3[j];
                let s45 = ab[4] * b4[j] + ab[5] * b5[j];
                let s67 = ab[6] * b6[j] + ab[7] * b7[j];
                *c += (s01 + s23) + (s45 + s67);
            }
        }
        kk += 8;
    }
    while kk < k {
        let aik = a[kk];
        if aik != 0.0 {
            let brow = b.krow(bbuf, kk, j0, w);
            for (c, &bv) in c_seg.iter_mut().zip(brow) {
                *c += aik * bv;
            }
        }
        kk += 1;
    }
}

// ---------------------------------------------------------------------------
// NT: every output element is one serial ascending-`k` dot product (no skip
// in the dense kernel), so only the staged values matter. B rows are staged
// eight at a time, A rows once per (panel, row).
// ---------------------------------------------------------------------------

fn nt_impl<A: RowSrc, B: RowSrc>(a: &A, b: &B, m: usize, k: usize, n: usize) -> Tensor {
    let mut out = vec![0.0f32; m * n];
    if n > 0 {
        shard_rows(&mut out, n, 2 * k * n, 1, |row_start, panel| {
            let mut bbuf = scratch(B::NEEDS_BUF, 2 * MR * k);
            let mut abuf = scratch(A::NEEDS_BUF, k);
            let mut j = 0;
            while j + 2 * MR <= n {
                let b8: [&[f32]; 8] = b.block(j, &mut bbuf);
                for (ri, c_row) in panel.chunks_mut(n).enumerate() {
                    let ar = a.row(row_start + ri, &mut abuf);
                    nt_chain4(&mut c_row[j..j + 4], ar, [b8[0], b8[1], b8[2], b8[3]]);
                    nt_chain4(&mut c_row[j + 4..j + 8], ar, [b8[4], b8[5], b8[6], b8[7]]);
                }
                j += 2 * MR;
            }
            if j + 4 <= n {
                let b4: [&[f32]; 4] = b.block(j, &mut bbuf);
                for (ri, c_row) in panel.chunks_mut(n).enumerate() {
                    let ar = a.row(row_start + ri, &mut abuf);
                    nt_chain4(&mut c_row[j..j + 4], ar, b4);
                }
                j += 4;
            }
            while j < n {
                let bj = b.row(j, &mut bbuf);
                for (ri, c_row) in panel.chunks_mut(n).enumerate() {
                    let ar = a.row(row_start + ri, &mut abuf);
                    let mut acc = 0.0f32;
                    for (&av, &bv) in ar.iter().zip(bj) {
                        acc += av * bv;
                    }
                    c_row[j] = acc;
                }
                j += 1;
            }
        });
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Four independent serial dot chains — `matmul_nt`'s inner block.
#[inline]
fn nt_chain4(c4: &mut [f32], ar: &[f32], b4: [&[f32]; 4]) {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (p, &av) in ar.iter().enumerate() {
        s0 += av * b4[0][p];
        s1 += av * b4[1][p];
        s2 += av * b4[2][p];
        s3 += av * b4[3][p];
    }
    c4[0] = s0;
    c4[1] = s1;
    c4[2] = s2;
    c4[3] = s3;
}

// ---------------------------------------------------------------------------
// TN: replay of `matmul_tn` — four-wide reduction blocks with the all-zero
// skip on the A column scalars, then single-`k` steps with the scalar skip.
// ---------------------------------------------------------------------------

fn tn_impl<A: ColSrc, B: PanelSrc>(a: &A, b: &B, m: usize, ka: usize, n: usize) -> Tensor {
    let mut out = vec![0.0f32; m * n];
    if n > 0 {
        shard_rows(&mut out, n, 2 * ka * n, MR, |row_start, panel| {
            let mut bbuf = scratch(B::NEEDS_BUF, ka * NR);
            let mut abuf = vec![0.0f32; ka];
            let n_full = (n / NR) * NR;
            let mut j0 = 0;
            while j0 < n {
                let w = if j0 < n_full { NR } else { n - n_full };
                b.stage(j0, w, &mut bbuf);
                for (ri, c_row) in panel.chunks_mut(n).enumerate() {
                    let acol = a.col(row_start + ri, &mut abuf);
                    tn_row_seg(&mut c_row[j0..j0 + w], acol, b, &bbuf, j0, w);
                }
                j0 += w;
            }
        });
    }
    Tensor::from_vec(vec![m, n], out)
}

#[inline]
fn tn_row_seg<B: PanelSrc>(
    c_seg: &mut [f32],
    acol: &[f32],
    b: &B,
    bbuf: &[f32],
    j0: usize,
    w: usize,
) {
    let ka = acol.len();
    let mut kk = 0;
    while kk + 4 <= ka {
        let (a0, a1, a2, a3) = (acol[kk], acol[kk + 1], acol[kk + 2], acol[kk + 3]);
        if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
            let b0 = b.krow(bbuf, kk, j0, w);
            let b1 = b.krow(bbuf, kk + 1, j0, w);
            let b2 = b.krow(bbuf, kk + 2, j0, w);
            let b3 = b.krow(bbuf, kk + 3, j0, w);
            for (j, c) in c_seg.iter_mut().enumerate() {
                *c = *c + a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
        }
        kk += 4;
    }
    while kk < ka {
        let av = acol[kk];
        if av != 0.0 {
            let brow = b.krow(bbuf, kk, j0, w);
            for (c, &bv) in c_seg.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
        kk += 1;
    }
}

// ---------------------------------------------------------------------------
// BT: replay of `matmul_bt` — `MR×JB` serial-chain tiles whose skip mode
// mirrors `matmul`'s column regions, singles with the conditional skip, and
// `tree_dot` remainder rows.
// ---------------------------------------------------------------------------

fn bt_impl<A: RowSrc, B: RowSrc>(a: &A, b: &B, m: usize, ka: usize, n: usize) -> Tensor {
    let n_full = (n / NR) * NR;
    let b_all_finite = n_full == n || m < MR || b.all_finite();
    let mut out = vec![0.0f32; m * n];
    if n > 0 {
        shard_rows(&mut out, n, 2 * ka * n, MR, |row_start, panel| {
            let rows = panel.len() / n;
            let mut bbuf = scratch(B::NEEDS_BUF, JB * ka);
            let mut abuf = scratch(A::NEEDS_BUF, MR * ka);
            // The reference loop order: row blocks outer (each A quad —
            // typically a cached *packed* weight on the serving path — is
            // dequantized exactly once), JB-wide column tiles inner (dense
            // B rows borrow for free; packed B re-stages per block, the
            // rare packed×packed case).
            let mut ri = 0;
            while ri + MR <= rows {
                let aq: [&[f32]; MR] = a.block(row_start + ri, &mut abuf);
                let c_quad = &mut panel[ri * n..(ri + MR) * n];
                let mut j0 = 0;
                while j0 + JB <= n {
                    let b8: [&[f32]; JB] = b.block(j0, &mut bbuf);
                    if b_all_finite || j0 + JB <= n_full {
                        bt_tile::<false>(&aq, &b8, j0, n, c_quad);
                    } else {
                        bt_tile::<true>(&aq, &b8, j0, n, c_quad);
                    }
                    j0 += JB;
                }
                // Column singles (always in matmul's tail region).
                for j in j0..n {
                    let bj = b.row(j, &mut bbuf);
                    let mut s = [0.0f32; MR];
                    for (p, &bv) in bj.iter().enumerate() {
                        for (r, s_r) in s.iter_mut().enumerate() {
                            let ar = aq[r][p];
                            if b_all_finite || ar != 0.0 {
                                *s_r += ar * bv;
                            }
                        }
                    }
                    for (r, &s_r) in s.iter().enumerate() {
                        c_quad[r * n + j] = s_r;
                    }
                }
                ri += MR;
            }
            // Remainder rows (`m % 4`): `tree_dot` across every column.
            while ri < rows {
                let ar = a.row(row_start + ri, &mut abuf);
                let mut j0 = 0;
                while j0 + JB <= n {
                    let b8: [&[f32]; JB] = b.block(j0, &mut bbuf);
                    for (jj, bj) in b8.iter().enumerate() {
                        panel[ri * n + j0 + jj] = tree_dot(ar, bj);
                    }
                    j0 += JB;
                }
                for j in j0..n {
                    let bj = b.row(j, &mut bbuf);
                    panel[ri * n + j] = tree_dot(ar, bj);
                }
                ri += 1;
            }
        });
    }
    Tensor::from_vec(vec![m, n], out)
}

/// One `MR×JB` tile of serial ascending-`k` chains; `SKIP` mirrors
/// `matmul_bt`'s region-dependent `a == 0.0` skip.
#[inline]
fn bt_tile<const SKIP: bool>(
    aq: &[&[f32]; MR],
    b8: &[&[f32]; JB],
    j0: usize,
    n: usize,
    c_quad: &mut [f32],
) {
    let ka = aq[0].len();
    let mut acc = [[0.0f32; JB]; MR];
    for p in 0..ka {
        let bvs: [f32; JB] = std::array::from_fn(|jj| b8[jj][p]);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let ar = aq[r][p];
            if SKIP && ar == 0.0 {
                continue;
            }
            for (acc_rj, &bv) in acc_r.iter_mut().zip(&bvs) {
                *acc_rj += ar * bv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        c_quad[r * n + j0..r * n + j0 + JB].copy_from_slice(acc_r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Builds a random `PackedMat` plus its dense dequantized twin.
    fn random_pack(
        rows: usize,
        cols: usize,
        group: usize,
        layout: PackLayout,
        m_bits: u32,
        seed: u64,
    ) -> (PackedMat, Tensor) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let max_mag = (1i32 << m_bits) - 1;
        let mans: Vec<i8> = (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    0
                } else {
                    rng.gen_range(-max_mag..=max_mag) as i8
                }
            })
            .collect();
        let n_scales = match layout {
            PackLayout::RowGroups => rows * cols.div_ceil(group).max(1),
            PackLayout::ColGroups => rows.div_ceil(group).max(1) * cols,
        };
        let scales: Vec<f32> = (0..n_scales)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    0.0
                } else {
                    2.0f32.powi(rng.gen_range(-12..4))
                }
            })
            .collect();
        let p = PackedMat::new(rows, cols, group, layout, mans, scales);
        let dense = p.to_tensor();
        (p, dense)
    }

    fn assert_bits_eq(got: &Tensor, want: &Tensor, tag: &str) {
        assert_eq!(got.shape(), want.shape(), "{tag} shape");
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{tag} elem {i}: {g} vs {w}");
        }
    }

    // Shapes crossing the NR=32 tile boundary, the MR=4 row remainder, the
    // 8-wide reduction blocking, and single-row/column edges.
    const SHAPES: [(usize, usize, usize); 7] = [
        (4, 32, 32),
        (1, 9, 40),
        (7, 13, 2),
        (9, 40, 33),
        (5, 8, 31),
        (3, 17, 1),
        (8, 64, 70),
    ];

    #[test]
    fn nn_matches_dense_bitwise_for_every_operand_mix() {
        for (m, k, n) in SHAPES {
            let (pa, da) = random_pack(m, k, 16, PackLayout::RowGroups, 4, 1 + m as u64);
            let (pb, db) = random_pack(k, n, 16, PackLayout::ColGroups, 4, 2 + n as u64);
            let want = matmul(&da, &db);
            for (a, b, tag) in [
                (Operand::Packed(&pa), Operand::Dense(&db), "pd"),
                (Operand::Dense(&da), Operand::Packed(&pb), "dp"),
                (Operand::Packed(&pa), Operand::Packed(&pb), "pp"),
            ] {
                assert_bits_eq(&qmatmul(a, b), &want, &format!("nn {tag} ({m},{k},{n})"));
            }
        }
    }

    #[test]
    fn nt_matches_dense_bitwise_for_every_operand_mix() {
        for (m, k, n) in SHAPES {
            let (pa, da) = random_pack(m, k, 16, PackLayout::RowGroups, 3, 11 + m as u64);
            let (pb, db) = random_pack(n, k, 16, PackLayout::RowGroups, 3, 12 + n as u64);
            let want = matmul_nt(&da, &db);
            for (a, b, tag) in [
                (Operand::Packed(&pa), Operand::Dense(&db), "pd"),
                (Operand::Dense(&da), Operand::Packed(&pb), "dp"),
                (Operand::Packed(&pa), Operand::Packed(&pb), "pp"),
            ] {
                assert_bits_eq(&qmatmul_nt(a, b), &want, &format!("nt {tag} ({m},{k},{n})"));
            }
        }
    }

    #[test]
    fn tn_matches_dense_bitwise_for_every_operand_mix() {
        for (m, k, n) in SHAPES {
            let (pa, da) = random_pack(k, m, 16, PackLayout::ColGroups, 2, 21 + m as u64);
            let (pb, db) = random_pack(k, n, 16, PackLayout::ColGroups, 2, 22 + n as u64);
            let want = matmul_tn(&da, &db);
            for (a, b, tag) in [
                (Operand::Packed(&pa), Operand::Dense(&db), "pd"),
                (Operand::Dense(&da), Operand::Packed(&pb), "dp"),
                (Operand::Packed(&pa), Operand::Packed(&pb), "pp"),
            ] {
                assert_bits_eq(&qmatmul_tn(a, b), &want, &format!("tn {tag} ({m},{k},{n})"));
            }
        }
    }

    #[test]
    fn bt_matches_dense_bitwise_for_every_operand_mix() {
        for (m, k, n) in SHAPES {
            let (pa, da) = random_pack(m, k, 16, PackLayout::RowGroups, 4, 31 + m as u64);
            let (pb, db) = random_pack(n, k, 16, PackLayout::RowGroups, 4, 32 + n as u64);
            let want = matmul_bt(&da, &db);
            for (a, b, tag) in [
                (Operand::Packed(&pa), Operand::Dense(&db), "pd"),
                (Operand::Dense(&da), Operand::Packed(&pb), "dp"),
                (Operand::Packed(&pa), Operand::Packed(&pb), "pp"),
            ] {
                assert_bits_eq(&qmatmul_bt(a, b), &want, &format!("bt {tag} ({m},{k},{n})"));
            }
        }
    }

    #[test]
    fn bt_with_nonfinite_dense_b_replays_skip_regions() {
        // 0·∞ = NaN makes the zero-coefficient skip observable; the packed
        // A side (which contains exact-zero mantissas) must skip in exactly
        // matmul's column regions.
        for (m, k, n) in [(4usize, 40usize, 4usize), (5, 17, 40), (8, 9, 33)] {
            let (pa, da) = random_pack(m, k, 16, PackLayout::RowGroups, 4, 41);
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let bdata: Vec<f32> = (0..n * k)
                .map(|i| {
                    if i % 7 == 0 {
                        f32::INFINITY
                    } else if i % 11 == 0 {
                        f32::NAN
                    } else {
                        rng.gen_range(-1.0f32..1.0)
                    }
                })
                .collect();
            let db = Tensor::from_vec(vec![n, k], bdata);
            let want = matmul_bt(&da, &db);
            assert_bits_eq(
                &qmatmul_bt(Operand::Packed(&pa), Operand::Dense(&db)),
                &want,
                &format!("bt-nonfinite ({m},{k},{n})"),
            );
        }
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        use crate::parallel::{parallelism, set_parallelism, Parallelism};
        let saved = parallelism();
        let (pa, _) = random_pack(37, 256, 16, PackLayout::RowGroups, 4, 51);
        let (pb, _) = random_pack(256, 67, 16, PackLayout::ColGroups, 4, 52);
        let (pbt, _) = random_pack(67, 256, 16, PackLayout::RowGroups, 4, 53);
        let (pat, _) = random_pack(256, 37, 16, PackLayout::ColGroups, 4, 54);
        set_parallelism(Parallelism::sequential());
        let s1 = qmatmul(Operand::Packed(&pa), Operand::Packed(&pb));
        let s2 = qmatmul_nt(Operand::Packed(&pa), Operand::Packed(&pbt));
        let s3 = qmatmul_tn(Operand::Packed(&pat), Operand::Packed(&pb));
        for workers in [2, 5, 8] {
            set_parallelism(Parallelism::new(workers));
            assert_eq!(qmatmul(Operand::Packed(&pa), Operand::Packed(&pb)), s1);
            assert_eq!(qmatmul_nt(Operand::Packed(&pa), Operand::Packed(&pbt)), s2);
            assert_eq!(qmatmul_tn(Operand::Packed(&pat), Operand::Packed(&pb)), s3);
        }
        set_parallelism(saved);
    }

    #[test]
    fn packed_mat_accessors_and_working_set() {
        let (p, dense) = random_pack(6, 20, 16, PackLayout::RowGroups, 4, 61);
        for i in 0..6 {
            for j in 0..20 {
                assert_eq!(p.value(i, j).to_bits(), dense.at2(i, j).to_bits());
            }
        }
        assert_eq!(p.rows(), 6);
        assert_eq!(p.cols(), 20);
        assert_eq!(p.group(), 16);
        assert_eq!(p.layout(), PackLayout::RowGroups);
        // i8 mantissas + one f32 scale per 16 values: well under the dense
        // f32 footprint.
        assert!(p.heap_bytes() < 4 * 6 * 20);
    }

    #[test]
    fn replay_mode_entry_points_are_the_plain_kernels() {
        let (pa, _) = random_pack(5, 40, 16, PackLayout::RowGroups, 4, 101);
        let (pb, _) = random_pack(40, 9, 16, PackLayout::ColGroups, 4, 102);
        let (pbt, _) = random_pack(9, 40, 16, PackLayout::RowGroups, 4, 103);
        let a = Operand::Packed(&pa);
        assert_bits_eq(
            &qmatmul_ex(ExecMode::Replay, a, Operand::Packed(&pb)),
            &qmatmul(a, Operand::Packed(&pb)),
            "nn replay",
        );
        assert_bits_eq(
            &qmatmul_nt_ex(ExecMode::Replay, a, Operand::Packed(&pbt)),
            &qmatmul_nt(a, Operand::Packed(&pbt)),
            "nt replay",
        );
        assert_bits_eq(
            &qmatmul_bt_ex(ExecMode::Replay, a, Operand::Packed(&pbt)),
            &qmatmul_bt(a, Operand::Packed(&pbt)),
            "bt replay",
        );
    }

    #[test]
    fn ineligible_integer_requests_fall_back_to_replay_bits() {
        // Dense operand: integer domain inapplicable.
        let (pa, da) = random_pack(5, 40, 16, PackLayout::RowGroups, 4, 111);
        let (pb, db) = random_pack(40, 9, 16, PackLayout::ColGroups, 4, 112);
        assert_bits_eq(
            &qmatmul_ex(ExecMode::Integer, Operand::Dense(&da), Operand::Packed(&pb)),
            &qmatmul(Operand::Dense(&da), Operand::Packed(&pb)),
            "dense a",
        );
        // Groups along the wrong axis: the scale product does not factor
        // per reduction segment, so the pair must replay.
        let (pb_wrong, db_wrong) = random_pack(40, 9, 16, PackLayout::RowGroups, 4, 113);
        assert_bits_eq(
            &qmatmul_ex(
                ExecMode::Integer,
                Operand::Packed(&pa),
                Operand::Packed(&pb_wrong),
            ),
            &matmul(&da, &db_wrong),
            "wrong layout",
        );
        let _ = db;
    }

    #[test]
    fn integer_nn_stays_close_to_replay() {
        // The two modes sum identical group terms in different f32
        // associations; on well-scaled data they agree to fine precision.
        let (pa, da) = random_pack(16, 64, 16, PackLayout::RowGroups, 4, 121);
        let (pb, db) = random_pack(64, 24, 16, PackLayout::ColGroups, 4, 122);
        let replay = matmul(&da, &db);
        let int = qmatmul_ex(
            ExecMode::Integer,
            Operand::Packed(&pa),
            Operand::Packed(&pb),
        );
        let scale = replay.data().iter().fold(1e-30f32, |s, v| s.max(v.abs()));
        for (g, w) in int.data().iter().zip(replay.data()) {
            assert!(
                (g - w).abs() / scale < 1e-5,
                "integer vs replay drifted: {g} vs {w}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn dimension_mismatch_panics() {
        let (pa, _) = random_pack(2, 3, 16, PackLayout::RowGroups, 4, 71);
        let (pb, _) = random_pack(4, 2, 16, PackLayout::ColGroups, 4, 72);
        let _ = qmatmul(Operand::Packed(&pa), Operand::Packed(&pb));
    }
}
