//! Blocked f32 GEMM kernels.
//!
//! Three orientations cover the DNN training GEMMs of paper Fig 3 without
//! materializing transposes:
//!
//! * [`matmul`]    — `C = A·B`      (forward pass, `O = A·W`)
//! * [`matmul_nt`] — `C = A·Bᵀ`     (backward pass, `∇A = ∇O·Wᵀ`)
//! * [`matmul_tn`] — `C = Aᵀ·B`     (backward pass, `∇W = Aᵀ·∇O`)
//!
//! All kernels accumulate in f32, matching the FP32 accumulator that spans
//! BFP groups in the fMAC (paper Section V-B).

use crate::tensor::Tensor;

/// `C (m×n) = A (m×k) · B (k×n)`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(ka, kb, "matmul inner dimensions disagree: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    // i-k-j loop order: streams B rows, accumulates into C rows.
    for i in 0..m {
        let c_row = &mut out[i * n..(i + 1) * n];
        for k in 0..ka {
            let aik = ad[i * ka + k];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[k * n..(k + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aik * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C (m×n) = A (m×k) · Bᵀ` where `B` is stored as `n×k`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "A");
    let (n, kb) = dims2(b, "B");
    assert_eq!(ka, kb, "matmul_nt inner dimensions disagree: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for i in 0..m {
        let a_row = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let b_row = &bd[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C (m×n) = Aᵀ · B` where `A` is stored as `k×m` and `B` as `k×n`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(ka, kb, "matmul_tn inner dimensions disagree: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for k in 0..ka {
        let a_row = &ad[k * m..(k + 1) * m];
        let b_row = &bd[k * n..(k + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(vec![m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matches_naive_on_random() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 13, 2), (16, 16, 16)] {
            let a = rand_tensor(vec![m, k], 1);
            let b = rand_tensor(vec![k, n], 2);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = rand_tensor(vec![4, 6], 3);
        let b = rand_tensor(vec![5, 6], 4); // represents Bᵀ with B 6×5
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &b.transpose2());
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = rand_tensor(vec![6, 4], 5); // represents Aᵀ with A 4×6
        let b = rand_tensor(vec![6, 5], 6);
        let via_tn = matmul_tn(&a, &b);
        let via_t = matmul(&a.transpose2(), &b);
        for (x, y) in via_tn.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_tensor(vec![5, 5], 7);
        let mut eye = Tensor::zeros(vec![5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = matmul(&a, &b);
    }
}
