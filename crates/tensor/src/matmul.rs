//! Blocked, multi-threaded f32 GEMM kernels.
//!
//! Three orientations cover the DNN training GEMMs of paper Fig 3 without
//! materializing transposes:
//!
//! * [`matmul`]    — `C = A·B`      (forward pass, `O = A·W`)
//! * [`matmul_nt`] — `C = A·Bᵀ`     (backward pass, `∇A = ∇O·Wᵀ`)
//! * [`matmul_tn`] — `C = Aᵀ·B`     (backward pass, `∇W = Aᵀ·∇O`)
//!
//! All kernels accumulate in f32, matching the FP32 accumulator that spans
//! BFP groups in the fMAC (paper Section V-B).
//!
//! The kernels are register/cache tiled — [`matmul`] and [`matmul_tn`] run
//! the reduction through blocked row updates (a 4×32 register micro-kernel
//! for full tiles, a pairwise-tree row update for remainder rows and column
//! tails), [`matmul_nt`] runs four dot-product chains at a time — and
//! output row panels are sharded across scoped worker threads per the
//! process-wide [`crate::Parallelism`] setting. Each output element's
//! summation tree is a fixed function of its position and the operand
//! shapes alone: panels split at micro-kernel granularity, so the
//! block/remainder decomposition — and therefore every f32 result bit — is
//! identical for every worker count, including `Parallelism::sequential()`
//! (pinned by `tests/proptests.rs`).

use crate::parallel::shard_rows;
use crate::tensor::Tensor;

/// `C (m×n) = A (m×k) · B (k×n)`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(ka, kb, "matmul inner dimensions disagree: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    shard_rows(&mut out, n, 2 * ka * n, MR, |row_start, panel| {
        let mut ri = 0;
        let rows = panel.len() / n;
        while ri + MR <= rows {
            let i = row_start + ri;
            let a_quad = |r: usize| &ad[(i + r) * ka..(i + r) * ka + ka];
            micro_tile(
                [a_quad(0), a_quad(1), a_quad(2), a_quad(3)],
                bd,
                n,
                &mut panel[ri * n..(ri + MR) * n],
            );
            ri += MR;
        }
        while ri < rows {
            let a_row = &ad[(row_start + ri) * ka..(row_start + ri) * ka + ka];
            accumulate_row(&mut panel[ri * n..(ri + 1) * n], a_row, bd, n);
            ri += 1;
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

/// Micro-kernel row height (output rows per register tile).
pub(crate) const MR: usize = 4;
/// Micro-kernel column width (output columns per register tile).
pub(crate) const NR: usize = 32;
/// [`matmul_bt`] column-block width (independent dot chains per row).
pub(crate) const JB: usize = 8;

/// Register-blocked `MR×NR` tile: `MR` output rows advance together down
/// the whole reduction, sharing each B row load; the `MR·NR` accumulators
/// live in registers, so C is touched once per tile instead of once per
/// reduction block. Each accumulator sums its products in ascending-`k`
/// order. Column remainders fall back to [`accumulate_row`] per row.
#[inline]
fn micro_tile(a: [&[f32]; MR], bd: &[f32], n: usize, c_quad: &mut [f32]) {
    let k = a[0].len();
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut acc = [[0.0f32; NR]; MR];
        for kk in 0..k {
            let b = &bd[kk * n + j0..kk * n + j0 + NR];
            for r in 0..MR {
                let ar = a[r][kk];
                for (x, acc_rx) in acc[r].iter_mut().enumerate() {
                    *acc_rx += ar * b[x];
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let c = &mut c_quad[r * n + j0..r * n + j0 + NR];
            for (cx, &ax) in c.iter_mut().zip(acc_r) {
                *cx += ax;
            }
        }
        j0 += NR;
    }
    if j0 < n {
        for r in 0..MR {
            accumulate_tail(&mut c_quad[r * n + j0..(r + 1) * n], a[r], bd, n, j0);
        }
    }
}

/// Scalar column-tail update: `c_row[j0..] += Σ_k a[k] · b_row(k)[j0..]`.
fn accumulate_tail(c_tail: &mut [f32], a: &[f32], bd: &[f32], n: usize, j0: usize) {
    for (kk, &ak) in a.iter().enumerate() {
        if ak != 0.0 {
            let b_tail = &bd[kk * n + j0..(kk + 1) * n];
            for (c, &bv) in c_tail.iter_mut().zip(b_tail) {
                *c += ak * bv;
            }
        }
    }
}

/// `c_row += Σ_k a[k] · b_row(k)` with the reduction blocked four wide;
/// products are added in ascending-`k` order. Blocks of four zero
/// coefficients are skipped (BFP-quantized operands are sparse).
#[inline]
fn accumulate_row(c_row: &mut [f32], a: &[f32], bd: &[f32], n: usize) {
    let c_row = &mut c_row[..n];
    let k = a.len();
    let mut kk = 0;
    while kk + 8 <= k {
        let ab = &a[kk..kk + 8];
        if ab.iter().any(|&v| v != 0.0) {
            let b0 = &bd[kk * n..kk * n + n];
            let b1 = &bd[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &bd[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &bd[(kk + 3) * n..(kk + 3) * n + n];
            let b4 = &bd[(kk + 4) * n..(kk + 4) * n + n];
            let b5 = &bd[(kk + 5) * n..(kk + 5) * n + n];
            let b6 = &bd[(kk + 6) * n..(kk + 6) * n + n];
            let b7 = &bd[(kk + 7) * n..(kk + 7) * n + n];
            for j in 0..n {
                // Fixed pairwise reduction: three-deep adder tree instead of
                // an eight-long serial chain (same tree on every path, so
                // results are deterministic and worker-count-independent).
                let s01 = ab[0] * b0[j] + ab[1] * b1[j];
                let s23 = ab[2] * b2[j] + ab[3] * b3[j];
                let s45 = ab[4] * b4[j] + ab[5] * b5[j];
                let s67 = ab[6] * b6[j] + ab[7] * b7[j];
                c_row[j] += (s01 + s23) + (s45 + s67);
            }
        }
        kk += 8;
    }
    while kk < k {
        let aik = a[kk];
        if aik != 0.0 {
            let b_row = &bd[kk * n..kk * n + n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aik * bv;
            }
        }
        kk += 1;
    }
}

/// `C (m×n) = A (m×k) · B (k×n)` with `B` supplied **pre-transposed** as an
/// `n×k` tensor — **bit-identical** to `matmul(a, b)`.
///
/// [`matmul_nt`] computes the same product from the same layout but with
/// its own (backward-kernel) summation trees; this kernel instead replays
/// [`matmul`]'s exact per-element arithmetic so callers can swap operand
/// layouts without changing a single result bit (pinned by
/// `tests/proptests.rs`). The frozen-inference conv path uses it with
/// `im2row` patches, where narrow-`n` GEMMs become contiguous dot products
/// instead of [`matmul`]'s strided column tails.
///
/// Why the bits match, region by region (including non-finite operands —
/// [`matmul`] skips exact-zero coefficients in its column *tail* but not in
/// its full 32-column tiles, which matters when a skipped `0.0` would have
/// met an `∞`/`NaN`):
///
/// * full-4-row blocks, columns inside `matmul`'s full-tile region
///   (`j < (n / 32) * 32`): serial ascending-`k` chains with **no** skip,
///   exactly like `micro_tile`'s register tile;
/// * full-4-row blocks, tail columns: serial ascending-`k` chains that
///   skip `a == 0.0` coefficients, exactly like `accumulate_tail`;
/// * remainder rows (`m % 4`): `accumulate_row`'s eight-wide pairwise
///   reduction tree, replayed verbatim by `tree_dot`.
///
/// The tail skip is mirrored literally only when `B` contains non-finite
/// values (detected by one scan); for finite `B` the skip is an exact
/// no-op, so the branch-free tile serves the hot path.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul_bt(a: &Tensor, bt: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "A");
    let (n, kb) = dims2(bt, "Bᵀ");
    assert_eq!(ka, kb, "matmul_bt inner dimensions disagree: {ka} vs {kb}");
    // Columns below this bound sit in matmul's full-NR-tile region (no
    // zero-coefficient skip); columns at or above it are its tail (skip).
    let n_full = (n / NR) * NR;
    // The tail's skip is *observable* only when a skipped `0.0` coefficient
    // would have met a non-finite B value (0·∞ = NaN); for finite B a
    // skipped `±0.0` product is an exact no-op, because an accumulator that
    // starts at `+0.0` can never become `-0.0` (IEEE-754 round-to-nearest
    // yields `-0.0` only when both addends are `-0.0`). So scan B once and
    // keep the branch-free tile on the hot path; the literal skip-mirroring
    // loops only run for non-finite B.
    let b_all_finite = n_full == n || m < MR || bt.data().iter().all(|v| v.is_finite());
    let mut out = vec![0.0f32; m * n];
    let (ad, btd) = (a.data(), bt.data());
    shard_rows(&mut out, n, 2 * ka * n, MR, |row_start, panel| {
        let rows = panel.len() / n;
        let mut ri = 0;
        while ri + MR <= rows {
            let i = row_start + ri;
            let a_row = |r: usize| &ad[(i + r) * ka..(i + r) * ka + ka];
            let a = [a_row(0), a_row(1), a_row(2), a_row(3)];
            let c_quad = &mut panel[ri * n..(ri + MR) * n];
            // MR×JB register tiles: every accumulator is an independent
            // serial ascending-k chain (the same per-element order as
            // matmul's paths), and 32 live chains hide the f32 add latency
            // that a lone dot product would serialize on. JB divides NR, so
            // each tile falls wholly inside the full-tile or tail region.
            let mut j0 = 0;
            while j0 + JB <= n {
                if b_all_finite || j0 + JB <= n_full {
                    bt_quad_tile::<false>(&a, btd, ka, n, j0, c_quad);
                } else {
                    bt_quad_tile::<true>(&a, btd, ka, n, j0, c_quad);
                }
                j0 += JB;
            }
            for j in j0..n {
                // Column singles are always in the tail region (skip mode,
                // unless finite B makes the skip unobservable).
                let bj = &btd[j * ka..j * ka + ka];
                let mut s = [0.0f32; MR];
                for p in 0..ka {
                    let bv = bj[p];
                    for (r, s_r) in s.iter_mut().enumerate() {
                        let ar = a[r][p];
                        if b_all_finite || ar != 0.0 {
                            *s_r += ar * bv;
                        }
                    }
                }
                for (r, &s_r) in s.iter().enumerate() {
                    c_quad[r * n + j] = s_r;
                }
            }
            ri += MR;
        }
        while ri < rows {
            let a_row = &ad[(row_start + ri) * ka..(row_start + ri) * ka + ka];
            let c_row = &mut panel[ri * n..(ri + 1) * n];
            for (j, c) in c_row.iter_mut().enumerate() {
                *c = tree_dot(a_row, &btd[j * ka..j * ka + ka]);
            }
            ri += 1;
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

/// One `MR×JB` register tile of [`matmul_bt`]'s full-4-row path, starting
/// at column `j0`. `SKIP` mirrors which of [`matmul`]'s column regions the
/// tile lies in: `false` replays the full-tile (no zero skip) arithmetic,
/// `true` replays [`accumulate_tail`]'s per-coefficient `a == 0.0` skip.
/// Monomorphized so the no-skip serving path stays branch-free.
#[inline]
fn bt_quad_tile<const SKIP: bool>(
    a: &[&[f32]; MR],
    btd: &[f32],
    ka: usize,
    n: usize,
    j0: usize,
    c_quad: &mut [f32],
) {
    let bj: [&[f32]; JB] = std::array::from_fn(|jj| &btd[(j0 + jj) * ka..(j0 + jj) * ka + ka]);
    let mut acc = [[0.0f32; JB]; MR];
    for p in 0..ka {
        let bvs: [f32; JB] = std::array::from_fn(|jj| bj[jj][p]);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let ar = a[r][p];
            if SKIP && ar == 0.0 {
                continue;
            }
            for (acc_rj, &bv) in acc_r.iter_mut().zip(&bvs) {
                *acc_rj += ar * bv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        c_quad[r * n + j0..r * n + j0 + JB].copy_from_slice(acc_r);
    }
}

/// [`accumulate_row`]'s eight-wide pairwise reduction, replayed as a dot
/// product over contiguous slices (for [`matmul_bt`]'s remainder rows and
/// the packed-operand kernels of [`crate::qgemm`]).
#[inline]
pub(crate) fn tree_dot(a: &[f32], b: &[f32]) -> f32 {
    let k = a.len();
    let mut acc = 0.0f32;
    let mut kk = 0;
    while kk + 8 <= k {
        let ab = &a[kk..kk + 8];
        if ab.iter().any(|&v| v != 0.0) {
            let bb = &b[kk..kk + 8];
            let s01 = ab[0] * bb[0] + ab[1] * bb[1];
            let s23 = ab[2] * bb[2] + ab[3] * bb[3];
            let s45 = ab[4] * bb[4] + ab[5] * bb[5];
            let s67 = ab[6] * bb[6] + ab[7] * bb[7];
            acc += (s01 + s23) + (s45 + s67);
        }
        kk += 8;
    }
    while kk < k {
        if a[kk] != 0.0 {
            acc += a[kk] * b[kk];
        }
        kk += 1;
    }
    acc
}

/// `C (m×n) = A (m×k) · Bᵀ` where `B` is stored as `n×k`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "A");
    let (n, kb) = dims2(b, "B");
    assert_eq!(ka, kb, "matmul_nt inner dimensions disagree: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    shard_rows(&mut out, n, 2 * ka * n, 1, |row_start, panel| {
        for (ri, c_row) in panel.chunks_mut(n).enumerate() {
            let c_row = &mut c_row[..n];
            let a_row = &ad[(row_start + ri) * ka..(row_start + ri) * ka + ka];
            let mut j = 0;
            // Four dot products at a time: independent accumulator chains
            // give instruction-level parallelism while each chain keeps the
            // sequential ascending-k order.
            while j + 4 <= n {
                let b0 = &bd[j * ka..j * ka + ka];
                let b1 = &bd[(j + 1) * ka..(j + 1) * ka + ka];
                let b2 = &bd[(j + 2) * ka..(j + 2) * ka + ka];
                let b3 = &bd[(j + 3) * ka..(j + 3) * ka + ka];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for p in 0..ka {
                    let av = a_row[p];
                    s0 += av * b0[p];
                    s1 += av * b1[p];
                    s2 += av * b2[p];
                    s3 += av * b3[p];
                }
                c_row[j] = s0;
                c_row[j + 1] = s1;
                c_row[j + 2] = s2;
                c_row[j + 3] = s3;
                j += 4;
            }
            while j < n {
                let b_row = &bd[j * ka..j * ka + ka];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                c_row[j] = acc;
                j += 1;
            }
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

/// `C (m×n) = Aᵀ · B` where `A` is stored as `k×m` and `B` as `k×n`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(ka, kb, "matmul_tn inner dimensions disagree: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    shard_rows(&mut out, n, 2 * ka * n, MR, |row_start, panel| {
        for (ri, c_row) in panel.chunks_mut(n).enumerate() {
            let c_row = &mut c_row[..n];
            let i = row_start + ri;
            let mut kk = 0;
            while kk + 4 <= ka {
                let (a0, a1, a2, a3) = (
                    ad[kk * m + i],
                    ad[(kk + 1) * m + i],
                    ad[(kk + 2) * m + i],
                    ad[(kk + 3) * m + i],
                );
                if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                    let b0 = &bd[kk * n..kk * n + n];
                    let b1 = &bd[(kk + 1) * n..(kk + 1) * n + n];
                    let b2 = &bd[(kk + 2) * n..(kk + 2) * n + n];
                    let b3 = &bd[(kk + 3) * n..(kk + 3) * n + n];
                    for j in 0..n {
                        c_row[j] = c_row[j] + a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                }
                kk += 4;
            }
            while kk < ka {
                let av = ad[kk * m + i];
                if av != 0.0 {
                    let b_row = &bd[kk * n..kk * n + n];
                    for (c, &bv) in c_row.iter_mut().zip(b_row) {
                        *c += av * bv;
                    }
                }
                kk += 1;
            }
        }
    });
    Tensor::from_vec(vec![m, n], out)
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{name} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(vec![m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matches_naive_on_random() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 13, 2), (16, 16, 16), (9, 34, 11)] {
            let a = rand_tensor(vec![m, k], 1);
            let b = rand_tensor(vec![k, n], 2);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = rand_tensor(vec![4, 6], 3);
        let b = rand_tensor(vec![5, 6], 4); // represents Bᵀ with B 6×5
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &b.transpose2());
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = rand_tensor(vec![6, 4], 5); // represents Aᵀ with A 4×6
        let b = rand_tensor(vec![6, 5], 6);
        let via_tn = matmul_tn(&a, &b);
        let via_t = matmul(&a.transpose2(), &b);
        for (x, y) in via_tn.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_tensor(vec![5, 5], 7);
        let mut eye = Tensor::zeros(vec![5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn bt_is_bit_identical_to_matmul() {
        // Cross the NR=32 column boundary, the MR=4 row remainder, and the
        // 8-wide reduction blocking; include exact zeros (BFP operands are
        // sparse) to exercise the skip paths.
        for (m, k, n) in [
            (4, 576, 4),
            (1, 9, 40),
            (7, 13, 2),
            (64, 72, 256),
            (9, 34, 33),
            (5, 8, 31),
            (3, 17, 1),
        ] {
            let mut a = rand_tensor(vec![m, k], (m * k + n) as u64);
            let b = rand_tensor(vec![k, n], (m + k * n) as u64);
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *v = 0.0;
                }
            }
            assert_eq!(
                matmul_bt(&a, &b.transpose2()),
                matmul(&a, &b),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn bt_matches_matmul_bitwise_with_nonfinite_operands() {
        // 0·∞ = NaN makes matmul's zero-coefficient skip observable, so
        // matmul_bt must skip in exactly the same column regions. Cover
        // tail-only (n < 32), full-tile + tail (n > 32), and remainder rows.
        for (m, k, n) in [(4, 40, 4), (5, 17, 40), (8, 9, 33), (3, 20, 8)] {
            let mut a = rand_tensor(vec![m, k], 77);
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = 0.0;
                }
            }
            let mut b = rand_tensor(vec![k, n], 78);
            for (i, v) in b.data_mut().iter_mut().enumerate() {
                if i % 7 == 0 {
                    *v = f32::INFINITY;
                } else if i % 11 == 0 {
                    *v = f32::NAN;
                }
            }
            let want = matmul(&a, &b);
            let got = matmul_bt(&a, &b.transpose2());
            for (idx, (x, y)) in want.data().iter().zip(got.data()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n}) elem {idx}");
            }
        }
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        use crate::parallel::{parallelism, set_parallelism, Parallelism};
        let saved = parallelism();
        // Big enough that the work-size heuristic actually shards.
        let a = rand_tensor(vec![101, 256], 11);
        let b = rand_tensor(vec![256, 67], 12);
        let bt = rand_tensor(vec![67, 256], 13);
        let at = rand_tensor(vec![256, 101], 14);
        set_parallelism(Parallelism::sequential());
        let (s1, s2, s3) = (matmul(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b));
        for workers in [2, 3, 8] {
            set_parallelism(Parallelism::new(workers));
            assert_eq!(matmul(&a, &b), s1, "matmul, {workers} workers");
            assert_eq!(matmul_nt(&a, &bt), s2, "matmul_nt, {workers} workers");
            assert_eq!(matmul_tn(&at, &b), s3, "matmul_tn, {workers} workers");
        }
        set_parallelism(saved);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = matmul(&a, &b);
    }
}
