//! Weight initializers.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Kaiming-He normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The standard initializer for ReLU networks; keeps activation variance
/// stable through depth, which matters doubly under low-precision BFP where
/// exponent spread drives truncation error (paper Fig 6).
pub fn kaiming_normal(shape: Vec<usize>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
    Tensor::from_vec(shape, data)
}

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform_init(shape: Vec<usize>, limit: f32, rng: &mut impl Rng) -> Tensor {
    assert!(limit > 0.0, "limit must be positive");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(shape, data)
}

mod rand_distr_normal {
    use rand::Rng;

    /// Standard normal sample via Box–Muller (avoids the rand_distr dep).
    pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
        loop {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            if z.is_finite() {
                return z as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = kaiming_normal(vec![64, 64], 64, &mut rng);
        let mean: f64 = t.data().iter().map(|&v| v as f64).sum::<f64>() / t.numel() as f64;
        let var: f64 = t
            .data()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / t.numel() as f64;
        let want_var = 2.0 / 64.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - want_var).abs() / want_var < 0.15,
            "var {var} vs {want_var}"
        );
    }

    #[test]
    fn uniform_respects_limits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = uniform_init(vec![1000], 0.3, &mut rng);
        assert!(t.data().iter().all(|&v| v.abs() <= 0.3));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kaiming_normal(vec![16], 4, &mut rand::rngs::StdRng::seed_from_u64(5));
        let b = kaiming_normal(vec![16], 4, &mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
