//! The dense row-major f32 tensor type.

use std::fmt;

/// A dense, row-major, f32 tensor of arbitrary rank.
///
/// The workhorse container of the training substrate. Shapes are validated
/// on construction; element access goes through checked helpers or the raw
/// [`data`](Tensor::data) slice for hot loops.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = checked_numel(&shape);
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = checked_numel(&shape);
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n = checked_numel(&shape);
        assert_eq!(
            data.len(),
            n,
            "buffer of {} elements does not fit shape {shape:?}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: vec![0.0; self.data.len()],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n = checked_numel(&shape);
        assert_eq!(
            n,
            self.data.len(),
            "cannot reshape {:?} into {shape:?}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Element at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at2 requires a rank-2 tensor");
        let cols = self.shape[1];
        assert!(
            r < self.shape[0] && c < cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * cols + c]
    }

    /// Element at a 4-D (NCHW) index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        assert_eq!(self.rank(), 4, "at4 requires a rank-4 tensor");
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        assert!(n < self.shape[0] && c < cs && h < hs && w < ws);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Applies `f` to every element in place.
    pub fn apply(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise product `self *= other` (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in mul_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Fills with a constant.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Transposes a rank-2 tensor (copying).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }
}

fn checked_numel(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensor shape cannot be empty");
    assert!(
        shape.iter().all(|&d| d > 0),
        "tensor shape {shape:?} has a zero dimension"
    );
    shape.iter().product()
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, numel={}, data[..{}]={:?}{})",
            self.shape,
            self.numel(),
            preview.len(),
            preview,
            if self.numel() > 8 { ", ..." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_rejected() {
        let _ = Tensor::zeros(vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        assert_eq!(t.at2(1, 2), 5.0);
        let t4 = Tensor::from_vec(vec![1, 2, 2, 2], (0..8).map(|i| i as f32).collect());
        assert_eq!(t4.at4(0, 1, 1, 0), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![3.0, 4.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[10.0, 14.0]);
        a.mul_assign(&b);
        assert_eq!(a.data(), &[30.0, 56.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[15.0, 28.0]);
    }

    #[test]
    fn transpose2_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let tt = t.transpose2();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at2(2, 1), t.at2(1, 2));
        assert_eq!(tt.transpose2(), t);
    }

    #[test]
    fn map_and_apply_agree() {
        let t = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0]);
        let m = t.map(|v| v.max(0.0));
        let mut a = t.clone();
        a.apply(|v| v.max(0.0));
        assert_eq!(m, a);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(vec![4, 4]);
        let s = format!("{t:?}");
        assert!(s.contains("shape=[4, 4]"));
    }
}
