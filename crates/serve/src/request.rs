//! Typed request and response surface of the serving engine.
//!
//! A [`ServeRequest`] names the resident model it targets and may carry a
//! latency deadline; every failure mode — shed at admission, expired in
//! queue, unknown model, rejected by the model — comes back as a typed
//! [`ServeError`] through the [`Pending`] handle instead of a hang or an
//! opaque panic (DESIGN.md §14).

use fast_tensor::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// An inference request: input tensor (leading dimension = samples,
/// usually 1) plus routing and admission options.
///
/// ```
/// use fast_serve::ServeRequest;
/// use fast_tensor::Tensor;
/// use std::time::Duration;
///
/// let req = ServeRequest::new(Tensor::zeros(vec![1, 8]))
///     .for_model("ranker")
///     .with_deadline(Duration::from_millis(5));
/// # let _ = req;
/// ```
#[derive(Debug)]
pub struct ServeRequest {
    pub(crate) input: Tensor,
    pub(crate) model: Option<String>,
    pub(crate) deadline: Option<Duration>,
}

impl ServeRequest {
    /// A request for the server's default model with no deadline.
    pub fn new(input: Tensor) -> Self {
        ServeRequest {
            input,
            model: None,
            deadline: None,
        }
    }

    /// Routes the request to the named resident model. An unknown name
    /// resolves to a typed [`ServeError::UnknownModel`] response.
    pub fn for_model(mut self, name: impl Into<String>) -> Self {
        self.model = Some(name.into());
        self
    }

    /// Arms a latency deadline, measured from submission. Admission control
    /// sheds the request immediately ([`ServeError::Rejected`]) when the
    /// estimated queue residency already exceeds the budget, and the
    /// dispatcher drops it unserved ([`ServeError::DeadlineMissed`]) if it
    /// expires while queued.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a request was not answered with a tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: with the current backlog the request was
    /// estimated to spend `estimated_us` in the system, beyond its
    /// `deadline_us` budget, so it was rejected fast instead of queued
    /// (reject-fast beats letting every queued request's p99.9 collapse).
    Rejected {
        /// Estimated queue residency at submit time, microseconds.
        estimated_us: u64,
        /// The request's deadline budget, microseconds.
        deadline_us: u64,
    },
    /// The deadline expired while the request sat in the queue; it was
    /// dropped at dispatch without running the model.
    DeadlineMissed {
        /// How long the request actually waited, microseconds.
        waited_us: u64,
        /// The request's deadline budget, microseconds.
        deadline_us: u64,
    },
    /// The request named a model that is not resident in the server.
    UnknownModel(String),
    /// The model rejected the request (its forward panicked — bad shape,
    /// out-of-vocab token, …) or the worker died.
    Failed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected {
                estimated_us,
                deadline_us,
            } => write!(
                f,
                "shed at admission: estimated {estimated_us} µs residency \
                 exceeds the {deadline_us} µs deadline"
            ),
            ServeError::DeadlineMissed {
                waited_us,
                deadline_us,
            } => write!(
                f,
                "deadline missed in queue: waited {waited_us} µs \
                 against a {deadline_us} µs deadline"
            ),
            ServeError::UnknownModel(name) => write!(f, "no resident model named `{name}`"),
            ServeError::Failed => write!(f, "the model rejected the request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What a worker sends back: the typed result plus the instant the request
/// finished (stamped at the worker, so open-loop load generators can
/// measure latency without coordinated omission — DESIGN.md §14).
#[derive(Debug)]
pub(crate) struct Response {
    pub result: Result<Tensor, ServeError>,
    pub finished_at: Instant,
}

/// A resolved request: the typed result and the worker-stamped instant it
/// finished. Returned by [`Pending::outcome`].
#[derive(Debug)]
pub struct Outcome {
    /// The response tensor, or the typed reason there is none.
    pub result: Result<Tensor, ServeError>,
    /// When the worker resolved the request. For requests shed at
    /// admission this is the submission-side rejection instant.
    pub finished_at: Instant,
}

/// A response handle returned by the `submit` family of methods on
/// [`Server`](crate::Server).
#[derive(Debug)]
pub struct Pending(pub(crate) mpsc::Receiver<Response>);

impl Pending {
    /// Blocks until the result arrives.
    ///
    /// # Panics
    ///
    /// Panics if the request resolved to any [`ServeError`] — shed,
    /// deadline missed, unknown model, or rejected by the model. Use
    /// [`Pending::result`] to handle those as values.
    pub fn wait(self) -> Tensor {
        self.result()
            .unwrap_or_else(|e| panic!("serve request failed: {e}"))
    }

    /// Blocks until the request resolves, returning the typed result.
    pub fn result(self) -> Result<Tensor, ServeError> {
        self.outcome().result
    }

    /// Blocks until the request resolves, returning the typed result plus
    /// the worker-stamped completion instant.
    pub fn outcome(self) -> Outcome {
        match self.0.recv() {
            Ok(resp) => Outcome {
                result: resp.result,
                finished_at: resp.finished_at,
            },
            // The worker died without answering (it should instead have
            // sent `Failed`); report the same typed error rather than hang.
            Err(_) => Outcome {
                result: Err(ServeError::Failed),
                finished_at: Instant::now(),
            },
        }
    }
}
