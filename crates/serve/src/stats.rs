//! Serving observability: latency histograms and aggregate statistics.
//!
//! The dispatcher splits every request's wall time into **queue residency**
//! (submit → pulled into a batch) and **service time** (batch pulled →
//! response sent): a slow p99 caused by queueing means the fleet is
//! under-provisioned or the batcher is under-filling, while a slow p99
//! caused by service means the model itself is the bottleneck — the split
//! makes shed decisions and batcher fill auditable from stats alone
//! (DESIGN.md §14).

use std::collections::BTreeMap;

/// Number of histogram buckets: 16 exact small values plus 8 logarithmic
/// sub-buckets per power of two up to `u64::MAX` nanoseconds.
const HIST_BUCKETS: usize = 496;

/// A mergeable log-bucketed latency histogram (nanosecond samples).
///
/// Values below 16 ns are exact; above that each power of two is split into
/// 8 sub-buckets, so any reported percentile is within ~6% of the true
/// sample. Memory is a fixed 4 KiB per histogram regardless of sample
/// count, which is what lets every worker keep one per latency component
/// without unbounded growth under sustained load.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let b = 63 - v.leading_zeros() as usize; // ≥ 4
        let sub = ((v >> (b - 3)) & 7) as usize;
        16 + (b - 4) * 8 + sub
    }
}

/// Midpoint of the value range a bucket covers.
fn bucket_value(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let b = 4 + (idx - 16) / 8;
        let sub = ((idx - 16) % 8) as u64;
        let width = 1u64 << (b - 3);
        (1u64 << b) + sub * width + width / 2
    }
}

impl LatencyHistogram {
    /// Records one sample (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `p`-th percentile in nanoseconds (`p` in `[0, 1]`; e.g. `0.99`),
    /// or 0 if the histogram is empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        bucket_value(HIST_BUCKETS - 1)
    }

    /// Convenience: the `p`-th percentile in microseconds.
    pub fn percentile_us(&self, p: f64) -> f64 {
        self.percentile_ns(p) as f64 / 1000.0
    }
}

/// Aggregate serving statistics, merged across workers at shutdown.
#[derive(Debug, Default, Clone)]
pub struct ServeStats {
    /// Coalesced forward passes executed.
    pub batches: u64,
    /// Total samples served (answered with a tensor; shed and failed
    /// requests are not counted).
    pub samples: u64,
    /// `batch size → count` over all executed batches.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Requests shed at admission: the estimated queue residency already
    /// exceeded the request's deadline, so it was rejected fast instead of
    /// queued ([`crate::ServeError::Rejected`]).
    pub rejected: u64,
    /// Requests whose deadline expired while they sat in the queue; they
    /// are dropped at dispatch without running the model
    /// ([`crate::ServeError::DeadlineMissed`]).
    pub deadline_missed: u64,
    /// Queue residency per served request: submit → pulled into a batch.
    pub queue_ns: LatencyHistogram,
    /// Service time per served request: batch pulled → response sent (the
    /// whole batch's forward is attributed to each member).
    pub service_ns: LatencyHistogram,
    /// Highest queued-sample depth any model's queue reached (a submit-side
    /// gauge; the live value is [`crate::Server::queue_depth`]).
    pub peak_queue_depth: u64,
    /// Hot weight swaps applied ([`crate::Server::reload`]); counts one per
    /// worker per weight generation, so a fully propagated reload of one
    /// model adds that model's replica count.
    pub reloads: u64,
    /// Reloads a worker rejected (artifact/architecture mismatch); the
    /// worker keeps serving its previous weights.
    pub reload_failures: u64,
}

impl ServeStats {
    pub(crate) fn record(&mut self, batch_samples: usize) {
        self.batches += 1;
        self.samples += batch_samples as u64;
        *self.batch_histogram.entry(batch_samples).or_insert(0) += 1;
    }

    pub(crate) fn merge(&mut self, other: ServeStats) {
        self.batches += other.batches;
        self.samples += other.samples;
        for (size, n) in other.batch_histogram {
            *self.batch_histogram.entry(size).or_insert(0) += n;
        }
        self.rejected += other.rejected;
        self.deadline_missed += other.deadline_missed;
        self.queue_ns.merge(&other.queue_ns);
        self.service_ns.merge(&other.service_ns);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.reloads += other.reloads;
        self.reload_failures += other.reload_failures;
    }

    /// Mean samples per executed batch (0 if nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_track_samples() {
        let mut h = LatencyHistogram::default();
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1 µs .. 1 ms, uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile_ns(0.50);
        let p99 = h.percentile_ns(0.99);
        // Log buckets guarantee ~6% resolution.
        assert!((400_000..=600_000).contains(&p50), "p50 {p50}");
        assert!((930_000..=1_100_000).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::default();
        for v in [0u64, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.percentile_ns(0.0), 0);
        assert_eq!(h.percentile_ns(1.0), 15);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile_ns(1.0) > 900_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(0.99), 0);
    }

    #[test]
    fn bucket_value_is_within_bucket() {
        for v in [1u64, 17, 1000, 123_456, u64::from(u32::MAX) * 7] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            // The representative is within a factor of ~1.13 of any member.
            assert!(
                (rep as f64) / (v as f64) < 1.15 && (v as f64) / (rep as f64) < 1.15,
                "v {v} rep {rep}"
            );
        }
    }
}
