//! Serving observability: per-model registry metrics and aggregate
//! statistics.
//!
//! The dispatcher splits every request's wall time into **queue residency**
//! (submit → pulled into a batch) and **service time** (batch pulled →
//! response sent): a slow p99 caused by queueing means the fleet is
//! under-provisioned or the batcher is under-filling, while a slow p99
//! caused by service means the model itself is the bottleneck — the split
//! makes shed decisions and batcher fill auditable from stats alone
//! (DESIGN.md §14).
//!
//! Since the telemetry rebase (DESIGN.md §15) the counters and histograms
//! live on the server's own [`Registry`] as per-model labeled series
//! (`fast_serve_*{model="..."}`), recorded lock-free by workers and the
//! submit path as they happen — [`crate::Server::metrics_text`] scrapes
//! them live. [`ServeStats`] is now a *view*: the per-model series summed
//! at shutdown, plus the exact batch-size map each worker keeps locally
//! (the log-bucketed registry histogram would blur sizes above 16).

use std::collections::BTreeMap;

use fast_telemetry::{Counter, Gauge, Histogram, Registry};

pub use fast_telemetry::LatencyHistogram;

/// Per-model labeled metric handles on a server's registry, shared by the
/// model's replica workers and the submit path. Cloning clones handles (the
/// underlying series are shared).
#[derive(Debug, Clone)]
pub(crate) struct ModelMetrics {
    /// `fast_serve_batches_total{model}`: coalesced forward passes.
    pub batches: Counter,
    /// `fast_serve_samples_total{model}`: samples answered with a tensor.
    pub samples: Counter,
    /// `fast_serve_shed_total{model}`: requests rejected at admission.
    pub shed: Counter,
    /// `fast_serve_deadline_missed_total{model}`: expired while queued.
    pub deadline_missed: Counter,
    /// `fast_serve_failed_total{model}`: requests the model panicked on.
    pub failed: Counter,
    /// `fast_serve_queue_ns{model}`: queue residency per served request.
    pub queue_ns: Histogram,
    /// `fast_serve_service_ns{model}`: service time per served request.
    pub service_ns: Histogram,
    /// `fast_serve_batch_samples{model}`: samples per executed batch (the
    /// batch-fill distribution; mean fill = `_sum / _count`).
    pub batch_samples: Histogram,
    /// `fast_serve_queue_depth{model}`: live queued samples.
    pub queue_depth: Gauge,
    /// `fast_serve_peak_queue_depth{model}`: high-water mark of the above.
    pub peak_queue_depth: Gauge,
    /// `fast_serve_reloads_total{model}`: per-worker weight swaps applied.
    pub reloads: Counter,
    /// `fast_serve_reload_failures_total{model}`: rejected swaps.
    pub reload_failures: Counter,
    /// `fast_serve_reload_generation{model}`: target weight generation.
    pub reload_generation: Gauge,
}

impl ModelMetrics {
    /// Registers the per-model series for `model` on `registry`.
    pub fn register(registry: &Registry, model: &str) -> ModelMetrics {
        let l = &[("model", model)][..];
        ModelMetrics {
            batches: registry.counter(
                "fast_serve_batches_total",
                "coalesced forward passes executed",
                l,
            ),
            samples: registry.counter(
                "fast_serve_samples_total",
                "samples served (answered with a tensor)",
                l,
            ),
            shed: registry.counter(
                "fast_serve_shed_total",
                "requests shed at admission (estimated residency exceeded the deadline)",
                l,
            ),
            deadline_missed: registry.counter(
                "fast_serve_deadline_missed_total",
                "requests whose deadline expired while queued",
                l,
            ),
            failed: registry.counter(
                "fast_serve_failed_total",
                "requests the model rejected (worker-side panic, typed Failed response)",
                l,
            ),
            queue_ns: registry.histogram(
                "fast_serve_queue_ns",
                "queue residency per served request (submit to batch pull)",
                l,
            ),
            service_ns: registry.histogram(
                "fast_serve_service_ns",
                "service time per served request (batch pull to response)",
                l,
            ),
            batch_samples: registry.histogram(
                "fast_serve_batch_samples",
                "samples per executed batch (batch fill)",
                l,
            ),
            queue_depth: registry.gauge(
                "fast_serve_queue_depth",
                "samples currently queued for the model",
                l,
            ),
            peak_queue_depth: registry.gauge(
                "fast_serve_peak_queue_depth",
                "highest queued-sample depth observed",
                l,
            ),
            reloads: registry.counter(
                "fast_serve_reloads_total",
                "hot weight swaps applied (one per worker per generation)",
                l,
            ),
            reload_failures: registry.counter(
                "fast_serve_reload_failures_total",
                "hot weight swaps rejected by a worker (artifact mismatch)",
                l,
            ),
            reload_generation: registry.gauge(
                "fast_serve_reload_generation",
                "target weight generation being rolled out (0 = compiled weights)",
                l,
            ),
        }
    }

    /// Sums this model's series into an aggregate [`ServeStats`] view
    /// (everything except the exact batch-size map, which workers keep
    /// locally).
    pub fn to_stats(&self) -> ServeStats {
        ServeStats {
            batches: self.batches.get(),
            samples: self.samples.get(),
            batch_histogram: BTreeMap::new(),
            rejected: self.shed.get(),
            deadline_missed: self.deadline_missed.get(),
            failed: self.failed.get(),
            queue_ns: self.queue_ns.snapshot(),
            service_ns: self.service_ns.snapshot(),
            peak_queue_depth: self.peak_queue_depth.get() as u64,
            reloads: self.reloads.get(),
            reload_failures: self.reload_failures.get(),
        }
    }
}

/// Aggregate serving statistics, summed from the per-model registry series
/// (and the workers' exact batch-size maps) at shutdown.
#[derive(Debug, Default, Clone)]
pub struct ServeStats {
    /// Coalesced forward passes executed.
    pub batches: u64,
    /// Total samples served (answered with a tensor; shed and failed
    /// requests are not counted).
    pub samples: u64,
    /// `batch size → count` over all executed batches.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Requests shed at admission: the estimated queue residency already
    /// exceeded the request's deadline, so it was rejected fast instead of
    /// queued ([`crate::ServeError::Rejected`]).
    pub rejected: u64,
    /// Requests whose deadline expired while they sat in the queue; they
    /// are dropped at dispatch without running the model
    /// ([`crate::ServeError::DeadlineMissed`]).
    pub deadline_missed: u64,
    /// Requests the model panicked on (bad shape, out-of-vocab tokens);
    /// answered with a typed [`crate::ServeError::Failed`].
    pub failed: u64,
    /// Queue residency per served request: submit → pulled into a batch.
    pub queue_ns: LatencyHistogram,
    /// Service time per served request: batch pulled → response sent (the
    /// whole batch's forward is attributed to each member).
    pub service_ns: LatencyHistogram,
    /// Highest queued-sample depth any model's queue reached (a submit-side
    /// gauge; the live value is [`crate::Server::queue_depth`]).
    pub peak_queue_depth: u64,
    /// Hot weight swaps applied ([`crate::Server::reload`]); counts one per
    /// worker per weight generation, so a fully propagated reload of one
    /// model adds that model's replica count.
    pub reloads: u64,
    /// Reloads a worker rejected (artifact/architecture mismatch); the
    /// worker keeps serving its previous weights.
    pub reload_failures: u64,
}

impl ServeStats {
    pub(crate) fn merge(&mut self, other: ServeStats) {
        self.batches += other.batches;
        self.samples += other.samples;
        for (size, n) in other.batch_histogram {
            *self.batch_histogram.entry(size).or_insert(0) += n;
        }
        self.rejected += other.rejected;
        self.deadline_missed += other.deadline_missed;
        self.failed += other.failed;
        self.queue_ns.merge(&other.queue_ns);
        self.service_ns.merge(&other.service_ns);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.reloads += other.reloads;
        self.reload_failures += other.reload_failures;
    }

    pub(crate) fn merge_batch_map(&mut self, map: BTreeMap<usize, u64>) {
        for (size, n) in map {
            *self.batch_histogram.entry(size).or_insert(0) += n;
        }
    }

    /// Mean samples per executed batch (0 if nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_metrics_sum_into_stats() {
        let registry = Registry::new();
        let m = ModelMetrics::register(&registry, "test");
        m.batches.inc();
        m.samples.add(3);
        m.batch_samples.record(3);
        m.queue_ns.record(1_000);
        m.queue_ns.record(2_000);
        m.service_ns.record(5_000);
        m.shed.inc();
        m.deadline_missed.inc();
        m.failed.inc();
        m.peak_queue_depth.set_max(7.0);
        m.reloads.add(2);
        m.reload_generation.set(1.0);
        let stats = m.to_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.deadline_missed, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.queue_ns.count(), 2);
        assert_eq!(stats.service_ns.count(), 1);
        assert_eq!(stats.peak_queue_depth, 7);
        assert_eq!(stats.reloads, 2);
        assert_eq!(stats.mean_batch(), 3.0);
        // Re-registering returns handles to the same series.
        let again = ModelMetrics::register(&registry, "test");
        assert_eq!(again.samples.get(), 3);
        // The per-model series render in the Prometheus exposition.
        let text = registry.metrics_text();
        assert!(text.contains("fast_serve_samples_total{model=\"test\"} 3"));
        assert!(text.contains("fast_serve_queue_ns_count{model=\"test\"} 2"));
    }

    #[test]
    fn merge_accumulates_views() {
        let registry = Registry::new();
        let a = ModelMetrics::register(&registry, "a");
        let b = ModelMetrics::register(&registry, "b");
        a.samples.add(2);
        a.batches.inc();
        b.samples.add(5);
        b.batches.inc();
        b.peak_queue_depth.set_max(4.0);
        let mut total = a.to_stats();
        total.merge(b.to_stats());
        total.merge_batch_map(BTreeMap::from([(2, 1)]));
        total.merge_batch_map(BTreeMap::from([(5, 1), (2, 1)]));
        assert_eq!(total.samples, 7);
        assert_eq!(total.peak_queue_depth, 4);
        assert_eq!(total.batch_histogram.get(&2), Some(&2));
        assert_eq!(total.batch_histogram.get(&5), Some(&1));
    }
}
