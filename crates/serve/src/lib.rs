//! Batched BFP inference serving for FAST-trained models (DESIGN.md §8,
//! §14).
//!
//! Training re-quantizes FP32 master weights on every forward pass because
//! the FAST controller may reassign per-layer formats between iterations
//! (paper Algorithm 1). At deployment the weights and the format assignment
//! are frozen, so that work is pure overhead. This crate is the serving
//! half of the system:
//!
//! * [`CompiledModel`] — a trained [`fast_nn::Sequential`] frozen for
//!   inference: each layer's weights are quantized to its configured BFP
//!   format once (deterministically, so replicas are bit-identical) and
//!   replayed from a cache on every request; activations are still
//!   quantized per request, preserving the fake-quant fidelity of
//!   DESIGN.md §3.
//! * [`Server`] — one shared MPMC work queue per resident model, pulled
//!   from by that model's replica workers, with shape-bucketed continuous
//!   batching: an idle worker ships whatever is queued (up to
//!   [`BatchConfig::max_batch`]) instead of holding batches open, so
//!   backlog fills batches and light load pays one forward of latency.
//!   Several models can be resident at once ([`Server::builder`]), each
//!   with its own precision profile, exec/SR mode, and hot-reload
//!   generation.
//! * [`ServeRequest`] / [`ServeError`] — the typed request surface: model
//!   routing, per-request deadlines, deadline-aware admission control
//!   (reject-fast load shedding), and every failure mode as a typed value.
//! * [`ServeStats`] — batch-size histograms plus queue-residency and
//!   service-time [`LatencyHistogram`]s, shed/missed counters, and a
//!   queue-depth gauge.
//!
//! ```
//! use fast_nn::{models::mlp, set_uniform_precision, LayerPrecision};
//! use fast_serve::{BatchConfig, CompiledModel, Server};
//! use fast_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = mlp(&[4, 16, 2], &mut rng);
//! set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
//! let server = Server::start(
//!     vec![CompiledModel::compile(model, 0)],
//!     BatchConfig::default(),
//! );
//! let logits = server.infer(Tensor::zeros(vec![1, 4]));
//! assert_eq!(logits.shape(), &[1, 2]);
//! let stats = server.shutdown();
//! assert_eq!(stats.samples, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod compiled;
mod request;
mod server;
mod stats;

pub use batcher::BatchConfig;
pub use compiled::CompiledModel;
pub use request::{Outcome, Pending, ServeError, ServeRequest};
pub use server::{Server, ServerBuilder};
pub use stats::{LatencyHistogram, ServeStats};
