//! Batched BFP inference serving for FAST-trained models (DESIGN.md §8).
//!
//! Training re-quantizes FP32 master weights on every forward pass because
//! the FAST controller may reassign per-layer formats between iterations
//! (paper Algorithm 1). At deployment the weights and the format assignment
//! are frozen, so that work is pure overhead. This crate is the serving
//! half of the system:
//!
//! * [`CompiledModel`] — a trained [`fast_nn::Sequential`] frozen for
//!   inference: each layer's weights are quantized to its configured BFP
//!   format once (deterministically, so replicas are bit-identical) and
//!   replayed from a cache on every request; activations are still
//!   quantized per request, preserving the fake-quant fidelity of
//!   DESIGN.md §3.
//! * [`BatchConfig`] — dynamic micro-batching policy: coalesce queued
//!   single-sample requests into batches of up to `max_batch`, holding a
//!   batch open at most `max_wait`.
//! * [`Server`] — N worker threads, each owning a replica, behind a
//!   round-robin dispatcher; [`ServeStats`] reports batch-size histograms.
//!
//! ```
//! use fast_nn::{models::mlp, set_uniform_precision, LayerPrecision};
//! use fast_serve::{BatchConfig, CompiledModel, Server};
//! use fast_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = mlp(&[4, 16, 2], &mut rng);
//! set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
//! let server = Server::start(
//!     vec![CompiledModel::compile(model, 0)],
//!     BatchConfig::default(),
//! );
//! let logits = server.infer(Tensor::zeros(vec![1, 4]));
//! assert_eq!(logits.shape(), &[1, 2]);
//! let stats = server.shutdown();
//! assert_eq!(stats.samples, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod compiled;
mod server;

pub use batcher::BatchConfig;
pub use compiled::CompiledModel;
pub use server::{Pending, ServeStats, Server};
