//! Dynamic micro-batching: coalescing single-sample requests into batched
//! forwards and splitting the results back out (DESIGN.md §8, §14).
//!
//! Batching is transparent because every per-sample computation in the
//! forward path is independent along the batch dimension: activations are
//! quantized in groups that never cross samples (`AlongRow` groups live
//! inside one row; `AlongCol` im2col groups live inside one output-position
//! column), and the GEMM accumulates each output row in a fixed order
//! regardless of how many other rows are in flight. A coalesced batch
//! therefore returns bit-identical results to per-request forwards — the
//! `batching` tests and `crates/serve/tests/proptests.rs` pin this.

use crate::request::Response;
use fast_tensor::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Batching policy for the dispatcher.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum samples coalesced into one forward pass.
    pub max_batch: usize,
    /// Compatibility knob from the round-robin dispatcher, which held an
    /// under-full batch open for up to this long. Continuous batching
    /// (DESIGN.md §14) never holds a batch: an idle worker ships whatever
    /// is queued and stragglers join the next batch at its boundary, so
    /// this field is **ignored** — and has been since the dispatch rebuild.
    /// It is now deprecated so the no-op stops being silent: starting a
    /// server with a non-zero `max_wait` also bumps the
    /// `fast_serve_config_warnings_total{warning="max_wait_ignored"}`
    /// counter on the server's registry, so a fleet can audit for configs
    /// still setting it. Use [`BatchConfig::no_wait`] or struct update from
    /// `BatchConfig::default()` instead of writing the field.
    #[deprecated(
        since = "0.1.0",
        note = "continuous batching never holds a batch open; the value is ignored \
                (a non-zero value is surfaced via fast_serve_config_warnings_total)"
    )]
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    /// 8-sample batches.
    fn default() -> Self {
        #[allow(deprecated)]
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
        }
    }
}

impl BatchConfig {
    /// A config with the given batch cap. (Historical name: under the old
    /// round-robin dispatcher this disabled the batch-hold window; the
    /// continuous-batching dispatcher never holds a batch open, so this is
    /// now just a `max_batch` constructor.)
    pub fn no_wait(max_batch: usize) -> Self {
        #[allow(deprecated)]
        BatchConfig {
            max_batch,
            max_wait: Duration::ZERO,
        }
    }

    /// Whether this config sets the deprecated, ignored `max_wait` knob to
    /// a non-zero value (surfaced as a config warning at server start).
    pub(crate) fn sets_ignored_max_wait(&self) -> bool {
        #[allow(deprecated)]
        let w = self.max_wait;
        w > Duration::ZERO
    }
}

/// One queued inference request: an input tensor (leading dimension =
/// samples, usually 1), the channel its typed response is sent back on,
/// and the admission metadata the dispatcher needs (queue-residency
/// accounting and the optional absolute deadline).
#[derive(Debug)]
pub(crate) struct Request {
    pub input: Tensor,
    pub resp: mpsc::Sender<Response>,
    pub enqueued_at: Instant,
    pub deadline: Option<Instant>,
}

/// Number of samples a request input carries (its leading dimension).
pub(crate) fn sample_count(input: &Tensor) -> usize {
    assert!(input.rank() >= 1, "request input must have a batch dim");
    input.shape()[0]
}

/// Stacks request inputs along the leading (sample) dimension.
///
/// # Panics
///
/// Panics if `inputs` is empty or the trailing dimensions disagree.
pub(crate) fn stack_inputs(inputs: &[&Tensor]) -> Tensor {
    let first = inputs.first().expect("cannot stack an empty batch");
    let tail = &first.shape()[1..];
    let mut total = 0usize;
    for t in inputs {
        assert_eq!(
            &t.shape()[1..],
            tail,
            "all batched requests must share per-sample shape"
        );
        total += sample_count(t);
    }
    let mut shape = vec![total];
    shape.extend_from_slice(tail);
    let mut data = Vec::with_capacity(total * tail.iter().product::<usize>().max(1));
    for t in inputs {
        data.extend_from_slice(t.data());
    }
    Tensor::from_vec(shape, data)
}

/// Splits a batched output back into per-request tensors.
///
/// The model may emit several output rows per input sample (e.g. the
/// transformer emits `seq_len` logit rows per sequence), so the split is
/// proportional: with `R` output rows for `S` total samples, each sample
/// owns `R / S` consecutive rows.
///
/// # Panics
///
/// Panics if the output's leading dimension is not divisible by the total
/// sample count.
pub(crate) fn split_output(out: &Tensor, samples: &[usize]) -> Vec<Tensor> {
    let total: usize = samples.iter().sum();
    let out_rows = out.shape()[0];
    assert!(
        total > 0 && out_rows.is_multiple_of(total),
        "output rows {out_rows} not divisible by batch samples {total}"
    );
    let rows_per_sample = out_rows / total;
    let row_width: usize = out.shape()[1..].iter().product::<usize>().max(1);
    let mut pieces = Vec::with_capacity(samples.len());
    let mut row = 0usize;
    for &s in samples {
        let rows = s * rows_per_sample;
        let mut shape = vec![rows];
        shape.extend_from_slice(&out.shape()[1..]);
        let start = row * row_width;
        let end = (row + rows) * row_width;
        pieces.push(Tensor::from_vec(shape, out.data()[start..end].to_vec()));
        row += rows;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_and_split_round_trip() {
        let a = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![2, 3], vec![4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let stacked = stack_inputs(&[&a, &b]);
        assert_eq!(stacked.shape(), &[3, 3]);
        let back = split_output(&stacked, &[1, 2]);
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
    }

    #[test]
    fn split_handles_multiple_rows_per_sample() {
        // 2 samples, 4 output rows → 2 rows per sample (transformer-style).
        let out = Tensor::from_vec(vec![4, 2], (0..8).map(|v| v as f32).collect());
        let pieces = split_output(&out, &[1, 1]);
        assert_eq!(pieces[0].shape(), &[2, 2]);
        assert_eq!(pieces[0].data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(pieces[1].data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn stack_preserves_image_shapes() {
        let a = Tensor::zeros(vec![1, 3, 4, 4]);
        let b = Tensor::zeros(vec![1, 3, 4, 4]);
        let stacked = stack_inputs(&[&a, &b]);
        assert_eq!(stacked.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "per-sample shape")]
    fn mismatched_shapes_panic() {
        let a = Tensor::zeros(vec![1, 3]);
        let b = Tensor::zeros(vec![1, 4]);
        let _ = stack_inputs(&[&a, &b]);
    }
}
