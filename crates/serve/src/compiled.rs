//! Frozen, forward-only models for serving.

use fast_ckpt::{capture_state, restore_state, CkptError, StateDict};
use fast_nn::{ExecMode, Layer, Sequential, Session, SrMode};
use fast_tensor::Tensor;

/// A trained model compiled for inference serving.
///
/// Compilation freezes the model: forwards run under an inference
/// [`Session`] (`train = false`, `freeze_weights = true`), so
///
/// * each GEMM layer quantizes its weights to the layer's configured
///   [`fast_nn::NumericFormat`] **once** — with a deterministic bit source,
///   so every replica holds bit-identical weights — and replays the cached
///   copy on subsequent requests (DESIGN.md §8);
/// * activations are still quantized per request, preserving the
///   fake-quantization fidelity argument of DESIGN.md §3 — for
///   deterministic rounding the compiled forward is bit-identical to the
///   training-path evaluation forward;
/// * no activations are stashed for a backward pass.
///
/// The weight caches live inside the layers and are invalidated by any
/// weight update (parameter visitation), so a model can be updated through
/// [`CompiledModel::model_mut`] — e.g. reloaded from a checkpoint — and the
/// next request re-freezes it automatically.
#[derive(Debug)]
pub struct CompiledModel {
    model: Sequential,
    session: Session,
}

impl CompiledModel {
    /// Freezes `model` for serving. `seed` feeds the session bit source
    /// used for *activation* stochastic rounding, if any layer's activation
    /// format requests it; weight-cache builds do not consume it.
    pub fn compile(model: Sequential, seed: u64) -> Self {
        CompiledModel {
            model,
            session: Session::inference(seed),
        }
    }

    /// Runs one forward pass. The first call after compilation (or after a
    /// weight update) builds the layer weight caches; subsequent calls
    /// replay them.
    pub fn infer(&mut self, input: &Tensor) -> Tensor {
        self.model.forward(input, &mut self.session)
    }

    /// Eagerly builds every layer's weight cache by running one forward
    /// pass on `sample`, so the first real request does not pay the
    /// quantization cost. Returns the warm-up output (useful for checking
    /// the served model before exposing it).
    pub fn warm(&mut self, sample: &Tensor) -> Tensor {
        self.infer(sample)
    }

    /// The underlying model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the underlying model, e.g. to load updated
    /// weights. Weight updates through parameter visitation invalidate the
    /// layer caches; the next request re-quantizes.
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Unfreezes the model, returning it for further training.
    pub fn into_model(self) -> Sequential {
        self.model
    }

    /// Selects the quantized-GEMM execution mode for this replica's
    /// requests (DESIGN.md §11).
    ///
    /// The default, [`ExecMode::Replay`], replays the training kernels'
    /// f32 arithmetic bit-for-bit; [`ExecMode::Integer`] computes packed×
    /// packed GEMMs with i8×i8→i32 inner products and is faster but not
    /// bit-identical to the training forward (it is still within the §11
    /// accuracy gates). The mode is per-replica serving configuration, not
    /// model state: it is never written to checkpoints, and [`Self::apply_state`]
    /// hot reloads leave it untouched.
    ///
    /// ```
    /// use fast_nn::{ExecMode, Sequential};
    /// use fast_serve::CompiledModel;
    ///
    /// let mut replica = CompiledModel::compile(Sequential::new(), 0);
    /// // Opt this replica into the integer-domain fast path.
    /// replica.set_exec_mode(ExecMode::Integer);
    /// ```
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.session.exec_mode = mode;
    }

    /// Builder-style variant of [`Self::set_exec_mode`] for use at
    /// compile time:
    ///
    /// ```
    /// use fast_nn::{ExecMode, Sequential};
    /// use fast_serve::CompiledModel;
    ///
    /// let replica =
    ///     CompiledModel::compile(Sequential::new(), 0).with_exec_mode(ExecMode::Integer);
    /// # let _ = replica;
    /// ```
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.set_exec_mode(mode);
        self
    }

    /// The execution mode this replica serves under.
    pub fn exec_mode(&self) -> ExecMode {
        self.session.exec_mode
    }

    /// Selects the stochastic-rounding noise source for this replica's
    /// requests (DESIGN.md §12).
    ///
    /// Only matters when a layer's *activation* format uses stochastic
    /// rounding (frozen weight caches always build from their own
    /// deterministic source): under [`SrMode::Counter`] each SR operand
    /// draws order-independent counter noise, so the quantization itself can
    /// shard across worker threads. Like [`Self::set_exec_mode`] this is
    /// per-replica serving configuration — [`Self::apply_state`] hot
    /// reloads leave it untouched.
    pub fn set_sr_mode(&mut self, mode: SrMode) {
        self.session.sr_mode = mode;
    }

    /// Builder-style variant of [`Self::set_sr_mode`] for use at compile
    /// time.
    pub fn with_sr_mode(mut self, mode: SrMode) -> Self {
        self.set_sr_mode(mode);
        self
    }

    /// The stochastic-rounding mode this replica serves under.
    pub fn sr_mode(&self) -> SrMode {
        self.session.sr_mode
    }

    /// Replaces the model's weights (and buffers/formats) with a decoded
    /// checkpoint `model` section — the replica half of
    /// [`Server::reload`](crate::Server::reload).
    ///
    /// The restore walks [`fast_nn::Layer::visit_state`], which bumps each
    /// layer's weight version exactly like an optimizer step would, so the
    /// frozen-weight caches re-quantize from the new masters on the next
    /// request; for deterministic-rounding formats the swap is
    /// bit-transparent (a request after the swap equals an eval forward of
    /// the restored model).
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] if the artifact does not match this model's
    /// architecture; the model is rolled back to its pre-call state, so a
    /// failed reload keeps serving the old weights.
    pub fn apply_state(&mut self, state: &StateDict) -> Result<(), CkptError> {
        let backup = capture_state(&mut self.model);
        match restore_state(&mut self.model, state) {
            Ok(()) => {
                // A mid-training artifact carries per-layer sensitivity
                // caches (`saved_input`/`last_grad` — every optional-tensor
                // entry is training-only state). Serving never reads them;
                // drop them so each replica does not pin a batch worth of
                // activations for the lifetime of the swap.
                Layer::visit_state(&mut self.model, &mut ClearTransients);
                Ok(())
            }
            Err(e) => {
                restore_state(&mut self.model, &backup)
                    .expect("backup state restores into the model it was captured from");
                Err(e)
            }
        }
    }
}

/// A state walk that discards the optional per-layer caches (training-only
/// state) and leaves everything else untouched.
struct ClearTransients;

impl fast_ckpt::StateVisitor for ClearTransients {
    fn enter(&mut self, _scope: &str) {}
    fn exit(&mut self) {}
    fn tensor(&mut self, _name: &str, _value: &mut fast_tensor::Tensor) {}
    fn opt_tensor(&mut self, _name: &str, value: &mut Option<fast_tensor::Tensor>) {
        *value = None;
    }
    fn tensor_seq(&mut self, _name: &str, _value: &mut Vec<fast_tensor::Tensor>) {}
    fn scalar_u64(&mut self, _name: &str, _value: &mut u64) {}
    fn scalar_f32(&mut self, _name: &str, _value: &mut f32) {}
    fn u32s(&mut self, _name: &str, _value: &mut Vec<u32>) {}
    fn f32s(&mut self, _name: &str, _value: &mut Vec<f32>) {}
    fn bytes(&mut self, _name: &str, _value: &mut Vec<u8>) {}
    fn invalid(&mut self, name: &str, why: String) {
        debug_assert!(false, "clearing transients rejected `{name}`: {why}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::{set_uniform_precision, Dense, LayerPrecision, Relu};
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Dense::new(8, 16, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(16, 4, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    }

    fn sample() -> Tensor {
        Tensor::from_vec(vec![1, 8], (0..8).map(|i| 0.1 * i as f32 - 0.3).collect())
    }

    #[test]
    fn compiled_matches_eval_forward() {
        let x = sample();
        let mut train_path = model(3);
        let want = train_path.forward(&x, &mut Session::eval(0));
        let mut compiled = CompiledModel::compile(model(3), 0);
        assert_eq!(compiled.warm(&x), want);
        assert_eq!(compiled.infer(&x), want, "cache replay must be identical");
    }

    #[test]
    fn replicas_are_bit_identical() {
        let x = sample();
        let mut a = CompiledModel::compile(model(5), 0);
        let mut b = CompiledModel::compile(model(5), 0);
        assert_eq!(a.infer(&x), b.infer(&x));
    }

    #[test]
    fn apply_state_drops_training_caches() {
        // A mid-training artifact carries sensitivity caches; the serving
        // replica must not keep them resident after the swap.
        let mut trained = model(9);
        let mut s = Session::new(0);
        s.record_sensitivity = true;
        let x = sample();
        let y = trained.forward(&x, &mut s);
        let _ = trained.backward(&y, &mut s);
        let dict = capture_state(&mut trained);
        assert!(
            dict.iter().any(|(n, _)| n.ends_with("saved_input")),
            "precondition: the artifact carries training caches"
        );

        let mut compiled = CompiledModel::compile(model(9), 0);
        compiled.apply_state(&dict).unwrap();
        let after = capture_state(compiled.model_mut());
        assert!(
            !after
                .iter()
                .any(|(n, _)| n.ends_with("saved_input") || n.ends_with("last_grad")),
            "serving replicas must not pin training caches"
        );
        // And the swapped weights still serve the trained model's outputs.
        let mut reference = CompiledModel::compile(trained, 0);
        assert_eq!(compiled.infer(&x), reference.infer(&x));
    }

    #[test]
    fn integer_mode_is_per_replica_and_stays_close_to_replay() {
        let x = sample();
        let mut replay = CompiledModel::compile(model(11), 0);
        replay.set_exec_mode(ExecMode::Replay); // independent of FAST_QGEMM_MODE
        let mut integer = CompiledModel::compile(model(11), 0).with_exec_mode(ExecMode::Integer);
        assert_eq!(integer.exec_mode(), ExecMode::Integer);

        let want = replay.infer(&x);
        let got = integer.infer(&x);
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.data().iter().zip(want.data()) {
            let tol = 1e-5 * w.abs().max(1.0);
            assert!((g - w).abs() <= tol, "integer {g} vs replay {w}");
        }

        // A checkpoint hot reload must not reset the serving configuration.
        let dict = capture_state(replay.model_mut());
        integer.apply_state(&dict).unwrap();
        assert_eq!(integer.exec_mode(), ExecMode::Integer);
    }

    #[test]
    fn counter_sr_mode_is_per_replica_and_replicas_match() {
        use fast_bfp::BfpFormat;
        use fast_nn::NumericFormat;
        // An SR *activation* format is the case the serving SR mode exists
        // for: activations re-quantize per request.
        let sr_precision = LayerPrecision {
            weights: NumericFormat::bfp_nearest(BfpFormat::high()),
            activations: NumericFormat::bfp_stochastic(BfpFormat::high()),
            gradients: NumericFormat::bfp_stochastic(BfpFormat::high()),
        };
        let with_sr = |seed: u64| {
            let mut m = model(13);
            set_uniform_precision(&mut m, sr_precision);
            CompiledModel::compile(m, seed).with_sr_mode(SrMode::Counter)
        };
        let x = sample();
        let mut a = with_sr(0);
        let mut b = with_sr(0);
        assert_eq!(a.sr_mode(), SrMode::Counter);
        // Same seed → same counter noise → bit-identical replicas.
        assert_eq!(a.infer(&x), b.infer(&x));
        // A different seed decorrelates the SR activation noise.
        let mut c = with_sr(1);
        assert_ne!(a.infer(&x), c.infer(&x));
        // A checkpoint hot reload must not reset the serving configuration.
        let mut trained = model(13);
        set_uniform_precision(&mut trained, sr_precision);
        let dict = capture_state(&mut trained);
        a.apply_state(&dict).unwrap();
        assert_eq!(a.sr_mode(), SrMode::Counter);
    }

    #[test]
    fn weight_update_refreezes() {
        let x = sample();
        let mut compiled = CompiledModel::compile(model(7), 0);
        let before = compiled.infer(&x);
        compiled.model_mut().visit_params(&mut |p| {
            if p.decay {
                p.value.data_mut()[0] += 1.0;
            }
        });
        let after = compiled.infer(&x);
        assert_ne!(before, after, "update must invalidate the frozen cache");
        // And the refrozen model again matches the training-path forward.
        let mut reference = model(7);
        reference.visit_params(&mut |p| {
            if p.decay {
                p.value.data_mut()[0] += 1.0;
            }
        });
        assert_eq!(after, reference.forward(&x, &mut Session::eval(0)));
    }
}
