//! The serving engine: replicated workers behind a round-robin dispatcher.
//!
//! Each worker thread owns one [`CompiledModel`] replica and one request
//! queue; [`Server::submit`] round-robins requests across the queues. A
//! worker drains its queue into a batch (up to `max_batch` samples, holding
//! the batch open for at most `max_wait`), runs one coalesced forward, and
//! sends each requester its slice of the output (DESIGN.md §8).

use crate::batcher::{sample_count, split_output, stack_inputs, BatchConfig, Request};
use crate::compiled::CompiledModel;
use fast_ckpt::{Artifact, CkptError, StateDict, SECTION_MODEL};
use fast_tensor::Tensor;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Aggregate serving statistics, merged across workers at shutdown.
#[derive(Debug, Default, Clone)]
pub struct ServeStats {
    /// Coalesced forward passes executed.
    pub batches: u64,
    /// Total samples served.
    pub samples: u64,
    /// `batch size → count` over all executed batches.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Hot weight swaps applied ([`Server::reload`]); counts one per worker
    /// per accepted reload, so a fully propagated reload adds `workers()`.
    pub reloads: u64,
    /// Reloads a worker rejected (artifact/architecture mismatch); the
    /// worker keeps serving its previous weights.
    pub reload_failures: u64,
}

impl ServeStats {
    fn record(&mut self, batch_samples: usize) {
        self.batches += 1;
        self.samples += batch_samples as u64;
        *self.batch_histogram.entry(batch_samples).or_insert(0) += 1;
    }

    fn merge(&mut self, other: ServeStats) {
        self.batches += other.batches;
        self.samples += other.samples;
        for (size, n) in other.batch_histogram {
            *self.batch_histogram.entry(size).or_insert(0) += n;
        }
        self.reloads += other.reloads;
        self.reload_failures += other.reload_failures;
    }

    /// Mean samples per executed batch (0 if nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }
}

/// A response handle returned by [`Server::submit`].
#[derive(Debug)]
pub struct Pending(mpsc::Receiver<Tensor>);

impl Pending {
    /// Blocks until the result arrives.
    ///
    /// # Panics
    ///
    /// Panics if the request was dropped instead of answered — the model
    /// rejected it (e.g. a shape the model cannot take) or the worker died.
    pub fn wait(self) -> Tensor {
        self.0.recv().expect("serve worker dropped the request")
    }
}

struct QueueState {
    requests: VecDeque<Request>,
    /// A pending hot weight swap: the decoded `model` section, shared across
    /// all workers. Latest wins — a newer reload replaces an unapplied one.
    reload: Option<Arc<StateDict>>,
    shutdown: bool,
}

struct WorkerQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl WorkerQueue {
    fn new() -> Self {
        WorkerQueue {
            state: Mutex::new(QueueState {
                requests: VecDeque::new(),
                reload: None,
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }
}

/// Whether the request at the queue front can join the staged batch:
/// it must fit under `max` samples and share the batch head's per-sample
/// shape (so one oddly shaped request can never poison its neighbours).
fn front_can_join(state: &QueueState, batch: &[Request], samples: usize, max: usize) -> bool {
    match state.requests.front() {
        // An empty batch always takes the front request, even if it alone
        // exceeds max_batch (a pre-batched client request).
        Some(r) => {
            batch.is_empty()
                || (samples + sample_count(&r.input) <= max
                    && r.input.shape()[1..] == batch[0].input.shape()[1..])
        }
        None => false,
    }
}

/// Moves queued requests into `batch` while the front request can join.
fn drain_into(state: &mut QueueState, batch: &mut Vec<Request>, samples: &mut usize, max: usize) {
    while *samples < max && front_can_join(state, batch, *samples, max) {
        let r = state.requests.pop_front().expect("front exists");
        *samples += sample_count(&r.input);
        batch.push(r);
    }
}

fn worker_loop(mut model: CompiledModel, queue: Arc<WorkerQueue>, cfg: BatchConfig) -> ServeStats {
    let mut stats = ServeStats::default();
    loop {
        let (batch, reload) = {
            let mut state = queue.state.lock().expect("serve queue poisoned");
            while state.requests.is_empty() && state.reload.is_none() {
                if state.shutdown {
                    return stats;
                }
                state = queue.ready.wait(state).expect("serve queue poisoned");
            }
            let reload = state.reload.take();
            let mut batch = Vec::new();
            let mut samples = 0usize;
            drain_into(&mut state, &mut batch, &mut samples, cfg.max_batch);
            // Hold the batch open briefly to coalesce stragglers — but not
            // if the queue front already cannot join (full batch, or a
            // different shape head-of-line): waiting could never grow the
            // batch, and shipping now unblocks the requests behind it.
            // (A reload-only wake skips the hold entirely — there is no
            // batch to grow, and the swap should land now.)
            if !batch.is_empty() && samples < cfg.max_batch && !cfg.max_wait.is_zero() {
                let deadline = Instant::now() + cfg.max_wait;
                while samples < cfg.max_batch && !state.shutdown {
                    if !state.requests.is_empty()
                        && !front_can_join(&state, &batch, samples, cfg.max_batch)
                    {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = queue
                        .ready
                        .wait_timeout(state, deadline - now)
                        .expect("serve queue poisoned");
                    state = guard;
                    if state.reload.is_some() {
                        // A hot swap landed mid-hold: ship the batch as-is
                        // (its members all predate the swap) and leave the
                        // queue untouched — anything still queued must be
                        // served after the new weights are applied.
                        break;
                    }
                    drain_into(&mut state, &mut batch, &mut samples, cfg.max_batch);
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            (batch, reload)
        }; // lock released before the forward pass (and the swap) run
        if let Some(state) = reload {
            // Swap weights *before* serving the drained batch: any request
            // submitted after `Server::reload` returned can only sit behind
            // the reload in this queue, so it is guaranteed the new
            // weights. (Requests already queued when the reload landed may
            // be answered by either version — the usual hot-swap contract.)
            // A rejected artifact rolls the model back; the worker keeps
            // serving the old weights and the failure is counted.
            match model.apply_state(&state) {
                Ok(()) => stats.reloads += 1,
                Err(_) => stats.reload_failures += 1,
            }
        }
        if batch.is_empty() {
            continue;
        }
        if let [lone] = &batch[..] {
            // Batch of one: skip the stack/split copies entirely.
            if serve_one(&mut model, lone) {
                stats.record(sample_count(&lone.input));
            }
        } else if serve_coalesced(&mut model, &batch) {
            stats.record(batch.iter().map(|r| sample_count(&r.input)).sum());
        } else {
            // The coalesced forward panicked — some request in the batch is
            // one the model rejects at the value level (e.g. an out-of-vocab
            // token), which shape-gated coalescing cannot screen out. Retry
            // each request alone so only the poisonous one fails: its
            // response sender is dropped and the client's
            // [`Pending::wait`] fails loudly instead of hanging, while the
            // neighbours still get their answers.
            for req in &batch {
                if serve_one(&mut model, req) {
                    stats.record(sample_count(&req.input));
                }
            }
        }
    }
}

/// Runs one request through the model, catching a model panic (bad shape,
/// malformed tokens, …) so a rejected request cannot kill the worker and
/// strand every later request on its queue. Returns whether it was served.
///
/// The model carries no cross-request state that a mid-forward unwind could
/// corrupt (weight caches are rebuilt from versioned masters), so resuming
/// with the same replica is sound. Note the process-global panic hook still
/// runs for each rejection (one stderr backtrace per bad request, plus one
/// for the coalesced attempt it poisoned) — a library must not swap the
/// global hook; embedders who consider rejects routine can install a
/// quieter hook themselves.
fn serve_one(model: &mut CompiledModel, req: &Request) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let out = model.infer(&req.input);
        // A dropped receiver means the client gave up waiting.
        let _ = req.resp.send(out);
    }))
    .is_ok()
}

/// Runs a coalesced batch through the model; on a panic no response has
/// been sent yet (sends happen strictly after the forward and the split),
/// so the caller can safely retry the requests one by one.
fn serve_coalesced(model: &mut CompiledModel, batch: &[Request]) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
        let samples: Vec<usize> = inputs.iter().map(|t| sample_count(t)).collect();
        let out = model.infer(&stack_inputs(&inputs));
        for (req, piece) in batch.iter().zip(split_output(&out, &samples)) {
            let _ = req.resp.send(piece);
        }
    }))
    .is_ok()
}

/// A running inference service: N worker threads, each owning a
/// [`CompiledModel`] replica and a request queue, behind a round-robin
/// dispatcher.
///
/// ```
/// use fast_nn::{Dense, Sequential};
/// use fast_serve::{BatchConfig, CompiledModel, Server};
/// use fast_tensor::Tensor;
/// use rand::SeedableRng;
///
/// // Two bit-identical replicas (same build seed).
/// let replicas: Vec<CompiledModel> = (0..2)
///     .map(|_| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(9);
///         let model = Sequential::new().push(Dense::new(4, 2, true, &mut rng));
///         CompiledModel::compile(model, 0)
///     })
///     .collect();
/// let server = Server::start(replicas, BatchConfig::default());
/// let y = server.infer(Tensor::from_vec(vec![1, 4], vec![0.1, 0.2, 0.3, 0.4]));
/// assert_eq!(y.shape(), &[1, 2]);
/// server.shutdown();
/// ```
pub struct Server {
    queues: Vec<Arc<WorkerQueue>>,
    workers: Vec<JoinHandle<ServeStats>>,
    next: AtomicUsize,
    generation: AtomicU64,
}

impl Server {
    /// Starts one worker thread per replica.
    ///
    /// Replicas are typically built from the same seed so every worker
    /// serves bit-identical results; [`CompiledModel::compile`] quantizes
    /// weights deterministically, so this holds even across processes.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn start(replicas: Vec<CompiledModel>, cfg: BatchConfig) -> Server {
        assert!(!replicas.is_empty(), "need at least one model replica");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let mut queues = Vec::with_capacity(replicas.len());
        let mut workers = Vec::with_capacity(replicas.len());
        for replica in replicas {
            let queue = Arc::new(WorkerQueue::new());
            let worker_queue = Arc::clone(&queue);
            workers.push(std::thread::spawn(move || {
                worker_loop(replica, worker_queue, cfg)
            }));
            queues.push(queue);
        }
        Server {
            queues,
            workers,
            next: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of worker replicas.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The weight generation currently being rolled out: 0 for the compiled
    /// weights, bumped by every accepted [`Server::reload`].
    pub fn weight_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Hot-swaps every replica's weights from a checkpoint artifact's
    /// `model` section without restarting the server or dropping a single
    /// request.
    ///
    /// The section is decoded and validated once, then shared (`Arc`) to
    /// every worker queue; each worker applies it at its next batch
    /// boundary — any request submitted after this method returns is served
    /// with the new weights, while requests already in flight may see
    /// either version. Inside the replica the swap rides the existing
    /// weight-version mechanism (the restore walk bumps layer versions, so
    /// frozen caches re-quantize deterministically), which makes the swap
    /// bit-transparent for deterministic-rounding formats: post-swap
    /// responses equal an eval forward of the restored model.
    ///
    /// Returns the new weight generation. [`ServeStats::reloads`] counts
    /// the per-worker applications (a fully propagated reload adds
    /// [`Server::workers`]); an artifact that decodes but does not match
    /// the replica architecture is rejected worker-side, rolled back, and
    /// counted in [`ServeStats::reload_failures`].
    ///
    /// # Errors
    ///
    /// [`CkptError::MissingSection`] / decode errors if the artifact has no
    /// well-formed `model` section.
    pub fn reload(&self, artifact: &Artifact) -> Result<u64, CkptError> {
        let state = Arc::new(StateDict::from_bytes(artifact.require(SECTION_MODEL)?)?);
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        for queue in &self.queues {
            let mut qs = queue.state.lock().expect("serve queue poisoned");
            qs.reload = Some(Arc::clone(&state));
            drop(qs);
            queue.ready.notify_all();
        }
        Ok(generation)
    }

    /// Enqueues a request (leading dimension = samples, usually 1) on the
    /// next worker in round-robin order and returns a handle to await the
    /// result.
    pub fn submit(&self, input: Tensor) -> Pending {
        let (tx, rx) = mpsc::channel();
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        let queue = &self.queues[idx];
        {
            let mut state = queue.state.lock().expect("serve queue poisoned");
            state.requests.push_back(Request { input, resp: tx });
        }
        queue.ready.notify_one();
        Pending(rx)
    }

    /// Convenience: submit and block for the result.
    pub fn infer(&self, input: Tensor) -> Tensor {
        self.submit(input).wait()
    }

    /// Signals every worker, drains remaining requests, joins the threads,
    /// and returns the merged serving statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop()
    }

    fn stop(&mut self) -> ServeStats {
        for queue in &self.queues {
            let mut state = queue.state.lock().expect("serve queue poisoned");
            state.shutdown = true;
            drop(state);
            queue.ready.notify_all();
        }
        let mut stats = ServeStats::default();
        for handle in self.workers.drain(..) {
            stats.merge(handle.join().expect("serve worker panicked"));
        }
        stats
    }
}

impl Drop for Server {
    /// Dropping without [`Server::shutdown`] still stops and joins the
    /// workers (statistics are discarded).
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::{set_uniform_precision, Dense, LayerPrecision, Relu, Sequential};
    use rand::SeedableRng;
    use std::time::Duration;

    fn replica(seed: u64) -> CompiledModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Dense::new(6, 12, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(12, 3, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        CompiledModel::compile(m, 0)
    }

    fn sample(i: usize) -> Tensor {
        Tensor::from_vec(
            vec![1, 6],
            (0..6)
                .map(|j| ((i * 7 + j * 3) % 11) as f32 * 0.1 - 0.5)
                .collect(),
        )
    }

    #[test]
    fn coalesced_batches_match_per_request_results() {
        // Ground truth: each sample through a lone compiled model.
        let mut reference = replica(1);
        let want: Vec<Tensor> = (0..12).map(|i| reference.infer(&sample(i))).collect();

        // Large max_wait + pre-loaded queue force real coalescing.
        let server = Server::start(
            vec![replica(1)],
            BatchConfig {
                max_batch: 5,
                max_wait: Duration::from_millis(20),
            },
        );
        let pending: Vec<Pending> = (0..12).map(|i| server.submit(sample(i))).collect();
        for (p, w) in pending.into_iter().zip(&want) {
            assert_eq!(&p.wait(), w, "batched result differs from single-sample");
        }
        let stats = server.shutdown();
        assert_eq!(stats.samples, 12);
        assert!(
            stats.batches < 12,
            "12 queued requests should coalesce, got {:?}",
            stats.batch_histogram
        );
        assert!(stats.batch_histogram.keys().all(|&s| s <= 5));
    }

    #[test]
    fn round_robin_spreads_requests_across_workers() {
        let server = Server::start(
            vec![replica(2), replica(2), replica(2)],
            BatchConfig::no_wait(4),
        );
        assert_eq!(server.workers(), 3);
        let pending: Vec<Pending> = (0..9).map(|i| server.submit(sample(i))).collect();
        let outs: Vec<Tensor> = pending.into_iter().map(Pending::wait).collect();
        // All workers hold bit-identical replicas, so identical inputs give
        // identical outputs no matter which worker served them.
        assert_eq!(outs[0], server.infer(sample(0)));
        let stats = server.shutdown();
        assert_eq!(stats.samples, 10);
    }

    #[test]
    fn prebatched_request_larger_than_max_batch_is_served() {
        let server = Server::start(vec![replica(3)], BatchConfig::no_wait(2));
        let big = Tensor::zeros(vec![7, 6]);
        let y = server.infer(big);
        assert_eq!(y.shape(), &[7, 3]);
        let stats = server.shutdown();
        assert_eq!(stats.batch_histogram.get(&7), Some(&1));
    }

    #[test]
    fn rejected_request_fails_loudly_and_worker_keeps_serving() {
        let server = Server::start(vec![replica(5)], BatchConfig::no_wait(4));
        // Wrong width: the model panics on it inside the worker; the
        // request must fail loudly (not hang) and the worker must survive.
        let bad = server.submit(Tensor::zeros(vec![1, 5]));
        let bad_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.wait()));
        assert!(bad_result.is_err(), "rejected request must not hang");
        let y = server.infer(sample(0));
        assert_eq!(y.shape(), &[1, 3], "worker must survive a bad request");
        let stats = server.shutdown();
        assert_eq!(stats.samples, 1, "rejected requests are not counted");
    }

    #[test]
    fn mixed_shapes_never_coalesce() {
        // Queue a [1,6] and a [2,6] (fine together) and a [1,5] (different
        // per-sample shape) while the worker is busy; the odd one must not
        // poison the shape-matched batch.
        let server = Server::start(
            vec![replica(6)],
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(10),
            },
        );
        let good1 = server.submit(sample(1));
        let bad = server.submit(Tensor::zeros(vec![1, 5]));
        let good2 = server.submit(sample(2));
        assert_eq!(good1.wait().shape(), &[1, 3]);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.wait())).is_err(),
            "mis-shaped request must fail alone"
        );
        assert_eq!(good2.wait().shape(), &[1, 3]);
        server.shutdown();
    }

    #[test]
    fn value_poisoned_batch_is_retried_individually() {
        use fast_nn::Embedding;
        // Embedding rejects out-of-vocab tokens at the value level — shape
        // gating cannot screen those out of a coalesced batch.
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            let m = Sequential::new().push(Embedding::new(12, 4, &mut rng));
            CompiledModel::compile(m, 0)
        };
        let tokens = |t: f32| Tensor::from_vec(vec![1, 3], vec![t, 1.0, 2.0]);
        let mut reference = build();
        let want = reference.infer(&tokens(0.0));

        let server = Server::start(
            vec![build()],
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(20),
            },
        );
        let good1 = server.submit(tokens(0.0));
        let poison = server.submit(tokens(99.0)); // out of vocab
        let good2 = server.submit(tokens(0.0));
        assert_eq!(good1.wait(), want, "neighbour must survive the poison");
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poison.wait())).is_err(),
            "poison request must fail loudly"
        );
        assert_eq!(good2.wait(), want, "neighbour must survive the poison");
        let stats = server.shutdown();
        assert_eq!(stats.samples, 2, "only valid requests count as served");
    }

    /// Same architecture as [`replica`], different weights (different seed).
    fn trained_variant(seed: u64) -> fast_nn::Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Dense::new(6, 12, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(12, 3, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    }

    fn model_artifact(model: &mut fast_nn::Sequential) -> fast_ckpt::Artifact {
        let mut artifact = fast_ckpt::Artifact::new();
        artifact.insert(
            fast_ckpt::SECTION_MODEL,
            fast_ckpt::capture_state(model).to_bytes(),
        );
        artifact
    }

    #[test]
    fn reload_swaps_weights_with_zero_dropped_requests() {
        // Ground truth for the new weights: a lone compiled copy.
        let mut new_model = trained_variant(77);
        let artifact = model_artifact(&mut new_model);
        let mut reference = CompiledModel::compile(new_model, 0);
        let want_new: Vec<Tensor> = (0..6).map(|i| reference.infer(&sample(i))).collect();
        let mut old_reference = replica(1);
        let want_old: Vec<Tensor> = (0..6).map(|i| old_reference.infer(&sample(i))).collect();
        assert_ne!(want_old[0], want_new[0], "seeds must give distinct models");

        let server = Server::start(vec![replica(1), replica(1)], BatchConfig::no_wait(4));
        // Pre-reload requests: answered (by either version is acceptable —
        // here they complete before the swap because we wait on them).
        let pre: Vec<Pending> = (0..6).map(|i| server.submit(sample(i))).collect();
        for (p, w) in pre.into_iter().zip(&want_old) {
            assert_eq!(&p.wait(), w, "pre-reload request answered with old weights");
        }
        let generation = server.reload(&artifact).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(server.weight_generation(), 1);
        // Post-reload requests must all be answered — zero drops — and with
        // the new weights (the swap is bit-transparent: responses equal an
        // eval forward of the restored model).
        let post: Vec<Pending> = (0..6).map(|i| server.submit(sample(i))).collect();
        for (p, w) in post.into_iter().zip(&want_new) {
            assert_eq!(&p.wait(), w, "post-reload request must see new weights");
        }
        let stats = server.shutdown();
        assert_eq!(stats.samples, 12, "every request served, none dropped");
        assert_eq!(stats.reloads, 2, "both workers applied the swap");
        assert_eq!(stats.reload_failures, 0);
    }

    #[test]
    fn reload_reaches_idle_workers_by_shutdown() {
        // No traffic at all: the swap must still land on every worker.
        let server = Server::start(
            vec![replica(2), replica(2), replica(2)],
            BatchConfig::no_wait(4),
        );
        let mut new_model = trained_variant(78);
        server.reload(&model_artifact(&mut new_model)).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.reloads, 3);
    }

    #[test]
    fn mismatched_artifact_is_rejected_and_old_weights_keep_serving() {
        let mut reference = replica(9);
        let want = reference.infer(&sample(3));
        let server = Server::start(vec![replica(9)], BatchConfig::no_wait(4));
        // Wrong architecture: a 4->2 dense has differently shaped state.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut wrong = Sequential::new().push(Dense::new(4, 2, true, &mut rng));
        server.reload(&model_artifact(&mut wrong)).unwrap();
        assert_eq!(
            server.infer(sample(3)),
            want,
            "rejected reload must leave the old weights serving"
        );
        let stats = server.shutdown();
        assert_eq!(stats.reloads, 0);
        assert_eq!(stats.reload_failures, 1);

        // An artifact without a model section fails synchronously.
        let empty = fast_ckpt::Artifact::new();
        let server = Server::start(vec![replica(9)], BatchConfig::no_wait(4));
        assert!(matches!(
            server.reload(&empty),
            Err(fast_ckpt::CkptError::MissingSection { .. })
        ));
        assert_eq!(server.weight_generation(), 0);
        server.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let server = Server::start(vec![replica(4)], BatchConfig::default());
        let _ = server.infer(sample(0));
        drop(server); // must not hang
    }

    fn conv_model(seed: u64) -> Sequential {
        use fast_nn::{BatchNorm2d, Conv2d, GlobalAvgPool};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Conv2d::new(2, 4, 3, 1, 1, false, &mut rng))
            .push(BatchNorm2d::new(4))
            .push(Relu::new())
            .push(Conv2d::new(4, 4, 3, 1, 1, true, &mut rng))
            .push(GlobalAvgPool::new())
            .push(Dense::new(4, 3, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    }

    fn conv_sample(i: usize) -> Tensor {
        Tensor::from_vec(
            vec![1, 2, 4, 4],
            (0..32)
                .map(|j| ((i * 13 + j * 5) % 17) as f32 * 0.1 - 0.8)
                .collect(),
        )
    }

    #[test]
    fn conv_reload_under_concurrent_submits_drops_nothing() {
        // The MLP-shaped reload test above swaps weights between quiesced
        // request waves; this one reloads a *conv* workload while
        // submitter threads keep traffic in flight — im2col activation
        // grouping and rank-4 inputs ride through the same swap path.
        let mut new_model = conv_model(31);
        let artifact = model_artifact(&mut new_model);
        let mut reference = CompiledModel::compile(new_model, 0);
        let want_new: Vec<Tensor> = (0..4).map(|i| reference.infer(&conv_sample(i))).collect();

        let server = Server::start(
            vec![
                CompiledModel::compile(conv_model(30), 0),
                CompiledModel::compile(conv_model(30), 0),
            ],
            BatchConfig::default(),
        );
        let per_thread = 8usize;
        let threads = 3usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let server = &server;
                scope.spawn(move || {
                    let pending: Vec<Pending> = (0..per_thread)
                        .map(|k| server.submit(conv_sample(t + k)))
                        .collect();
                    for p in pending {
                        // Answered by either weight version, but answered:
                        // zero drops while the swap races the traffic.
                        assert_eq!(p.wait().shape(), &[1, 3]);
                    }
                });
            }
            server.reload(&artifact).unwrap();
        });
        // The reload returned before the scope closed, so fresh requests
        // must see the new weights, bit-for-bit.
        for (i, w) in want_new.iter().enumerate() {
            assert_eq!(
                &server.infer(conv_sample(i)),
                w,
                "post-reload conv response {i} must match the reloaded model"
            );
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.samples,
            (threads * per_thread + want_new.len()) as u64,
            "every in-flight request answered"
        );
        assert_eq!(stats.reloads, 2, "both workers applied the conv swap");
        assert_eq!(stats.reload_failures, 0);
    }
}
