//! The serving engine: shared-queue dispatch with shape-bucketed
//! continuous batching, deadline-aware load shedding, and multi-model
//! tenancy (DESIGN.md §14).
//!
//! Every resident model owns one shared MPMC work queue feeding all of its
//! replica workers: any idle worker pulls the deepest shape bucket and
//! ships it immediately — requests join the next batch at whatever boundary
//! comes first instead of waiting out a coalescing window, so under backlog
//! batches fill to `max_batch` and under light load latency is one forward
//! pass. Requests carrying deadlines are shed at admission when the
//! estimated queue residency already exceeds the budget, and dropped at
//! dispatch if they expired while queued — both as first-class typed
//! [`ServeError`] responses.

use crate::batcher::{sample_count, split_output, stack_inputs, BatchConfig, Request};
use crate::compiled::CompiledModel;
use crate::request::{Pending, Response, ServeError, ServeRequest};
use crate::stats::{ModelMetrics, ServeStats};
use fast_ckpt::{Artifact, CkptError, StateDict, SECTION_MODEL};
use fast_telemetry::{Registry, Snapshot};
use fast_tensor::Tensor;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const POISONED: &str = "serve queue poisoned";

/// A pending hot weight swap: the decoded `model` section, shared across
/// all of a model's workers, tagged with the weight generation it carries.
/// Latest wins — a newer reload replaces an unapplied one, and a worker
/// that slept through intermediate generations applies only the newest.
#[derive(Clone)]
struct ReloadTicket {
    gen: u64,
    state: Arc<StateDict>,
}

/// FIFO queue of requests sharing one per-sample (trailing) shape. Only
/// same-bucket requests ever coalesce, so one oddly shaped request can
/// never poison its neighbours.
struct Bucket {
    tail: Vec<usize>,
    samples: usize,
    requests: VecDeque<Request>,
}

struct ModelState {
    buckets: Vec<Bucket>,
    /// Total queued samples across buckets (the queue-depth gauge).
    queued_samples: usize,
    reload: Option<ReloadTicket>,
    shutdown: bool,
}

/// The shared work queue of one resident model, pulled from by all of its
/// replica workers.
struct ModelQueue {
    name: String,
    /// Replica workers serving this model (static; sizes the residency
    /// estimate).
    workers: usize,
    state: Mutex<ModelState>,
    ready: Condvar,
    /// Target weight generation: 0 for the compiled weights, bumped by
    /// every accepted reload.
    generation: AtomicU64,
    /// EWMA of per-sample service time in ns (0 = no estimate yet).
    est_sample_ns: AtomicU64,
    /// This model's labeled series on the server's registry (DESIGN.md
    /// §15): counts and latency histograms are recorded here as they
    /// happen, so a live [`Server::metrics_text`] scrape sees them without
    /// waiting for shutdown.
    metrics: ModelMetrics,
}

impl ModelQueue {
    fn new(name: String, workers: usize, metrics: ModelMetrics) -> Self {
        ModelQueue {
            name,
            workers,
            state: Mutex::new(ModelState {
                buckets: Vec::new(),
                queued_samples: 0,
                reload: None,
                shutdown: false,
            }),
            ready: Condvar::new(),
            generation: AtomicU64::new(0),
            est_sample_ns: AtomicU64::new(0),
            metrics,
        }
    }
}

/// Pops the next batch: up to `max` samples from the front of the deepest
/// bucket (FIFO within the bucket). Requests whose deadline has already
/// passed are moved to `expired` instead of the batch and consume no batch
/// slots. Returns an empty batch only when nothing live is queued.
fn pop_batch(
    state: &mut ModelState,
    max: usize,
    now: Instant,
    expired: &mut Vec<Request>,
) -> Vec<Request> {
    let mut batch = Vec::new();
    let mut samples = 0usize;
    loop {
        let Some(bi) = state
            .buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.samples)
            .map(|(i, _)| i)
        else {
            return batch;
        };
        let bucket = &mut state.buckets[bi];
        while let Some(front) = bucket.requests.front() {
            let n = sample_count(&front.input);
            if front.deadline.is_some_and(|d| now >= d) {
                let r = bucket.requests.pop_front().expect("front exists");
                bucket.samples -= n;
                state.queued_samples -= n;
                expired.push(r);
                continue;
            }
            // An empty batch always takes the front request, even if it
            // alone exceeds `max` (a pre-batched client request).
            if !batch.is_empty() && samples + n > max {
                break;
            }
            let r = bucket.requests.pop_front().expect("front exists");
            bucket.samples -= n;
            state.queued_samples -= n;
            samples += n;
            batch.push(r);
            if samples >= max {
                break;
            }
        }
        if bucket.requests.is_empty() {
            state.buckets.swap_remove(bi);
        }
        // The deepest bucket may have held only expired requests; try the
        // next one rather than returning an empty batch with work queued.
        if !batch.is_empty() || state.queued_samples == 0 {
            return batch;
        }
    }
}

/// Records one executed batch of `n` samples: the per-model registry
/// series plus the worker-local exact batch-size map ([`ModelMetrics`]'s
/// log-bucketed histogram would blur sizes above 16, and tests pin exact
/// counts).
fn record_batch(metrics: &ModelMetrics, local: &mut BTreeMap<usize, u64>, n: usize) {
    metrics.batches.inc();
    metrics.samples.add(n as u64);
    metrics.batch_samples.record(n as u64);
    *local.entry(n).or_insert(0) += 1;
}

fn worker_loop(
    mut model: CompiledModel,
    queue: Arc<ModelQueue>,
    cfg: BatchConfig,
) -> BTreeMap<usize, u64> {
    // Everything except the exact batch-size map is recorded straight into
    // the per-model registry series (`queue.metrics`), so live scrapes see
    // it; the map alone rides back through the join handle.
    let mut batch_sizes: BTreeMap<usize, u64> = BTreeMap::new();
    // The weight generation this worker's replica has applied.
    let mut applied_gen = 0u64;
    loop {
        let mut expired: Vec<Request> = Vec::new();
        let (batch, reload, popped_at) = {
            let mut state = queue.state.lock().expect(POISONED);
            loop {
                let reload_pending = state.reload.as_ref().is_some_and(|t| t.gen > applied_gen);
                if state.queued_samples > 0 || reload_pending {
                    break;
                }
                if state.shutdown {
                    return batch_sizes;
                }
                state = queue.ready.wait(state).expect(POISONED);
            }
            let reload = state.reload.clone().filter(|t| t.gen > applied_gen);
            let now = Instant::now();
            let batch = pop_batch(&mut state, cfg.max_batch, now, &mut expired);
            queue.metrics.queue_depth.set(state.queued_samples as f64);
            (batch, reload, now)
        }; // lock released before the swap and the forward pass run
        if let Some(ticket) = reload {
            // Swap weights *before* serving the popped batch: the batch may
            // contain requests submitted after `Server::reload` returned
            // (submit and reload serialize on the queue mutex), and those
            // are guaranteed the new weights. Requests already queued when
            // the reload landed may be answered by either version — the
            // usual hot-swap contract. A rejected artifact rolls the model
            // back; the worker keeps serving the old weights.
            match model.apply_state(&ticket.state) {
                // A worker that slept through intermediate generations
                // covers them all by applying the newest, so a fully
                // propagated reload always adds `workers` per generation.
                Ok(()) => queue.metrics.reloads.add(ticket.gen - applied_gen),
                Err(_) => queue.metrics.reload_failures.inc(),
            }
            applied_gen = ticket.gen;
        }
        for req in expired.drain(..) {
            queue.metrics.deadline_missed.inc();
            let waited_us = popped_at.duration_since(req.enqueued_at).as_micros() as u64;
            let deadline_us = req
                .deadline
                .map(|d| d.duration_since(req.enqueued_at).as_micros() as u64)
                .unwrap_or(0);
            let _ = req.resp.send(Response {
                result: Err(ServeError::DeadlineMissed {
                    waited_us,
                    deadline_us,
                }),
                finished_at: Instant::now(),
            });
        }
        if batch.is_empty() {
            continue;
        }
        for req in &batch {
            queue
                .metrics
                .queue_ns
                .record(popped_at.duration_since(req.enqueued_at).as_nanos() as u64);
        }
        let started = Instant::now();
        let mut served_samples = 0usize;
        if let [lone] = &batch[..] {
            // Batch of one: skip the stack/split copies entirely.
            if serve_one(&mut model, lone) {
                let n = sample_count(&lone.input);
                record_batch(&queue.metrics, &mut batch_sizes, n);
                served_samples += n;
            } else {
                queue.metrics.failed.inc();
            }
            queue
                .metrics
                .service_ns
                .record(started.elapsed().as_nanos() as u64);
        } else if serve_coalesced(&mut model, &batch) {
            let n = batch.iter().map(|r| sample_count(&r.input)).sum();
            record_batch(&queue.metrics, &mut batch_sizes, n);
            served_samples += n;
            let elapsed = started.elapsed().as_nanos() as u64;
            for _ in &batch {
                queue.metrics.service_ns.record(elapsed);
            }
        } else {
            // The coalesced forward panicked — some request in the batch is
            // one the model rejects at the value level (e.g. an out-of-vocab
            // token), which shape-gated coalescing cannot screen out. Retry
            // each request alone so only the poisonous one fails with a
            // typed [`ServeError::Failed`] while the neighbours still get
            // their answers.
            for req in &batch {
                let t = Instant::now();
                if serve_one(&mut model, req) {
                    let n = sample_count(&req.input);
                    record_batch(&queue.metrics, &mut batch_sizes, n);
                    served_samples += n;
                } else {
                    queue.metrics.failed.inc();
                }
                queue
                    .metrics
                    .service_ns
                    .record(t.elapsed().as_nanos() as u64);
            }
        }
        // Feed the admission-control estimate: amortized per-sample service
        // time of this batch, smoothed so one outlier cannot flip the shed
        // decision for long.
        if served_samples > 0 {
            let per_sample = (started.elapsed().as_nanos() as u64 / served_samples as u64).max(1);
            let old = queue.est_sample_ns.load(Ordering::Relaxed);
            let new = if old == 0 {
                per_sample
            } else {
                (3 * old + per_sample) / 4
            };
            queue.est_sample_ns.store(new, Ordering::Relaxed);
        }
    }
}

/// Runs one request through the model, catching a model panic (bad shape,
/// malformed tokens, …) so a rejected request cannot kill the worker and
/// strand the shared queue. The client receives a typed
/// [`ServeError::Failed`]. Returns whether the request was served.
///
/// The model carries no cross-request state that a mid-forward unwind could
/// corrupt (weight caches are rebuilt from versioned masters), so resuming
/// with the same replica is sound. Note the process-global panic hook still
/// runs for each rejection (one stderr backtrace per bad request, plus one
/// for the coalesced attempt it poisoned) — a library must not swap the
/// global hook; embedders who consider rejects routine can install a
/// quieter hook themselves.
fn serve_one(model: &mut CompiledModel, req: &Request) -> bool {
    let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let out = model.infer(&req.input);
        // A dropped receiver means the client gave up waiting.
        let _ = req.resp.send(Response {
            result: Ok(out),
            finished_at: Instant::now(),
        });
    }))
    .is_ok();
    if !ok {
        let _ = req.resp.send(Response {
            result: Err(ServeError::Failed),
            finished_at: Instant::now(),
        });
    }
    ok
}

/// Runs a coalesced batch through the model; on a panic no response has
/// been sent yet (sends happen strictly after the forward and the split),
/// so the caller can safely retry the requests one by one.
fn serve_coalesced(model: &mut CompiledModel, batch: &[Request]) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
        let samples: Vec<usize> = inputs.iter().map(|t| sample_count(t)).collect();
        let out = model.infer(&stack_inputs(&inputs));
        let finished_at = Instant::now();
        for (req, piece) in batch.iter().zip(split_output(&out, &samples)) {
            let _ = req.resp.send(Response {
                result: Ok(piece),
                finished_at,
            });
        }
    }))
    .is_ok()
}

/// Configures a [`Server`] hosting one or more resident models.
///
/// Each model brings its own replica set — and with it its own precision
/// profile, [`fast_nn::ExecMode`] and [`fast_nn::SrMode`] (those are
/// per-replica serving configuration on [`CompiledModel`]) — plus an
/// independent shared work queue and hot-reload generation.
///
/// ```
/// use fast_nn::{Dense, ExecMode, Sequential};
/// use fast_serve::{BatchConfig, CompiledModel, Server, ServeRequest};
/// use fast_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let build = |seed, fast| {
///     let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
///     let model = Sequential::new().push(Dense::new(4, 2, true, &mut rng));
///     let mut c = CompiledModel::compile(model, 0);
///     if fast {
///         c.set_exec_mode(ExecMode::Integer); // per-model precision profile
///     }
///     c
/// };
/// let server = Server::builder(BatchConfig::default())
///     .model("exact", vec![build(1, false)])
///     .model("fast", vec![build(1, true), build(1, true)])
///     .start();
/// let y = server
///     .submit_request(ServeRequest::new(Tensor::zeros(vec![1, 4])).for_model("fast"))
///     .wait();
/// assert_eq!(y.shape(), &[1, 2]);
/// server.shutdown();
/// ```
pub struct ServerBuilder {
    cfg: BatchConfig,
    models: Vec<(String, Vec<CompiledModel>)>,
}

impl ServerBuilder {
    /// Registers a resident model under `name` with its replica set. The
    /// first registered model is the default target of
    /// [`Server::submit`] / [`Server::infer`] / [`Server::reload`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or `name` is already registered.
    pub fn model(mut self, name: impl Into<String>, replicas: Vec<CompiledModel>) -> Self {
        let name = name.into();
        assert!(
            !replicas.is_empty(),
            "model `{name}` needs at least one replica"
        );
        assert!(
            self.models.iter().all(|(n, _)| n != &name),
            "model `{name}` registered twice"
        );
        self.models.push((name, replicas));
        self
    }

    /// Starts one worker thread per replica of every registered model.
    ///
    /// # Panics
    ///
    /// Panics if no model was registered or `max_batch` is zero.
    pub fn start(self) -> Server {
        assert!(!self.models.is_empty(), "need at least one resident model");
        assert!(self.cfg.max_batch > 0, "max_batch must be positive");
        // Each server owns its registry so two servers in one process (or
        // one test binary) never alias each other's series; the global
        // registry (spans, train/qgemm counters) is appended at scrape
        // time by [`Server::metrics_text`] / [`Server::metrics_snapshot`].
        let registry = Arc::new(Registry::new());
        if self.cfg.sets_ignored_max_wait() {
            // Satellite of the telemetry rebase: the deprecated `max_wait`
            // knob is a documented no-op — make setting it visible instead
            // of silent.
            registry
                .counter(
                    "fast_serve_config_warnings_total",
                    "server configurations carrying deprecated or ignored knobs",
                    &[("warning", "max_wait_ignored")],
                )
                .inc();
        }
        let mut queues = Vec::with_capacity(self.models.len());
        let mut workers = Vec::new();
        for (name, replicas) in self.models {
            let metrics = ModelMetrics::register(&registry, &name);
            let queue = Arc::new(ModelQueue::new(name, replicas.len(), metrics));
            for replica in replicas {
                let worker_queue = Arc::clone(&queue);
                let cfg = self.cfg;
                workers.push(std::thread::spawn(move || {
                    worker_loop(replica, worker_queue, cfg)
                }));
            }
            queues.push(queue);
        }
        Server {
            registry,
            queues,
            workers,
        }
    }
}

/// A running inference service: one shared MPMC work queue per resident
/// model, pulled from by that model's replica worker threads, with
/// shape-bucketed continuous batching and deadline-aware load shedding
/// (DESIGN.md §14).
///
/// ```
/// use fast_nn::{Dense, Sequential};
/// use fast_serve::{BatchConfig, CompiledModel, Server};
/// use fast_tensor::Tensor;
/// use rand::SeedableRng;
///
/// // Two bit-identical replicas (same build seed) pulling one queue.
/// let replicas: Vec<CompiledModel> = (0..2)
///     .map(|_| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(9);
///         let model = Sequential::new().push(Dense::new(4, 2, true, &mut rng));
///         CompiledModel::compile(model, 0)
///     })
///     .collect();
/// let server = Server::start(replicas, BatchConfig::default());
/// let y = server.infer(Tensor::from_vec(vec![1, 4], vec![0.1, 0.2, 0.3, 0.4]));
/// assert_eq!(y.shape(), &[1, 2]);
/// server.shutdown();
/// ```
pub struct Server {
    registry: Arc<Registry>,
    queues: Vec<Arc<ModelQueue>>,
    workers: Vec<JoinHandle<BTreeMap<usize, u64>>>,
}

impl Server {
    /// Single-model convenience: hosts `replicas` as the model `"default"`.
    ///
    /// Replicas are typically built from the same seed so every worker
    /// serves bit-identical results; [`CompiledModel::compile`] quantizes
    /// weights deterministically, so this holds even across processes.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn start(replicas: Vec<CompiledModel>, cfg: BatchConfig) -> Server {
        Server::builder(cfg).model("default", replicas).start()
    }

    /// Starts configuring a multi-model server.
    pub fn builder(cfg: BatchConfig) -> ServerBuilder {
        ServerBuilder {
            cfg,
            models: Vec::new(),
        }
    }

    /// Total worker threads across all resident models.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The server's own metric registry, carrying the per-model
    /// `fast_serve_*{model="..."}` series (DESIGN.md §15). Process-wide
    /// series (spans, train/qgemm counters) live on
    /// [`Registry::global`] instead; the scrape methods below merge both.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Renders a live Prometheus text-exposition scrape: this server's
    /// per-model serving series followed by the process-global registry
    /// (span timings, train/qgemm counters). Valid exposition format 0.0.4;
    /// scrapeable mid-traffic without stopping the server.
    pub fn metrics_text(&self) -> String {
        let mut text = self.registry.metrics_text();
        text.push_str(&Registry::global().metrics_text());
        text
    }

    /// Captures a live [`Snapshot`] of this server's per-model series plus
    /// the process-global registry, for JSON export
    /// ([`Snapshot::to_json`]).
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        snap.entries.extend(Registry::global().snapshot().entries);
        snap
    }

    /// Names of the resident models, default model first.
    pub fn model_names(&self) -> Vec<&str> {
        self.queues.iter().map(|q| q.name.as_str()).collect()
    }

    fn queue(&self, model: Option<&str>) -> Option<&Arc<ModelQueue>> {
        match model {
            None => self.queues.first(),
            Some(name) => self.queues.iter().find(|q| q.name == name),
        }
    }

    /// The default model's weight generation currently being rolled out: 0
    /// for the compiled weights, bumped by every accepted reload.
    pub fn weight_generation(&self) -> u64 {
        self.queues[0].generation.load(Ordering::Relaxed)
    }

    /// The named model's weight generation, or `None` if not resident.
    pub fn weight_generation_of(&self, model: &str) -> Option<u64> {
        self.queue(Some(model))
            .map(|q| q.generation.load(Ordering::Relaxed))
    }

    /// Queued samples currently waiting for the default model — the live
    /// queue-depth gauge ([`ServeStats::peak_queue_depth`] records the
    /// high-water mark).
    pub fn queue_depth(&self) -> usize {
        self.queues[0].state.lock().expect(POISONED).queued_samples
    }

    /// Queued samples waiting for the named model, or `None` if not
    /// resident.
    pub fn queue_depth_of(&self, model: &str) -> Option<usize> {
        self.queue(Some(model))
            .map(|q| q.state.lock().expect(POISONED).queued_samples)
    }

    /// Hot-swaps the default model's weights from a checkpoint artifact's
    /// `model` section without restarting the server or dropping a single
    /// non-shed request. See [`Server::reload_model`].
    pub fn reload(&self, artifact: &Artifact) -> Result<u64, CkptError> {
        self.reload_queue(&self.queues[0], artifact)
    }

    /// Hot-swaps the named model's weights from a checkpoint artifact's
    /// `model` section; other resident models are untouched.
    ///
    /// The section is decoded and validated once, then shared (`Arc`) with
    /// every worker of the model; each worker applies it at its next batch
    /// boundary — any request submitted after this method returns is served
    /// with the new weights, while requests already in flight may see
    /// either version. Inside the replica the swap rides the existing
    /// weight-version mechanism (the restore walk bumps layer versions, so
    /// frozen caches re-quantize deterministically), which makes the swap
    /// bit-transparent for deterministic-rounding formats: post-swap
    /// responses equal an eval forward of the restored model.
    ///
    /// Returns the model's new weight generation. [`ServeStats::reloads`]
    /// counts per-worker applications (a fully propagated reload adds the
    /// model's replica count per generation); an artifact that decodes but
    /// does not match the replica architecture is rejected worker-side,
    /// rolled back, and counted in [`ServeStats::reload_failures`].
    ///
    /// # Panics
    ///
    /// Panics if `model` is not resident (reload targets are server
    /// configuration, not request routing — a typo here is a deployment
    /// bug).
    ///
    /// # Errors
    ///
    /// [`CkptError::MissingSection`] / decode errors if the artifact has no
    /// well-formed `model` section.
    pub fn reload_model(&self, model: &str, artifact: &Artifact) -> Result<u64, CkptError> {
        let queue = self
            .queue(Some(model))
            .unwrap_or_else(|| panic!("no resident model named `{model}`"));
        self.reload_queue(queue, artifact)
    }

    fn reload_queue(&self, queue: &Arc<ModelQueue>, artifact: &Artifact) -> Result<u64, CkptError> {
        let state = Arc::new(StateDict::from_bytes(artifact.require(SECTION_MODEL)?)?);
        let mut qs = queue.state.lock().expect(POISONED);
        // Bump under the queue lock so ticket generations are monotone.
        let generation = queue.generation.fetch_add(1, Ordering::Relaxed) + 1;
        qs.reload = Some(ReloadTicket {
            gen: generation,
            state,
        });
        drop(qs);
        queue.metrics.reload_generation.set(generation as f64);
        queue.ready.notify_all();
        Ok(generation)
    }

    /// Enqueues a request (leading dimension = samples, usually 1) for the
    /// default model with no deadline and returns a handle to await the
    /// result.
    pub fn submit(&self, input: Tensor) -> Pending {
        self.submit_request(ServeRequest::new(input))
    }

    /// Enqueues a typed request — model routing and deadline included —
    /// into the target model's shared queue.
    ///
    /// Admission control: when the request carries a deadline and the
    /// dispatcher has a service-time estimate, the estimated queue
    /// residency `(queued + own) × est_per_sample / workers` is checked
    /// against the budget and the request is shed immediately with
    /// [`ServeError::Rejected`] if it cannot make it — reject-fast keeps an
    /// overloaded queue from dragging every later request past its
    /// deadline. All failures arrive as typed [`ServeError`] values through
    /// the returned [`Pending`].
    pub fn submit_request(&self, req: ServeRequest) -> Pending {
        let (tx, rx) = mpsc::channel();
        let Some(queue) = self.queue(req.model.as_deref()) else {
            let name = req.model.unwrap_or_default();
            let _ = tx.send(Response {
                result: Err(ServeError::UnknownModel(name)),
                finished_at: Instant::now(),
            });
            return Pending(rx);
        };
        let samples = sample_count(&req.input);
        let now = Instant::now();
        let mut state = queue.state.lock().expect(POISONED);
        if let Some(budget) = req.deadline {
            let est = queue.est_sample_ns.load(Ordering::Relaxed);
            let est_wait_ns = ((state.queued_samples + samples) as u64).saturating_mul(est)
                / queue.workers as u64;
            if est > 0 && est_wait_ns > budget.as_nanos() as u64 {
                drop(state);
                queue.metrics.shed.inc();
                let _ = tx.send(Response {
                    result: Err(ServeError::Rejected {
                        estimated_us: est_wait_ns / 1000,
                        deadline_us: budget.as_micros() as u64,
                    }),
                    finished_at: Instant::now(),
                });
                return Pending(rx);
            }
        }
        let request = Request {
            resp: tx,
            enqueued_at: now,
            deadline: req.deadline.map(|d| now + d),
            input: req.input,
        };
        let tail = &request.input.shape()[1..];
        match state.buckets.iter_mut().find(|b| b.tail == tail) {
            Some(bucket) => {
                bucket.samples += samples;
                bucket.requests.push_back(request);
            }
            None => state.buckets.push(Bucket {
                tail: tail.to_vec(),
                samples,
                requests: VecDeque::from([request]),
            }),
        }
        state.queued_samples += samples;
        let depth = state.queued_samples as f64;
        drop(state);
        queue.metrics.queue_depth.set(depth);
        queue.metrics.peak_queue_depth.set_max(depth);
        queue.ready.notify_one();
        Pending(rx)
    }

    /// Convenience: submit to the default model and block for the result.
    pub fn infer(&self, input: Tensor) -> Tensor {
        self.submit(input).wait()
    }

    /// Convenience: submit to the default model with a deadline.
    pub fn submit_with_deadline(&self, input: Tensor, deadline: Duration) -> Pending {
        self.submit_request(ServeRequest::new(input).with_deadline(deadline))
    }

    /// Signals every worker, drains remaining requests, joins the threads,
    /// and returns the merged serving statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop()
    }

    fn stop(&mut self) -> ServeStats {
        for queue in &self.queues {
            let mut state = queue.state.lock().expect(POISONED);
            state.shutdown = true;
            drop(state);
            queue.ready.notify_all();
        }
        let mut stats = ServeStats::default();
        // Exact batch-size maps ride back through the join handles; every
        // other statistic is already on the per-model registry series.
        for handle in self.workers.drain(..) {
            stats.merge_batch_map(handle.join().expect("serve worker panicked"));
        }
        for queue in &self.queues {
            stats.merge(queue.metrics.to_stats());
        }
        stats
    }
}

impl Drop for Server {
    /// Dropping without [`Server::shutdown`] still stops and joins the
    /// workers (statistics are discarded).
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::{set_uniform_precision, Dense, LayerPrecision, Relu, Sequential};
    use rand::SeedableRng;

    fn replica(seed: u64) -> CompiledModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Dense::new(6, 12, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(12, 3, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        CompiledModel::compile(m, 0)
    }

    fn sample(i: usize) -> Tensor {
        Tensor::from_vec(
            vec![1, 6],
            (0..6)
                .map(|j| ((i * 7 + j * 3) % 11) as f32 * 0.1 - 0.5)
                .collect(),
        )
    }

    #[test]
    fn queued_requests_match_per_request_results() {
        // Ground truth: each sample through a lone compiled model.
        let mut reference = replica(1);
        let want: Vec<Tensor> = (0..12).map(|i| reference.infer(&sample(i))).collect();

        // Whatever way the dispatcher coalesces the backlog, every response
        // must be bit-identical to the single-sample forward.
        let server = Server::start(vec![replica(1)], BatchConfig::no_wait(5));
        let pending: Vec<Pending> = (0..12).map(|i| server.submit(sample(i))).collect();
        for (p, w) in pending.into_iter().zip(&want) {
            assert_eq!(&p.wait(), w, "batched result differs from single-sample");
        }
        let stats = server.shutdown();
        assert_eq!(stats.samples, 12);
        assert!(stats.batch_histogram.keys().all(|&s| s <= 5));
        // Queue residency and service time were recorded per request.
        assert_eq!(stats.queue_ns.count(), 12);
        assert_eq!(stats.service_ns.count(), 12);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.deadline_missed, 0);
        assert!(stats.peak_queue_depth >= 1);
    }

    #[test]
    fn shared_queue_feeds_all_workers() {
        let server = Server::start(
            vec![replica(2), replica(2), replica(2)],
            BatchConfig::no_wait(4),
        );
        assert_eq!(server.workers(), 3);
        assert_eq!(server.model_names(), vec!["default"]);
        let pending: Vec<Pending> = (0..9).map(|i| server.submit(sample(i))).collect();
        let outs: Vec<Tensor> = pending.into_iter().map(Pending::wait).collect();
        // All workers hold bit-identical replicas, so identical inputs give
        // identical outputs no matter which worker pulled them.
        assert_eq!(outs[0], server.infer(sample(0)));
        assert_eq!(server.queue_depth(), 0, "drained queue gauges empty");
        let stats = server.shutdown();
        assert_eq!(stats.samples, 10);
    }

    #[test]
    fn prebatched_request_larger_than_max_batch_is_served() {
        let server = Server::start(vec![replica(3)], BatchConfig::no_wait(2));
        let big = Tensor::zeros(vec![7, 6]);
        let y = server.infer(big);
        assert_eq!(y.shape(), &[7, 3]);
        let stats = server.shutdown();
        assert_eq!(stats.batch_histogram.get(&7), Some(&1));
    }

    #[test]
    fn rejected_request_fails_loudly_and_worker_keeps_serving() {
        let server = Server::start(vec![replica(5)], BatchConfig::no_wait(4));
        // Wrong width: the model panics on it inside the worker; the
        // request must resolve to a typed failure (not hang) and the worker
        // must survive.
        let bad = server.submit(Tensor::zeros(vec![1, 5]));
        assert_eq!(bad.result(), Err(ServeError::Failed));
        let y = server.infer(sample(0));
        assert_eq!(y.shape(), &[1, 3], "worker must survive a bad request");
        let stats = server.shutdown();
        assert_eq!(stats.samples, 1, "rejected requests are not counted");
    }

    #[test]
    fn wait_panics_on_typed_failure() {
        let server = Server::start(vec![replica(5)], BatchConfig::no_wait(4));
        let bad = server.submit(Tensor::zeros(vec![1, 5]));
        let bad_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.wait()));
        assert!(
            bad_result.is_err(),
            "wait() keeps the loud-failure contract"
        );
        server.shutdown();
    }

    #[test]
    fn mixed_shapes_land_in_separate_buckets() {
        // A [1,6], a [1,5] (different per-sample shape) and another [1,6]:
        // the odd one must never coalesce with (and so never poison) the
        // shape-matched pair, whatever order the dispatcher pulls.
        let server = Server::start(vec![replica(6)], BatchConfig::no_wait(8));
        let good1 = server.submit(sample(1));
        let bad = server.submit(Tensor::zeros(vec![1, 5]));
        let good2 = server.submit(sample(2));
        assert_eq!(good1.wait().shape(), &[1, 3]);
        assert_eq!(
            bad.result(),
            Err(ServeError::Failed),
            "mis-shaped request must fail alone"
        );
        assert_eq!(good2.wait().shape(), &[1, 3]);
        server.shutdown();
    }

    #[test]
    fn value_poisoned_batch_is_retried_individually() {
        use fast_nn::Embedding;
        // Embedding rejects out-of-vocab tokens at the value level — shape
        // gating cannot screen those out of a coalesced batch.
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            let m = Sequential::new().push(Embedding::new(12, 4, &mut rng));
            CompiledModel::compile(m, 0)
        };
        let tokens = |t: f32| Tensor::from_vec(vec![1, 3], vec![t, 1.0, 2.0]);
        let mut reference = build();
        let want = reference.infer(&tokens(0.0));

        let server = Server::start(vec![build()], BatchConfig::no_wait(8));
        let good1 = server.submit(tokens(0.0));
        let poison = server.submit(tokens(99.0)); // out of vocab
        let good2 = server.submit(tokens(0.0));
        assert_eq!(good1.wait(), want, "neighbour must survive the poison");
        assert_eq!(
            poison.result(),
            Err(ServeError::Failed),
            "poison request must fail with a typed error"
        );
        assert_eq!(good2.wait(), want, "neighbour must survive the poison");
        let stats = server.shutdown();
        assert_eq!(stats.samples, 2, "only valid requests count as served");
    }

    #[test]
    fn unknown_model_resolves_typed() {
        let server = Server::start(vec![replica(5)], BatchConfig::no_wait(4));
        let p = server.submit_request(ServeRequest::new(sample(0)).for_model("nope"));
        assert_eq!(p.result(), Err(ServeError::UnknownModel("nope".into())));
        let stats = server.shutdown();
        assert_eq!(stats.samples, 0);
    }

    /// Same architecture as [`replica`], different weights (different seed).
    fn trained_variant(seed: u64) -> fast_nn::Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Dense::new(6, 12, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(12, 3, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    }

    fn model_artifact(model: &mut fast_nn::Sequential) -> fast_ckpt::Artifact {
        let mut artifact = fast_ckpt::Artifact::new();
        artifact.insert(
            fast_ckpt::SECTION_MODEL,
            fast_ckpt::capture_state(model).to_bytes(),
        );
        artifact
    }

    #[test]
    fn reload_swaps_weights_with_zero_dropped_requests() {
        // Ground truth for the new weights: a lone compiled copy.
        let mut new_model = trained_variant(77);
        let artifact = model_artifact(&mut new_model);
        let mut reference = CompiledModel::compile(new_model, 0);
        let want_new: Vec<Tensor> = (0..6).map(|i| reference.infer(&sample(i))).collect();
        let mut old_reference = replica(1);
        let want_old: Vec<Tensor> = (0..6).map(|i| old_reference.infer(&sample(i))).collect();
        assert_ne!(want_old[0], want_new[0], "seeds must give distinct models");

        let server = Server::start(vec![replica(1), replica(1)], BatchConfig::no_wait(4));
        // Pre-reload requests: answered (by either version is acceptable —
        // here they complete before the swap because we wait on them).
        let pre: Vec<Pending> = (0..6).map(|i| server.submit(sample(i))).collect();
        for (p, w) in pre.into_iter().zip(&want_old) {
            assert_eq!(&p.wait(), w, "pre-reload request answered with old weights");
        }
        let generation = server.reload(&artifact).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(server.weight_generation(), 1);
        // Post-reload requests must all be answered — zero drops — and with
        // the new weights (the swap is bit-transparent: responses equal an
        // eval forward of the restored model).
        let post: Vec<Pending> = (0..6).map(|i| server.submit(sample(i))).collect();
        for (p, w) in post.into_iter().zip(&want_new) {
            assert_eq!(&p.wait(), w, "post-reload request must see new weights");
        }
        let stats = server.shutdown();
        assert_eq!(stats.samples, 12, "every request served, none dropped");
        assert_eq!(stats.reloads, 2, "both workers applied the swap");
        assert_eq!(stats.reload_failures, 0);
    }

    #[test]
    fn reload_reaches_idle_workers_by_shutdown() {
        // No traffic at all: the swap must still land on every worker.
        let server = Server::start(
            vec![replica(2), replica(2), replica(2)],
            BatchConfig::no_wait(4),
        );
        let mut new_model = trained_variant(78);
        server.reload(&model_artifact(&mut new_model)).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.reloads, 3);
    }

    #[test]
    fn skipped_generations_still_count_as_applied() {
        // Two reloads land before any worker wakes: the worker applies only
        // the newest ticket but covers both generations in the count, so
        // `reloads == workers × generations` stays the invariant.
        let server = Server::start(vec![replica(2)], BatchConfig::no_wait(4));
        let mut a = trained_variant(79);
        let mut b = trained_variant(80);
        server.reload(&model_artifact(&mut a)).unwrap();
        server.reload(&model_artifact(&mut b)).unwrap();
        assert_eq!(server.weight_generation(), 2);
        // The newest weights serve.
        let mut reference = CompiledModel::compile(trained_variant(80), 0);
        assert_eq!(server.infer(sample(0)), reference.infer(&sample(0)));
        let stats = server.shutdown();
        assert_eq!(stats.reloads, 2);
        assert_eq!(stats.reload_failures, 0);
    }

    #[test]
    fn mismatched_artifact_is_rejected_and_old_weights_keep_serving() {
        let mut reference = replica(9);
        let want = reference.infer(&sample(3));
        let server = Server::start(vec![replica(9)], BatchConfig::no_wait(4));
        // Wrong architecture: a 4->2 dense has differently shaped state.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut wrong = Sequential::new().push(Dense::new(4, 2, true, &mut rng));
        server.reload(&model_artifact(&mut wrong)).unwrap();
        assert_eq!(
            server.infer(sample(3)),
            want,
            "rejected reload must leave the old weights serving"
        );
        let stats = server.shutdown();
        assert_eq!(stats.reloads, 0);
        assert_eq!(stats.reload_failures, 1);

        // An artifact without a model section fails synchronously.
        let empty = fast_ckpt::Artifact::new();
        let server = Server::start(vec![replica(9)], BatchConfig::no_wait(4));
        assert!(matches!(
            server.reload(&empty),
            Err(fast_ckpt::CkptError::MissingSection { .. })
        ));
        assert_eq!(server.weight_generation(), 0);
        server.shutdown();
    }

    #[test]
    fn metrics_text_scrapes_live_per_model_series() {
        let server = Server::builder(BatchConfig::no_wait(4))
            .model("alpha", vec![replica(1)])
            .model("beta", vec![replica(2)])
            .start();
        assert_eq!(server.infer(sample(0)).shape(), &[1, 3]);
        let _ = server
            .submit_request(ServeRequest::new(sample(1)).for_model("beta"))
            .wait();
        // Live scrape, server still running: both models' series present,
        // with the traffic recorded so far. Workers record a batch just
        // after answering it, so give the counters a beat to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut text = server.metrics_text();
        while !(text.contains("fast_serve_samples_total{model=\"alpha\"} 1")
            && text.contains("fast_serve_samples_total{model=\"beta\"} 1"))
            && Instant::now() < deadline
        {
            std::thread::yield_now();
            text = server.metrics_text();
        }
        assert!(text.contains("fast_serve_samples_total{model=\"alpha\"} 1"));
        assert!(text.contains("fast_serve_samples_total{model=\"beta\"} 1"));
        assert!(text.contains("fast_serve_queue_depth{model=\"alpha\"} 0"));
        assert!(text.contains("fast_serve_reload_generation{model=\"alpha\"} 0"));
        assert!(text.contains("fast_serve_queue_ns_count{model=\"alpha\"} 1"));
        // The snapshot carries the same series and survives a JSON round
        // trip.
        let snap = server.metrics_snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("snapshot JSON round-trips");
        assert_eq!(
            back.get("fast_serve_samples_total", &[("model", "beta")]),
            snap.get("fast_serve_samples_total", &[("model", "beta")])
        );
        let stats = server.shutdown();
        assert_eq!(stats.samples, 2, "stats view sums both models");
    }

    #[test]
    fn nonzero_max_wait_bumps_config_warning_counter() {
        #[allow(deprecated)]
        let cfg = BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
        };
        let server = Server::start(vec![replica(1)], cfg);
        assert!(server
            .metrics_text()
            .contains("fast_serve_config_warnings_total{warning=\"max_wait_ignored\"} 1"));
        server.shutdown();

        // The default (zero) config stays warning-free.
        let clean = Server::start(vec![replica(1)], BatchConfig::default());
        assert!(!clean
            .metrics_text()
            .contains("fast_serve_config_warnings_total"));
        clean.shutdown();
    }

    #[test]
    fn failed_requests_are_counted() {
        let server = Server::start(vec![replica(5)], BatchConfig::no_wait(4));
        let bad = server.submit(Tensor::zeros(vec![1, 5]));
        assert_eq!(bad.result(), Err(ServeError::Failed));
        let _ = server.infer(sample(0));
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.samples, 1);
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let server = Server::start(vec![replica(4)], BatchConfig::default());
        let _ = server.infer(sample(0));
        drop(server); // must not hang
    }

    fn conv_model(seed: u64) -> Sequential {
        use fast_nn::{BatchNorm2d, Conv2d, GlobalAvgPool};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Sequential::new()
            .push(Conv2d::new(2, 4, 3, 1, 1, false, &mut rng))
            .push(BatchNorm2d::new(4))
            .push(Relu::new())
            .push(Conv2d::new(4, 4, 3, 1, 1, true, &mut rng))
            .push(GlobalAvgPool::new())
            .push(Dense::new(4, 3, true, &mut rng));
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    }

    fn conv_sample(i: usize) -> Tensor {
        Tensor::from_vec(
            vec![1, 2, 4, 4],
            (0..32)
                .map(|j| ((i * 13 + j * 5) % 17) as f32 * 0.1 - 0.8)
                .collect(),
        )
    }

    #[test]
    fn conv_reload_under_concurrent_submits_drops_nothing() {
        // The MLP-shaped reload test above swaps weights between quiesced
        // request waves; this one reloads a *conv* workload while
        // submitter threads keep traffic in flight on the shared queue —
        // im2col activation grouping and rank-4 inputs ride through the
        // same swap path.
        let mut new_model = conv_model(31);
        let artifact = model_artifact(&mut new_model);
        let mut reference = CompiledModel::compile(new_model, 0);
        let want_new: Vec<Tensor> = (0..4).map(|i| reference.infer(&conv_sample(i))).collect();

        let server = Server::start(
            vec![
                CompiledModel::compile(conv_model(30), 0),
                CompiledModel::compile(conv_model(30), 0),
            ],
            BatchConfig::default(),
        );
        let per_thread = 8usize;
        let threads = 3usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let server = &server;
                scope.spawn(move || {
                    let pending: Vec<Pending> = (0..per_thread)
                        .map(|k| server.submit(conv_sample(t + k)))
                        .collect();
                    for p in pending {
                        // Answered by either weight version, but answered:
                        // zero drops while the swap races the traffic.
                        assert_eq!(p.wait().shape(), &[1, 3]);
                    }
                });
            }
            server.reload(&artifact).unwrap();
        });
        // The reload returned before the scope closed, so fresh requests
        // must see the new weights, bit-for-bit.
        for (i, w) in want_new.iter().enumerate() {
            assert_eq!(
                &server.infer(conv_sample(i)),
                w,
                "post-reload conv response {i} must match the reloaded model"
            );
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.samples,
            (threads * per_thread + want_new.len()) as u64,
            "every in-flight request answered"
        );
        assert_eq!(stats.reloads, 2, "both workers applied the conv swap");
        assert_eq!(stats.reload_failures, 0);
    }
}
