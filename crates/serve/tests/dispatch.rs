//! Integration tests for the continuous-batching dispatcher (DESIGN.md
//! §14): batch fill under backlog, deadline-aware load shedding, in-queue
//! deadline expiry, multi-model tenancy, and per-model hot reload racing
//! live traffic.

use fast_nn::models::mlp;
use fast_nn::{set_uniform_precision, Dense, LayerPrecision, Relu, Sequential};
use fast_serve::{BatchConfig, CompiledModel, Pending, ServeError, ServeRequest, Server};
use fast_tensor::Tensor;
use rand::SeedableRng;
use std::time::Duration;

fn small_model(seed: u64) -> CompiledModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Sequential::new()
        .push(Dense::new(6, 12, true, &mut rng))
        .push(Relu::new())
        .push(Dense::new(12, 3, true, &mut rng));
    set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
    CompiledModel::compile(m, 0)
}

fn small_sample(i: usize) -> Tensor {
    Tensor::from_vec(
        vec![1, 6],
        (0..6)
            .map(|j| ((i * 7 + j * 3) % 11) as f32 * 0.1 - 0.5)
            .collect(),
    )
}

/// The serving benchmark's MLP workload — heavy enough that one prebatched
/// "occupier" request keeps a worker busy for many milliseconds, letting
/// tests build a deterministic backlog on a single-core host.
fn bench_mlp(seed: u64) -> CompiledModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = mlp(&[64, 256, 256, 10], &mut rng);
    set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
    CompiledModel::compile(m, 0)
}

fn bench_sample(i: usize) -> Tensor {
    Tensor::from_vec(
        vec![1, 64],
        (0..64)
            .map(|j| ((i * 13 + j * 7) % 23) as f32 * 0.05 - 0.55)
            .collect(),
    )
}

/// Parks the calling thread until the worker has pulled everything queued
/// (i.e. the occupier batch is now *in service*, so later submits pile up
/// behind it).
fn spin_until_drained(server: &Server) {
    while server.queue_depth() > 0 {
        std::thread::yield_now();
    }
}

/// Regression for the round-robin dispatcher's under-fill (BENCH_serve.json
/// recorded mean batch 1.98 with histogram peaking at 2): with a sustained
/// deep backlog, the continuous batcher must ship full `max_batch` batches.
#[test]
fn deep_backlog_fills_batches_to_max() {
    let server = Server::start(vec![small_model(1)], BatchConfig::no_wait(8));
    // Occupy the lone worker with one big prebatched request…
    let occupier = server.submit(Tensor::zeros(vec![1024, 6]));
    spin_until_drained(&server);
    // …then burst 32 singles while it grinds: they all queue, so the worker
    // must pop them as 4 × 8 once it frees up.
    let burst: Vec<Pending> = (0..32).map(|i| server.submit(small_sample(i))).collect();
    assert_eq!(occupier.wait().shape(), &[1024, 3]);
    for p in burst {
        assert_eq!(p.wait().shape(), &[1, 3]);
    }
    let stats = server.shutdown();
    let full = stats.batch_histogram.get(&8).copied().unwrap_or(0);
    assert!(
        full >= 3,
        "backlogged batcher must fill to max_batch; histogram {:?}",
        stats.batch_histogram
    );
    assert!(stats.peak_queue_depth >= 24, "burst must have queued");
    // The latency split is observable: a backlogged request's queue
    // residency dominates while service time stays flat.
    assert_eq!(stats.queue_ns.count(), 33);
    assert!(
        stats.queue_ns.percentile_ns(0.99).unwrap() > stats.queue_ns.percentile_ns(0.10).unwrap()
    );
}

/// Admission control: once the dispatcher has a service-time estimate, a
/// request whose deadline cannot possibly be met is shed immediately with
/// a typed [`ServeError::Rejected`] — it never occupies queue space.
#[test]
fn hopeless_deadline_is_shed_at_admission() {
    let server = Server::start(vec![bench_mlp(2)], BatchConfig::no_wait(8));
    // Warm the per-sample service-time estimate.
    for i in 0..4 {
        server.infer(bench_sample(i));
    }
    // A 1 ns budget is below any possible queue residency.
    let shed = server
        .submit_request(ServeRequest::new(bench_sample(9)).with_deadline(Duration::from_nanos(1)));
    match shed.result() {
        Err(ServeError::Rejected {
            estimated_us,
            deadline_us,
        }) => {
            assert!(estimated_us > deadline_us);
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Shedding is observable and non-destructive: the next request serves.
    assert_eq!(server.infer(bench_sample(0)).shape(), &[1, 10]);
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.samples, 5, "shed request consumed no service");
}

/// A request admitted with a feasible-looking deadline that then expires
/// while queued is dropped at dispatch with [`ServeError::DeadlineMissed`]
/// — the model never runs for it.
#[test]
fn queued_request_past_deadline_is_dropped_at_dispatch() {
    let server = Server::start(vec![bench_mlp(3)], BatchConfig::no_wait(8));
    // Warm the estimate so admission has real numbers (a near-empty queue
    // estimates well under the deadline below, so the request is admitted).
    for i in 0..4 {
        server.infer(bench_sample(i));
    }
    // Occupy the worker far past the deadline horizon.
    let occupier = server.submit(Tensor::zeros(vec![1024, 64]));
    spin_until_drained(&server);
    let doomed = server.submit_request(
        ServeRequest::new(bench_sample(5)).with_deadline(Duration::from_millis(20)),
    );
    assert_eq!(occupier.wait().shape(), &[1024, 10]);
    match doomed.result() {
        Err(ServeError::DeadlineMissed {
            waited_us,
            deadline_us,
        }) => {
            assert!(
                waited_us >= deadline_us,
                "waited {waited_us} < {deadline_us}"
            );
        }
        other => panic!("expected DeadlineMissed, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.rejected, 0, "the request was admitted, not shed");
}

fn variant_b(seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Sequential::new()
        .push(Dense::new(4, 8, true, &mut rng))
        .push(Relu::new())
        .push(Dense::new(8, 2, true, &mut rng));
    set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
    m
}

fn sample_b(i: usize) -> Tensor {
    Tensor::from_vec(
        vec![1, 4],
        (0..4)
            .map(|j| ((i * 5 + j * 9) % 13) as f32 * 0.1 - 0.6)
            .collect(),
    )
}

fn artifact_of(model: &mut Sequential) -> fast_ckpt::Artifact {
    let mut artifact = fast_ckpt::Artifact::new();
    artifact.insert(
        fast_ckpt::SECTION_MODEL,
        fast_ckpt::capture_state(model).to_bytes(),
    );
    artifact
}

/// Multi-model tenancy: two architecturally different models resident in
/// one server, routed by name, with independent queues, generations, and
/// reloads.
#[test]
fn resident_models_are_independent() {
    let mut ref_a = small_model(10);
    let mut ref_b = CompiledModel::compile(variant_b(20), 0);
    let want_a: Vec<Tensor> = (0..4).map(|i| ref_a.infer(&small_sample(i))).collect();
    let want_b: Vec<Tensor> = (0..4).map(|i| ref_b.infer(&sample_b(i))).collect();

    let server = Server::builder(BatchConfig::no_wait(8))
        .model("a", vec![small_model(10)])
        .model("b", vec![CompiledModel::compile(variant_b(20), 0)])
        .start();
    assert_eq!(server.model_names(), vec!["a", "b"]);
    assert_eq!(server.workers(), 2);
    assert_eq!(server.queue_depth_of("b"), Some(0));
    assert_eq!(server.queue_depth_of("nope"), None);

    // Interleaved routed submissions answer from the right model.
    let pa: Vec<Pending> = (0..4)
        .map(|i| server.submit_request(ServeRequest::new(small_sample(i)).for_model("a")))
        .collect();
    let pb: Vec<Pending> = (0..4)
        .map(|i| server.submit_request(ServeRequest::new(sample_b(i)).for_model("b")))
        .collect();
    for (p, w) in pa.into_iter().zip(&want_a) {
        assert_eq!(&p.wait(), w);
    }
    for (p, w) in pb.into_iter().zip(&want_b) {
        assert_eq!(&p.wait(), w);
    }
    // Default-model routing targets the first registered model.
    assert_eq!(&server.infer(small_sample(0)), &want_a[0]);

    // Reloading `a` bumps only `a`'s generation and leaves `b` bit-for-bit
    // untouched.
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut new_a = Sequential::new()
        .push(Dense::new(6, 12, true, &mut rng))
        .push(Relu::new())
        .push(Dense::new(12, 3, true, &mut rng));
    set_uniform_precision(&mut new_a, LayerPrecision::bfp_fixed(4));
    let artifact = artifact_of(&mut new_a);
    let mut ref_new_a = CompiledModel::compile(new_a, 0);
    server.reload_model("a", &artifact).unwrap();
    assert_eq!(server.weight_generation_of("a"), Some(1));
    assert_eq!(server.weight_generation_of("b"), Some(0));
    assert_eq!(server.weight_generation_of("nope"), None);
    assert_eq!(
        server
            .submit_request(ServeRequest::new(small_sample(2)).for_model("a"))
            .wait(),
        ref_new_a.infer(&small_sample(2)),
        "model `a` must serve the reloaded weights"
    );
    assert_eq!(
        server
            .submit_request(ServeRequest::new(sample_b(2)).for_model("b"))
            .wait(),
        want_b[2],
        "model `b` must be untouched by `a`'s reload"
    );

    let stats = server.shutdown();
    assert_eq!(stats.samples, 11);
    assert_eq!(stats.reloads, 1, "only `a`'s single worker applied a swap");
    assert_eq!(stats.reload_failures, 0);
}

/// Satellite: `Server::reload` mid-burst on the shared queue, per resident
/// model independently — zero dropped non-shed requests on either model,
/// and the swap lands at a batch boundary for the reloaded model only.
#[test]
fn per_model_reload_races_live_traffic_with_zero_drops() {
    let mut ref_b = CompiledModel::compile(variant_b(40), 0);
    let want_b: Vec<Tensor> = (0..4).map(|i| ref_b.infer(&sample_b(i))).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let mut new_a = Sequential::new()
        .push(Dense::new(6, 12, true, &mut rng))
        .push(Relu::new())
        .push(Dense::new(12, 3, true, &mut rng));
    set_uniform_precision(&mut new_a, LayerPrecision::bfp_fixed(4));
    let artifact = artifact_of(&mut new_a);
    let mut ref_new_a = CompiledModel::compile(new_a, 0);

    let server = Server::builder(BatchConfig::default())
        .model("a", vec![small_model(30), small_model(30)])
        .model("b", vec![CompiledModel::compile(variant_b(40), 0)])
        .start();
    let per_thread = 10usize;
    std::thread::scope(|scope| {
        for t in 0..2 {
            let server = &server;
            scope.spawn(move || {
                let pending: Vec<(usize, Pending)> = (0..per_thread)
                    .map(|k| {
                        let i = t * per_thread + k;
                        if i.is_multiple_of(2) {
                            (
                                3,
                                server.submit_request(
                                    ServeRequest::new(small_sample(i)).for_model("a"),
                                ),
                            )
                        } else {
                            (
                                2,
                                server
                                    .submit_request(ServeRequest::new(sample_b(i)).for_model("b")),
                            )
                        }
                    })
                    .collect();
                for (width, p) in pending {
                    // Zero drops while the reload races the burst; `a`
                    // responses may come from either weight generation.
                    assert_eq!(p.wait().shape(), &[1, width]);
                }
            });
        }
        server.reload_model("a", &artifact).unwrap();
    });
    // After the burst: `a` serves the new weights, `b` is bit-unchanged.
    for (i, want) in want_b.iter().enumerate().take(4) {
        assert_eq!(
            server
                .submit_request(ServeRequest::new(small_sample(i)).for_model("a"))
                .wait(),
            ref_new_a.infer(&small_sample(i))
        );
        assert_eq!(
            &server
                .submit_request(ServeRequest::new(sample_b(i)).for_model("b"))
                .wait(),
            want
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.samples, (2 * per_thread + 8) as u64, "zero drops");
    assert_eq!(stats.reloads, 2, "both `a` workers applied the swap");
    assert_eq!(stats.reload_failures, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_missed, 0);
}

/// Deadline-armed requests under light load sail through: admission
/// control only sheds what provably cannot make it.
#[test]
fn generous_deadlines_are_admitted_and_served() {
    let server = Server::start(vec![small_model(50)], BatchConfig::default());
    let pending: Vec<Pending> = (0..8)
        .map(|i| server.submit_with_deadline(small_sample(i), Duration::from_secs(30)))
        .collect();
    for p in pending {
        assert_eq!(p.wait().shape(), &[1, 3]);
    }
    let stats = server.shutdown();
    assert_eq!(stats.samples, 8);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_missed, 0);
}
