//! Property tests for the serving engine: the compiled (frozen-weight)
//! forward path is bit-identical to the training-path evaluation forward
//! under deterministic rounding, and dynamic micro-batching never changes
//! results sample-for-sample.

use fast_bfp::{BfpFormat, Rounding};
use fast_nn::models::{mlp, resnet_lite, ResNetConfig};
use fast_nn::{
    set_uniform_precision, Conv2d, Dense, ExecMode, GlobalAvgPool, Layer, LayerPrecision,
    NumericFormat, Relu, Sequential, Session,
};
use fast_serve::{BatchConfig, CompiledModel, Pending, Server};
use fast_tensor::Tensor;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A deterministic-rounding format drawn from the zoo of paper Fig 2
/// (no stochastic rounding: SR streams are consumed differently by the
/// cached and uncached paths, so bit-equality is only claimed for
/// deterministic rounding — DESIGN.md §8).
fn format_for(idx: u8) -> NumericFormat {
    match idx % 6 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::high()),
        4 => NumericFormat::bfp_nearest(BfpFormat::low()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: fast_bfp::Rounding::Nearest,
            windowed: true,
        },
    }
}

fn precision_for(w: u8, a: u8) -> LayerPrecision {
    LayerPrecision {
        weights: format_for(w),
        activations: format_for(a),
        // Gradients are never quantized in a forward-only path.
        gradients: NumericFormat::Fp32,
    }
}

/// The full 10-format zoo of `crates/nn/tests/proptests.rs` (paper Fig 2
/// plus exotics), usable for *weights*: frozen-weight quantization draws
/// its stochastic bits from the compile-time source, so even SR weight
/// formats compile deterministically and replicas stay bit-identical.
fn zoo_format(idx: usize) -> NumericFormat {
    match idx % 10 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::low()),
        4 => NumericFormat::bfp_nearest(BfpFormat::high()),
        5 => NumericFormat::bfp_stochastic(BfpFormat::high()),
        6 => NumericFormat::Bfp {
            format: BfpFormat::new(16, 3, 3).unwrap(),
            rounding: Rounding::Stochastic { noise_bits: 5 },
            windowed: true,
        },
        7 => NumericFormat::Bfp {
            format: BfpFormat::new(8, 7, 8).unwrap(),
            rounding: Rounding::Truncate,
            windowed: false,
        },
        8 => NumericFormat::bfp_nearest(BfpFormat::new(16, 12, 8).unwrap()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: Rounding::Nearest,
            windowed: true,
        },
    }
}

/// The batch-transparent subset of the zoo, usable for *activations*.
/// Excluded, because their quantization depends on batch composition
/// (DESIGN.md §8): SR formats (noise is positional, so a request's bits
/// shift with its offset inside a coalesced batch), `Int` (symmetric
/// scale from the whole tensor's max-abs), and windowed BFP (reference
/// exponent from the whole tensor's max exponent). What remains draws
/// every quantization statistic per group, and groups never cross
/// samples.
fn batch_transparent_zoo_format(idx: usize) -> NumericFormat {
    const BATCH_TRANSPARENT: [usize; 6] = [0, 1, 3, 4, 7, 8];
    zoo_format(BATCH_TRANSPARENT[idx % 6])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CompiledModel forward ≡ training-path eval forward, bit for bit,
    /// for MLPs under random deterministic formats and random inputs.
    #[test]
    fn compiled_mlp_bit_identical_to_eval_forward(
        seed in 0u64..1000,
        w_fmt in 0u8..6,
        a_fmt in 0u8..6,
        batch in 1usize..4,
    ) {
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = mlp(&[10, 24, 5], &mut rng);
            set_uniform_precision(&mut m, precision_for(w_fmt, a_fmt));
            m
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD00D);
        let x = Tensor::from_vec(
            vec![batch, 10],
            (0..batch * 10).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        );
        let want = build().forward(&x, &mut Session::eval(0));
        let mut compiled = CompiledModel::compile(build(), 0);
        prop_assert_eq!(&compiled.infer(&x), &want);
        // Cache replay on a second request stays identical.
        prop_assert_eq!(&compiled.infer(&x), &want);
    }

    /// Same bit-identity for a conv stack (Conv2d frozen path, im2col
    /// weight reshape) under random deterministic formats.
    #[test]
    fn compiled_conv_bit_identical_to_eval_forward(
        seed in 0u64..1000,
        w_fmt in 0u8..6,
        a_fmt in 0u8..6,
    ) {
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = Sequential::new()
                .push(Conv2d::new(2, 6, 3, 1, 1, true, &mut rng))
                .push(Relu::new())
                .push(Conv2d::new(6, 4, 3, 2, 1, true, &mut rng));
            set_uniform_precision(&mut m, precision_for(w_fmt, a_fmt));
            m
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let x = Tensor::from_vec(
            vec![1, 2, 8, 8],
            (0..128).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let want = build().forward(&x, &mut Session::eval(0));
        let mut compiled = CompiledModel::compile(build(), 0);
        prop_assert_eq!(&compiled.infer(&x), &want);
    }

    /// Micro-batched serving returns, for every request, exactly the
    /// tensor a single-sample forward would have produced — across random
    /// batching configs and request counts.
    #[test]
    fn batched_serving_matches_single_sample(
        seed in 0u64..500,
        max_batch in 1usize..7,
        requests in 1usize..14,
        workers in 1usize..3,
    ) {
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = Sequential::new()
                .push(Dense::new(5, 9, true, &mut rng))
                .push(Relu::new())
                .push(Dense::new(9, 3, true, &mut rng));
            set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
            CompiledModel::compile(m, 0)
        };
        let sample = |i: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (i as u64) << 8);
            Tensor::from_vec(
                vec![1, 5],
                (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            )
        };
        let mut reference = build();
        let want: Vec<Tensor> = (0..requests).map(|i| reference.infer(&sample(i))).collect();

        // Deliberately sets the deprecated, ignored `max_wait` knob: the
        // dispatcher must serve identically with it present.
        #[allow(deprecated)]
        let cfg = BatchConfig { max_batch, max_wait: Duration::from_millis(5) };
        let server = Server::start((0..workers).map(|_| build()).collect(), cfg);
        let pending: Vec<Pending> = (0..requests).map(|i| server.submit(sample(i))).collect();
        for (p, w) in pending.into_iter().zip(&want) {
            prop_assert_eq!(&p.wait(), w);
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.samples, requests as u64);
        prop_assert!(stats.batch_histogram.keys().all(|&s| s <= max_batch));
    }
}

/// The continuous-batching dispatcher coalesces only within a shape
/// bucket, so a model that accepts *several* input shapes is needed to
/// exercise bucketing for real: stride-1 padded convs + global average
/// pooling accept any H×W and produce a fixed-width head input.
fn bucketed_conv_model(seed: u64, w_fmt: usize, a_fmt: usize) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Sequential::new()
        .push(Conv2d::new(2, 4, 3, 1, 1, false, &mut rng))
        .push(Relu::new())
        .push(GlobalAvgPool::new())
        .push(Dense::new(4, 3, true, &mut rng));
    set_uniform_precision(
        &mut m,
        LayerPrecision {
            weights: zoo_format(w_fmt),
            activations: batch_transparent_zoo_format(a_fmt),
            gradients: NumericFormat::Fp32,
        },
    );
    m
}

/// The per-sample shapes of the three buckets a request stream may hit.
const BUCKET_SHAPES: [(usize, usize); 3] = [(4, 4), (4, 6), (6, 6)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Continuous-batching bit-transparency across shape buckets, the full
    /// 10-format weight zoo, batch-transparent activation formats, and both
    /// qGEMM exec modes: every response from a mixed-shape request stream
    /// is bit-identical to a lone single-request forward. Mismatched
    /// trailing shapes must never coalesce — the batcher's `stack_inputs`
    /// panics on a mixed batch, so all-requests-succeeding is itself proof
    /// that no cross-bucket batch was ever formed.
    #[test]
    fn mixed_shape_streams_are_bit_transparent(
        seed in 0u64..500,
        w_fmt in 0usize..10,
        a_fmt in 0usize..6,
        integer_mode in 0usize..2,
        // Each pick encodes (bucket, samples): `p % 3` selects the shape
        // bucket, `1 + p / 3` the sample count (1 or 2).
        raw_picks in prop::collection::vec(0usize..6, 1..12),
        max_batch in 2usize..7,
    ) {
        let picks: Vec<(usize, usize)> =
            raw_picks.iter().map(|&p| (p % 3, 1 + p / 3)).collect();
        let exec = if integer_mode == 1 { ExecMode::Integer } else { ExecMode::Replay };
        let build = || {
            CompiledModel::compile(bucketed_conv_model(seed, w_fmt, a_fmt), 0)
                .with_exec_mode(exec)
        };
        let input = |i: usize, bucket: usize, samples: usize| {
            let (h, w) = BUCKET_SHAPES[bucket];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ ((i as u64) << 10));
            Tensor::from_vec(
                vec![samples, 2, h, w],
                (0..samples * 2 * h * w)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        };
        let mut reference = build();
        let want: Vec<Tensor> = picks
            .iter()
            .enumerate()
            .map(|(i, &(b, s))| reference.infer(&input(i, b, s)))
            .collect();

        let server = Server::start(
            vec![build(), build()],
            BatchConfig::no_wait(max_batch),
        );
        let pending: Vec<Pending> = picks
            .iter()
            .enumerate()
            .map(|(i, &(b, s))| server.submit(input(i, b, s)))
            .collect();
        for (p, w) in pending.into_iter().zip(&want) {
            prop_assert_eq!(&p.wait(), w, "coalesced response differs from lone forward");
        }
        let stats = server.shutdown();
        let samples: usize = picks.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(stats.samples, samples as u64);
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.deadline_missed, 0);
    }
}

/// ResNet-lite end-to-end: the workload the serving benchmark drives, with
/// batch-norm running statistics exercised by a short training phase first.
#[test]
fn compiled_resnet_lite_matches_eval_after_training_updates() {
    let build = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut m = resnet_lite(ResNetConfig::resnet20(4, 3), &mut rng);
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    };
    let x = Tensor::from_vec(
        vec![2, 3, 16, 16],
        (0..2 * 3 * 256).map(|i| (i as f32 * 0.037).sin()).collect(),
    );
    let want = build().forward(&x, &mut Session::eval(0));
    let mut compiled = CompiledModel::compile(build(), 0);
    assert_eq!(compiled.warm(&x), want);
    assert_eq!(compiled.infer(&x), want);
}
