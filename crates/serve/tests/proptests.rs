//! Property tests for the serving engine: the compiled (frozen-weight)
//! forward path is bit-identical to the training-path evaluation forward
//! under deterministic rounding, and dynamic micro-batching never changes
//! results sample-for-sample.

use fast_bfp::BfpFormat;
use fast_nn::models::{mlp, resnet_lite, ResNetConfig};
use fast_nn::{
    set_uniform_precision, Conv2d, Dense, Layer, LayerPrecision, NumericFormat, Relu, Sequential,
    Session,
};
use fast_serve::{BatchConfig, CompiledModel, Pending, Server};
use fast_tensor::Tensor;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A deterministic-rounding format drawn from the zoo of paper Fig 2
/// (no stochastic rounding: SR streams are consumed differently by the
/// cached and uncached paths, so bit-equality is only claimed for
/// deterministic rounding — DESIGN.md §8).
fn format_for(idx: u8) -> NumericFormat {
    match idx % 6 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::high()),
        4 => NumericFormat::bfp_nearest(BfpFormat::low()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: fast_bfp::Rounding::Nearest,
            windowed: true,
        },
    }
}

fn precision_for(w: u8, a: u8) -> LayerPrecision {
    LayerPrecision {
        weights: format_for(w),
        activations: format_for(a),
        // Gradients are never quantized in a forward-only path.
        gradients: NumericFormat::Fp32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CompiledModel forward ≡ training-path eval forward, bit for bit,
    /// for MLPs under random deterministic formats and random inputs.
    #[test]
    fn compiled_mlp_bit_identical_to_eval_forward(
        seed in 0u64..1000,
        w_fmt in 0u8..6,
        a_fmt in 0u8..6,
        batch in 1usize..4,
    ) {
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = mlp(&[10, 24, 5], &mut rng);
            set_uniform_precision(&mut m, precision_for(w_fmt, a_fmt));
            m
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD00D);
        let x = Tensor::from_vec(
            vec![batch, 10],
            (0..batch * 10).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        );
        let want = build().forward(&x, &mut Session::eval(0));
        let mut compiled = CompiledModel::compile(build(), 0);
        prop_assert_eq!(&compiled.infer(&x), &want);
        // Cache replay on a second request stays identical.
        prop_assert_eq!(&compiled.infer(&x), &want);
    }

    /// Same bit-identity for a conv stack (Conv2d frozen path, im2col
    /// weight reshape) under random deterministic formats.
    #[test]
    fn compiled_conv_bit_identical_to_eval_forward(
        seed in 0u64..1000,
        w_fmt in 0u8..6,
        a_fmt in 0u8..6,
    ) {
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = Sequential::new()
                .push(Conv2d::new(2, 6, 3, 1, 1, true, &mut rng))
                .push(Relu::new())
                .push(Conv2d::new(6, 4, 3, 2, 1, true, &mut rng));
            set_uniform_precision(&mut m, precision_for(w_fmt, a_fmt));
            m
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let x = Tensor::from_vec(
            vec![1, 2, 8, 8],
            (0..128).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let want = build().forward(&x, &mut Session::eval(0));
        let mut compiled = CompiledModel::compile(build(), 0);
        prop_assert_eq!(&compiled.infer(&x), &want);
    }

    /// Micro-batched serving returns, for every request, exactly the
    /// tensor a single-sample forward would have produced — across random
    /// batching configs and request counts.
    #[test]
    fn batched_serving_matches_single_sample(
        seed in 0u64..500,
        max_batch in 1usize..7,
        requests in 1usize..14,
        workers in 1usize..3,
    ) {
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = Sequential::new()
                .push(Dense::new(5, 9, true, &mut rng))
                .push(Relu::new())
                .push(Dense::new(9, 3, true, &mut rng));
            set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
            CompiledModel::compile(m, 0)
        };
        let sample = |i: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (i as u64) << 8);
            Tensor::from_vec(
                vec![1, 5],
                (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            )
        };
        let mut reference = build();
        let want: Vec<Tensor> = (0..requests).map(|i| reference.infer(&sample(i))).collect();

        let server = Server::start(
            (0..workers).map(|_| build()).collect(),
            BatchConfig { max_batch, max_wait: Duration::from_millis(5) },
        );
        let pending: Vec<Pending> = (0..requests).map(|i| server.submit(sample(i))).collect();
        for (p, w) in pending.into_iter().zip(&want) {
            prop_assert_eq!(&p.wait(), w);
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.samples, requests as u64);
        prop_assert!(stats.batch_histogram.keys().all(|&s| s <= max_batch));
    }
}

/// ResNet-lite end-to-end: the workload the serving benchmark drives, with
/// batch-norm running statistics exercised by a short training phase first.
#[test]
fn compiled_resnet_lite_matches_eval_after_training_updates() {
    let build = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut m = resnet_lite(ResNetConfig::resnet20(4, 3), &mut rng);
        set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
        m
    };
    let x = Tensor::from_vec(
        vec![2, 3, 16, 16],
        (0..2 * 3 * 256).map(|i| (i as f32 * 0.037).sin()).collect(),
    );
    let want = build().forward(&x, &mut Session::eval(0));
    let mut compiled = CompiledModel::compile(build(), 0);
    assert_eq!(compiled.warm(&x), want);
    assert_eq!(compiled.infer(&x), want);
}
