//! The numerical-variability sweep behind `BENCH_variability.json`
//! (ROADMAP item 5; the paper's Fig 17/19 story at repo scale).
//!
//! For each `(workload, seed)` the sweep trains an FP32 baseline, then
//! re-trains the *same* model on the *same* batches under each numeric
//! format × stochastic-rounding mode and distils the pair of runs into
//! four divergence metrics:
//!
//! * `loss_divergence` — mean absolute gap between the run's loss curve
//!   and the same-seed FP32 curve (how far the trajectory drifts);
//! * `weight_l2` / `weight_ulp_mean` — L2 and mean-ULP distance between
//!   the final weights and the baseline's (where the run *lands*);
//! * `steps_to_target` — first step whose held-out accuracy reaches the
//!   workload's target (time-to-accuracy, the paper's headline axis;
//!   `-1` when the budget never reaches it).
//!
//! Every run pins `ExecMode::Replay` and an explicit [`SrMode`], so the
//! records are a pure function of the sweep definition — independent of
//! worker count and the `FAST_QGEMM_MODE`/`FAST_SR_MODE` environment — and
//! `BENCH_variability.json` regenerates bit-for-bit. The quick sweep is a
//! strict subset of the full one (same step counts, fewer cells), which is
//! what lets CI compare its records against the committed file exactly.

use crate::json::Json;
use crate::workloads::Workload;
use fast_bfp::{BfpFormat, Rounding, SrMode};
use fast_nn::{
    set_uniform_precision, ExecMode, Layer, LayerPrecision, NoopHook, NumericFormat, Sgd, Trainer,
};

/// The 10-format zoo shared with `tests/checkpoint.rs` and the quantized
/// GEMM plan pins: FP32 borrow-through, scalar formats, packable BFP
/// across rounding modes/windows, and wide-mantissa fallbacks.
pub fn zoo_format(idx: usize) -> NumericFormat {
    match idx % 10 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::low()),
        4 => NumericFormat::bfp_nearest(BfpFormat::high()),
        5 => NumericFormat::bfp_stochastic(BfpFormat::high()),
        6 => NumericFormat::Bfp {
            format: BfpFormat::new(16, 3, 3).unwrap(),
            rounding: Rounding::Stochastic { noise_bits: 5 },
            windowed: true,
        },
        7 => NumericFormat::Bfp {
            format: BfpFormat::new(8, 7, 8).unwrap(),
            rounding: Rounding::Truncate,
            windowed: false,
        },
        8 => NumericFormat::bfp_nearest(BfpFormat::new(16, 12, 8).unwrap()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: Rounding::Nearest,
            windowed: true,
        },
    }
}

/// One workload's slice of the sweep.
#[derive(Debug, Clone)]
pub struct WorkloadPlan {
    /// The workload to train.
    pub workload: Workload,
    /// Fixed training budget (identical across formats and sweeps).
    pub train_steps: usize,
    /// Held-out accuracy is evaluated every this many steps.
    pub eval_every: usize,
    /// Accuracy (%) that stops the `steps_to_target` clock.
    pub target_accuracy: f64,
    /// Indices into [`zoo_format`] to sweep.
    pub formats: Vec<usize>,
}

/// A full sweep definition: seeds × per-workload plans.
#[derive(Debug, Clone)]
pub struct VariabilitySweep {
    /// Whether this is the CI quick subset.
    pub quick: bool,
    /// Initialization/data seeds swept per plan.
    pub seeds: Vec<u64>,
    /// The workload plans.
    pub plans: Vec<WorkloadPlan>,
}

impl VariabilitySweep {
    /// The committed-record sweep: 3 seeds × the full 10-format zoo on the
    /// MLP and a 6-format subset on ResNet-lite, both SR modes.
    pub fn full() -> Self {
        VariabilitySweep {
            quick: false,
            seeds: vec![1, 2, 3],
            plans: vec![
                WorkloadPlan {
                    workload: Workload::Mlp,
                    train_steps: 24,
                    eval_every: 4,
                    target_accuracy: 90.0,
                    formats: (0..10).collect(),
                },
                WorkloadPlan {
                    workload: Workload::ResNetLite,
                    train_steps: 8,
                    eval_every: 4,
                    target_accuracy: 40.0,
                    formats: vec![0, 3, 4, 5, 6, 9],
                },
            ],
        }
    }

    /// The CI subset: one seed, three formats on the MLP, two on
    /// ResNet-lite — every record also exists (bit-identically) in
    /// [`VariabilitySweep::full`].
    pub fn quick() -> Self {
        let full = VariabilitySweep::full();
        VariabilitySweep {
            quick: true,
            seeds: vec![1],
            plans: vec![
                WorkloadPlan {
                    formats: vec![0, 4, 5],
                    ..full.plans[0].clone()
                },
                WorkloadPlan {
                    formats: vec![0, 5],
                    ..full.plans[1].clone()
                },
            ],
        }
    }
}

/// One `(workload, seed, format, sr_mode)` cell's metrics.
#[derive(Debug, Clone)]
pub struct VariabilityRecord {
    /// Workload name.
    pub workload: &'static str,
    /// Model-init/data seed.
    pub seed: u64,
    /// Index into [`zoo_format`].
    pub format_idx: usize,
    /// Human-readable format name.
    pub format: String,
    /// `"lfsr"` or `"counter"`.
    pub sr_mode: &'static str,
    /// Loss of the final training step.
    pub final_loss: f64,
    /// Mean absolute loss gap to the same-seed FP32 baseline curve.
    pub loss_divergence: f64,
    /// L2 distance between final weights and the baseline's.
    pub weight_l2: f64,
    /// Mean ULP distance between final weights and the baseline's.
    pub weight_ulp_mean: f64,
    /// First step reaching the accuracy target (`-1` = never in budget).
    pub steps_to_target: i64,
}

struct RunOutcome {
    losses: Vec<f64>,
    weights: Vec<f32>,
    steps_to_target: i64,
}

fn sr_label(mode: SrMode) -> &'static str {
    match mode {
        SrMode::Lfsr => "lfsr",
        SrMode::Counter => "counter",
    }
}

fn run_one(plan: &WorkloadPlan, seed: u64, format_idx: usize, sr_mode: SrMode) -> RunOutcome {
    let w = plan.workload;
    let mut trainer = Trainer::new(w.build(seed), Sgd::new(0.05, 0.9, 0.0), seed);
    set_uniform_precision(
        &mut trainer.model,
        LayerPrecision::uniform(zoo_format(format_idx)),
    );
    // Pin both session knobs so records regenerate identically under the
    // CI env legs (FAST_QGEMM_MODE / FAST_SR_MODE would otherwise move the
    // session defaults).
    trainer.session.exec_mode = ExecMode::Replay;
    trainer.session.sr_mode = sr_mode;
    let stream = w.training_stream(plan.train_steps);
    let eval = w.eval_batches();
    let mut losses = Vec::with_capacity(plan.train_steps);
    let mut steps_to_target = -1i64;
    for (i, batch) in stream.iter().enumerate() {
        losses.push(w.step(&mut trainer, batch, &mut NoopHook).loss);
        if steps_to_target < 0 && (i + 1) % plan.eval_every == 0 {
            let acc = trainer.evaluate_classification(&eval);
            if acc >= plan.target_accuracy {
                steps_to_target = (i + 1) as i64;
            }
        }
    }
    let mut weights = Vec::new();
    trainer
        .model
        .visit_params(&mut |p| weights.extend_from_slice(p.value.data()));
    RunOutcome {
        losses,
        weights,
        steps_to_target,
    }
}

/// Monotone integer key over f32 bit patterns: adjacent representable
/// floats map to adjacent keys, so `|key(a) - key(b)|` is the ULP distance.
fn ulp_key(v: f32) -> i64 {
    let bits = v.to_bits();
    if bits & 0x8000_0000 != 0 {
        -((bits & 0x7FFF_FFFF) as i64)
    } else {
        bits as i64
    }
}

fn distill(
    plan: &WorkloadPlan,
    seed: u64,
    format_idx: usize,
    sr_mode: SrMode,
    run: &RunOutcome,
    base: &RunOutcome,
) -> VariabilityRecord {
    assert_eq!(run.losses.len(), base.losses.len());
    assert_eq!(run.weights.len(), base.weights.len());
    let loss_divergence = run
        .losses
        .iter()
        .zip(&base.losses)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / run.losses.len() as f64;
    let weight_l2 = run
        .weights
        .iter()
        .zip(&base.weights)
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let weight_ulp_mean = run
        .weights
        .iter()
        .zip(&base.weights)
        .map(|(a, b)| (ulp_key(*a) - ulp_key(*b)).unsigned_abs() as f64)
        .sum::<f64>()
        / run.weights.len() as f64;
    VariabilityRecord {
        workload: plan.workload.name(),
        seed,
        format_idx,
        format: zoo_format(format_idx).name(),
        sr_mode: sr_label(sr_mode),
        final_loss: *run.losses.last().expect("non-empty run"),
        loss_divergence,
        weight_l2,
        weight_ulp_mean,
        steps_to_target: run.steps_to_target,
    }
}

/// Runs the sweep and returns one record per
/// `(workload, seed, format, sr_mode)` cell.
pub fn run_variability(sweep: &VariabilitySweep) -> Vec<VariabilityRecord> {
    let mut records = Vec::new();
    for plan in &sweep.plans {
        for &seed in &sweep.seeds {
            let base = run_one(plan, seed, 0, SrMode::Lfsr);
            for &format_idx in &plan.formats {
                for sr_mode in [SrMode::Lfsr, SrMode::Counter] {
                    let run = if format_idx == 0 && sr_mode == SrMode::Lfsr {
                        None // the baseline cell compares against itself
                    } else {
                        Some(run_one(plan, seed, format_idx, sr_mode))
                    };
                    records.push(distill(
                        plan,
                        seed,
                        format_idx,
                        sr_mode,
                        run.as_ref().unwrap_or(&base),
                        &base,
                    ));
                }
            }
        }
    }
    records
}

/// The metric fields compared by [`compare_records`].
const METRICS: [&str; 5] = [
    "final_loss",
    "loss_divergence",
    "weight_l2",
    "weight_ulp_mean",
    "steps_to_target",
];

/// Serializes a sweep's records into the committed-file document.
pub fn render_report(sweep: &VariabilitySweep, records: &[VariabilityRecord]) -> String {
    let plans = sweep
        .plans
        .iter()
        .map(|p| {
            (
                p.workload.name().to_string(),
                Json::Obj(vec![
                    ("train_steps".into(), Json::Num(p.train_steps as f64)),
                    ("eval_every".into(), Json::Num(p.eval_every as f64)),
                    ("target_accuracy".into(), Json::Num(p.target_accuracy)),
                    (
                        "formats".into(),
                        Json::Arr(p.formats.iter().map(|&i| Json::Num(i as f64)).collect()),
                    ),
                ]),
            )
        })
        .collect();
    let records = records
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("workload".into(), Json::Str(r.workload.into())),
                ("seed".into(), Json::Num(r.seed as f64)),
                ("format_idx".into(), Json::Num(r.format_idx as f64)),
                ("format".into(), Json::Str(r.format.clone())),
                ("sr_mode".into(), Json::Str(r.sr_mode.into())),
                ("final_loss".into(), Json::num(r.final_loss)),
                ("loss_divergence".into(), Json::num(r.loss_divergence)),
                ("weight_l2".into(), Json::num(r.weight_l2)),
                ("weight_ulp_mean".into(), Json::num(r.weight_ulp_mean)),
                (
                    "steps_to_target".into(),
                    Json::Num(r.steps_to_target as f64),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("fast-variability/v1".into())),
        ("quick".into(), Json::Bool(sweep.quick)),
        (
            "regenerate".into(),
            Json::Str(
                "cargo run --release -p fast_harness --bin variability_bench -- --out BENCH_variability.json"
                    .into(),
            ),
        ),
        (
            "seeds".into(),
            Json::Arr(sweep.seeds.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
        ("workloads".into(), Json::Obj(plans)),
        ("records".into(), Json::Arr(records)),
    ])
    .render()
}

fn record_key(r: &Json) -> Option<String> {
    Some(format!(
        "{}/seed{}/format{}/{}",
        r.get("workload")?.as_str()?,
        r.get("seed")?.as_f64()?,
        r.get("format_idx")?.as_f64()?,
        r.get("sr_mode")?.as_str()?,
    ))
}

/// Compares every record of `current` against the record with the same
/// `(workload, seed, format, sr_mode)` key in `baseline`; all metrics must
/// be bit-identical (the sweep is deterministic, so any gap is real drift).
///
/// Returns the number of matched records.
///
/// # Errors
///
/// One message per missing counterpart or diverging metric.
pub fn compare_records(current: &Json, baseline: &Json) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let empty = Vec::new();
    let base_records = baseline
        .get("records")
        .and_then(|r| r.as_arr())
        .unwrap_or(&empty);
    let cur_records = current
        .get("records")
        .and_then(|r| r.as_arr())
        .unwrap_or(&empty);
    if cur_records.is_empty() {
        errors.push("current run produced no records".into());
    }
    let mut matched = 0usize;
    for rec in cur_records {
        let Some(key) = record_key(rec) else {
            errors.push(format!("malformed current record: {rec:?}"));
            continue;
        };
        let Some(base) = base_records
            .iter()
            .find(|b| record_key(b).as_deref() == Some(key.as_str()))
        else {
            errors.push(format!("{key}: no committed baseline record"));
            continue;
        };
        let mut ok = true;
        for metric in METRICS {
            let (a, b) = (rec.get(metric), base.get(metric));
            match (a, b) {
                (Some(a), Some(b)) if a.bit_eq(b) => {}
                _ => {
                    errors.push(format!(
                        "{key}: {metric} drifted (committed {b:?}, got {a:?})"
                    ));
                    ok = false;
                }
            }
        }
        if ok {
            matched += 1;
        }
    }
    if errors.is_empty() {
        Ok(matched)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_a_subset_of_full() {
        let quick = VariabilitySweep::quick();
        let full = VariabilitySweep::full();
        for seed in &quick.seeds {
            assert!(full.seeds.contains(seed));
        }
        for (q, f) in quick.plans.iter().zip(&full.plans) {
            assert_eq!(q.workload, f.workload);
            assert_eq!(q.train_steps, f.train_steps, "budgets must match");
            assert_eq!(q.eval_every, f.eval_every);
            assert_eq!(q.target_accuracy, f.target_accuracy);
            for fmt in &q.formats {
                assert!(f.formats.contains(fmt), "quick format {fmt} not in full");
            }
        }
    }

    #[test]
    fn records_are_deterministic_and_self_consistent() {
        let sweep = VariabilitySweep {
            quick: true,
            seeds: vec![1],
            plans: vec![WorkloadPlan {
                workload: Workload::Mlp,
                train_steps: 6,
                eval_every: 3,
                target_accuracy: 50.0,
                formats: vec![0, 5],
            }],
        };
        let a = run_variability(&sweep);
        let b = run_variability(&sweep);
        assert_eq!(a.len(), 4, "2 formats × 2 SR modes");
        let doc_a = Json::parse(&render_report(&sweep, &a)).unwrap();
        let doc_b = Json::parse(&render_report(&sweep, &b)).unwrap();
        assert!(doc_a.bit_eq(&doc_b), "sweep must be bit-reproducible");
        assert_eq!(compare_records(&doc_a, &doc_b), Ok(4));
        // The baseline cell compares against itself: all-zero divergence.
        let base = &a[0];
        assert_eq!(base.format_idx, 0);
        assert_eq!(base.loss_divergence, 0.0);
        assert_eq!(base.weight_l2, 0.0);
        // FP32 has no stochastic rounding: both SR cells are identical.
        assert_eq!(a[0].final_loss.to_bits(), a[1].final_loss.to_bits());
        // A stochastic BFP format must actually move under the SR mode.
        let (lfsr, counter) = (&a[2], &a[3]);
        assert_eq!(lfsr.format_idx, 5);
        assert!(lfsr.weight_l2 > 0.0, "quantized run must differ from fp32");
        assert_ne!(
            lfsr.final_loss.to_bits(),
            counter.final_loss.to_bits(),
            "LFSR and counter noise must give different trajectories"
        );
    }

    #[test]
    fn drifted_metrics_are_reported() {
        let sweep = VariabilitySweep {
            quick: true,
            seeds: vec![1],
            plans: vec![WorkloadPlan {
                workload: Workload::Mlp,
                train_steps: 3,
                eval_every: 3,
                target_accuracy: 50.0,
                formats: vec![0],
            }],
        };
        let records = run_variability(&sweep);
        let good = Json::parse(&render_report(&sweep, &records)).unwrap();
        let mut bad = records;
        bad[1].final_loss += 1.0;
        let bad = Json::parse(&render_report(&sweep, &bad)).unwrap();
        let errors = compare_records(&bad, &good).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("final_loss"), "{errors:?}");
    }
}
