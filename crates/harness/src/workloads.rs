//! The six zoo workloads at CI scale: model builders, deterministic data
//! streams, and loss drivers behind one enum.
//!
//! Each [`Workload`] pairs a `crates/nn/src/models/` constructor (downsized
//! so every lifecycle stage runs in seconds) with its `fast_data` dataset
//! and the loss that trains it — cross-entropy for the classifiers, the
//! YOLO composite loss (via [`fast_nn::Trainer::step_custom`]) for the
//! detector. Everything is seeded, so the batch a given step sees is a pure
//! function of `(workload, step)` and every harness run is reproducible.

use fast_data::{GaussianClusters, SequenceTask, SyntheticDetection, SyntheticImages};
use fast_nn::models::{
    mlp, mobilenet_lite, resnet_lite, tiny_transformer, tiny_yolo, vgg_lite, yolo_loss, GtBox,
    MobileNetConfig, ResNetConfig, TransformerConfig, VggConfig, YoloConfig,
};
use fast_nn::{Sequential, StepStats, TrainHook, Trainer};
use fast_tensor::Tensor;
use rand::SeedableRng;

/// Per-workload training batch size.
const BATCH: usize = 4;

/// The tiny YOLO configuration shared by the builder, the loss and the
/// decoder (they must agree on the grid layout).
const YOLO_CFG: YoloConfig = YoloConfig {
    in_channels: 3,
    image_size: 8,
    grid: 2,
    num_classes: 2,
    base_channels: 4,
};

/// One training batch: the input tensor plus the supervision the workload's
/// loss consumes.
#[derive(Debug, Clone)]
pub enum Batch {
    /// `(inputs, class labels)` for the cross-entropy workloads. For the
    /// transformer the labels are flat per-token targets (`batch·seq`).
    Classification(Tensor, Vec<usize>),
    /// `(images, per-image ground-truth boxes)` for the detector.
    Detection(Tensor, Vec<Vec<GtBox>>),
}

impl Batch {
    /// The input tensor of the batch.
    pub fn input(&self) -> &Tensor {
        match self {
            Batch::Classification(x, _) => x,
            Batch::Detection(x, _) => x,
        }
    }
}

/// A model-zoo workload the harness can drive end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 3-cluster Gaussian point classification through `models::mlp`.
    Mlp,
    /// Synthetic 8×8 images through `models::resnet_lite`.
    ResNetLite,
    /// Synthetic 8×8 images through `models::mobilenet_lite`.
    MobileNetLite,
    /// Synthetic 8×8 images through `models::vgg_lite`.
    VggLite,
    /// Token-sequence reversal through `models::tiny_transformer`.
    TransformerLite,
    /// Rectangle detection through `models::tiny_yolo` + `yolo_loss`.
    YoloLite,
}

impl Workload {
    /// Every zoo workload, in a fixed order.
    pub const ALL: [Workload; 6] = [
        Workload::Mlp,
        Workload::ResNetLite,
        Workload::MobileNetLite,
        Workload::VggLite,
        Workload::TransformerLite,
        Workload::YoloLite,
    ];

    /// Stable snake_case name (used in reports and JSON records).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Mlp => "mlp",
            Workload::ResNetLite => "resnet_lite",
            Workload::MobileNetLite => "mobilenet_lite",
            Workload::VggLite => "vgg_lite",
            Workload::TransformerLite => "transformer_lite",
            Workload::YoloLite => "yolo_lite",
        }
    }

    /// Builds the (untrained) model architecture from `seed`.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match self {
            Workload::Mlp => mlp(&[6, 16, 3], &mut rng),
            Workload::ResNetLite => resnet_lite(
                ResNetConfig {
                    in_channels: 3,
                    stem_channels: 4,
                    blocks_per_stage: [1, 1, 1],
                    num_classes: 3,
                    symmetric: false,
                },
                &mut rng,
            ),
            Workload::MobileNetLite => mobilenet_lite(
                MobileNetConfig {
                    in_channels: 3,
                    stem_channels: 4,
                    blocks: 2,
                    num_classes: 3,
                },
                &mut rng,
            ),
            Workload::VggLite => vgg_lite(
                VggConfig {
                    in_channels: 3,
                    image_size: 8,
                    base_channels: 4,
                    fc_dim: 16,
                    num_classes: 3,
                },
                &mut rng,
            ),
            Workload::TransformerLite => tiny_transformer(
                TransformerConfig {
                    vocab: 8,
                    d_model: 16,
                    heads: 2,
                    ff_dim: 32,
                    layers: 1,
                    seq_len: 4,
                },
                &mut rng,
            ),
            Workload::YoloLite => tiny_yolo(YOLO_CFG, &mut rng),
        }
    }

    /// The first `steps` training batches, cycling epochs as needed. The
    /// stream is a pure function of the workload, so two runs that step
    /// through the same indices see identical bytes.
    pub fn training_stream(&self, steps: usize) -> Vec<Batch> {
        let mut out = Vec::with_capacity(steps);
        let mut epoch = 0u64;
        while out.len() < steps {
            match self {
                Workload::Mlp => {
                    for (x, y) in self.clusters().train_batches(BATCH, epoch) {
                        out.push(Batch::Classification(x, y));
                    }
                }
                Workload::ResNetLite | Workload::MobileNetLite | Workload::VggLite => {
                    for (x, y) in self.images().train_batches(BATCH, epoch) {
                        out.push(Batch::Classification(x, y));
                    }
                }
                Workload::TransformerLite => {
                    for (x, y) in self.sequences().train_batches(BATCH, epoch) {
                        out.push(Batch::Classification(x, y));
                    }
                }
                Workload::YoloLite => {
                    for (x, gt) in self.detection().train_batches(BATCH, epoch) {
                        out.push(Batch::Detection(x, gt));
                    }
                }
            }
            epoch += 1;
        }
        out.truncate(steps);
        out
    }

    /// Held-out classification batches for accuracy evaluation. Empty for
    /// the detector (mAP, not accuracy, is its metric).
    pub fn eval_batches(&self) -> Vec<(Tensor, Vec<usize>)> {
        match self {
            Workload::Mlp => self.clusters().test_batches(8),
            Workload::ResNetLite | Workload::MobileNetLite | Workload::VggLite => {
                self.images().test_batches(8)
            }
            Workload::TransformerLite => self.sequences().test_batches(8),
            Workload::YoloLite => Vec::new(),
        }
    }

    /// A deterministic single-sample serving input (leading dimension 1),
    /// drawn from the held-out split.
    pub fn sample_input(&self, i: usize) -> Tensor {
        let one = match self {
            Workload::Mlp => self.clusters().test_batches(1),
            Workload::ResNetLite | Workload::MobileNetLite | Workload::VggLite => {
                self.images().test_batches(1)
            }
            Workload::TransformerLite => self.sequences().test_batches(1),
            Workload::YoloLite => {
                return self.detection().test_batches(1)[i % 8].0.clone();
            }
        };
        one[i % one.len()].0.clone()
    }

    /// Runs one optimizer step on `batch` with the workload's loss.
    pub fn step(
        &self,
        trainer: &mut Trainer,
        batch: &Batch,
        hook: &mut dyn TrainHook,
    ) -> StepStats {
        match batch {
            Batch::Classification(x, labels) => trainer.step_classification(x, labels, hook),
            Batch::Detection(x, targets) => {
                trainer.step_custom(x, &mut |pred| yolo_loss(pred, targets, YOLO_CFG), hook)
            }
        }
    }

    fn clusters(&self) -> GaussianClusters {
        GaussianClusters::generate(3, 6, 32, 16, 1.0, 0xC1)
    }

    fn images(&self) -> SyntheticImages {
        // One dataset per CNN workload so their curves are not trivially
        // correlated; the seed is derived from the workload name's first
        // byte to stay a pure function of `self`.
        let seed = 0x1_000 + self.name().as_bytes()[0] as u64;
        SyntheticImages::generate(3, 8, 32, 16, seed)
    }

    fn sequences(&self) -> SequenceTask {
        SequenceTask::generate(8, 4, 32, 16, 0x5E9)
    }

    fn detection(&self) -> SyntheticDetection {
        SyntheticDetection::generate(2, 8, 16, 8, 0xD37)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::{Layer, Session};

    #[test]
    fn streams_are_deterministic_and_sized() {
        for w in Workload::ALL {
            let a = w.training_stream(5);
            let b = w.training_stream(5);
            assert_eq!(a.len(), 5);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.input(), y.input(), "{w} stream must be deterministic");
            }
        }
    }

    #[test]
    fn every_workload_forwards_its_own_samples() {
        for w in Workload::ALL {
            let mut model = w.build(3);
            let mut s = Session::eval(0);
            let y = model.forward(&w.sample_input(0), &mut s);
            assert!(
                y.data().iter().all(|v| v.is_finite()),
                "{w} forward must be finite"
            );
        }
    }
}
