//! A minimal JSON tree: enough to write and re-read the harness's bench
//! records without a serde dependency (the build is offline; the same
//! constraint shaped `crates/bench`'s hand-rolled emitters).
//!
//! Numbers are written with Rust's shortest-round-trip float formatting and
//! parsed with `f64::from_str`, so a value survives write→parse with its
//! exact bits — the property the record/compare protocol relies on.
//! Non-finite values (a diverged run's NaN loss) are written as `null` and
//! read back as [`Json::Null`].

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also stands in for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key→value list (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a float, mapping non-finite values to [`Json::Null`].
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Bit-exact equality: numbers compare by `f64::to_bits` (so `-0.0`
    /// and `0.0` differ), everything else structurally.
    pub fn bit_eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Num(a), Json::Num(b)) => a.to_bits() == b.to_bits(),
            (Json::Arr(a), Json::Arr(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bit_eq(y))
            }
            (Json::Obj(a), Json::Obj(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.bit_eq(vb))
            }
            _ => self == other,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // Shortest round-trip representation; integral values keep
                // a plain integer form.
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested values indent.
                let nested = items
                    .iter()
                    .any(|v| matches!(v, Json::Arr(_) | Json::Obj(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if nested {
                        out.push('\n');
                        indent(out, depth + 1);
                    } else if i > 0 {
                        out.push(' ');
                    }
                    item.write_into(out, depth + 1);
                }
                if nested {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A position-annotated message on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\n' | b'\t' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number '{token}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1f64,
            -0.0,
            3.0,
            1.0e-300,
            f64::MIN_POSITIVE,
            0.123_456_789_012_345_68,
            -2.5e17,
        ] {
            let doc = Json::Obj(vec![("v".into(), Json::num(v))]);
            let back = Json::parse(&doc.render()).unwrap();
            let got = back.get("v").unwrap().as_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits(), "{v} must survive the trip");
        }
        // Non-finite values become null (and stay null on re-parse).
        let doc = Json::Obj(vec![("v".into(), Json::num(f64::NAN))]);
        assert_eq!(
            *Json::parse(&doc.render()).unwrap().get("v").unwrap(),
            Json::Null
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("fast \"bfp\"\n".into())),
            ("ok".into(), Json::Bool(true)),
            (
                "records".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("seed".into(), Json::Num(1.0))]),
                    Json::Obj(vec![("seed".into(), Json::Num(2.0))]),
                ]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            (
                "steps".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert!(back.bit_eq(&doc), "parse(render(x)) == x:\n{text}");
        // Rendering is a pure function of the tree.
        assert_eq!(text, Json::parse(&text).unwrap().render());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["{", "[1,]", "\"abc", "{\"a\" 1}", "12 34", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
