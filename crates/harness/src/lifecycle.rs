//! The end-to-end lifecycle driver: train → checkpoint → resume → freeze →
//! serve → hot-reload, with every hand-off invariant asserted in place.
//!
//! [`run_lifecycle`] pushes one zoo workload through the full pipeline
//! under a chosen `(ExecMode, SrMode)` cell and panics with a
//! cell-labelled message the moment any stage breaks its contract:
//!
//! 1. **Train** under the FAST-Adaptive controller, checkpointing mid-run.
//! 2. **Resume** the mid-run artifact into fresh objects and replay the
//!    remaining steps — losses and final parameters must be bit-identical
//!    to the uninterrupted run (DESIGN.md §10).
//! 3. **Freeze** the trained model into a [`CompiledModel`] — its frozen
//!    forward must equal an eval-session forward bit for bit (§8).
//! 4. **Serve** compiled replicas under concurrent submitters, and
//!    **hot-reload** newly trained weights mid-traffic in a
//!    continual-learning loop — zero dropped requests, no reload
//!    failures, and post-reload responses equal to an eval forward of the
//!    retrained model (§8/§10).
//!
//! The paper's training story (variable-precision BFP + stochastic
//! rounding) runs through the controller exactly as in the experiments;
//! weights and activations use nearest rounding, so the serving stages are
//! deterministic and parity can be asserted even in the stochastic cells.

use crate::workloads::Workload;
use fast_ckpt::StateDict;
use fast_core::{EpsilonSchedule, FastController};
use fast_nn::{ExecMode, Layer, Session, Sgd, SrMode, Trainer};
use fast_serve::{BatchConfig, CompiledModel, Server};
use fast_tensor::Tensor;

/// Knobs for one lifecycle run.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleConfig {
    /// GEMM execution mode for training, eval and serving sessions.
    pub exec_mode: ExecMode,
    /// Stochastic-rounding noise source for all sessions.
    pub sr_mode: SrMode,
    /// Training steps before the mid-run checkpoint.
    pub head_steps: usize,
    /// Steps after the checkpoint (the resume window replayed twice).
    pub tail_steps: usize,
    /// Continual-learning rounds (re-train then hot-reload) while serving.
    pub rounds: usize,
    /// Training steps per continual-learning round.
    pub round_steps: usize,
    /// Compiled replicas behind the server.
    pub replicas: usize,
    /// Concurrent submitter threads per round.
    pub submitters: usize,
    /// Requests each submitter issues per round.
    pub requests_per_submitter: usize,
    /// Seed for model init and the training session.
    pub seed: u64,
}

impl LifecycleConfig {
    /// The CI-scale configuration: a handful of steps per stage, two
    /// replicas, three submitters — small enough that the full 6-workload ×
    /// 4-cell matrix runs in test time, large enough that every stage
    /// genuinely executes (multiple batches, coalescing, two reloads).
    pub fn quick(exec_mode: ExecMode, sr_mode: SrMode) -> Self {
        LifecycleConfig {
            exec_mode,
            sr_mode,
            head_steps: 3,
            tail_steps: 3,
            rounds: 2,
            round_steps: 2,
            replicas: 2,
            submitters: 3,
            requests_per_submitter: 6,
            seed: 0x11FE,
        }
    }
}

/// What a lifecycle run observed (the invariants themselves are asserted
/// inside [`run_lifecycle`]).
#[derive(Debug, Clone)]
pub struct LifecycleReport {
    /// `workload[exec,sr]` label of the matrix cell.
    pub cell: String,
    /// Loss curve of the reference training run (head + tail + rounds).
    pub losses: Vec<f64>,
    /// Samples the server answered (== samples submitted; zero drops).
    pub served: u64,
    /// Per-worker reload applications observed at shutdown.
    pub reloads: u64,
    /// Final weight generation (one per continual-learning round).
    pub generation: u64,
}

/// Number of serving-parity probe inputs per round.
const PROBES: usize = 4;

fn eval_forward(
    model: &mut fast_nn::Sequential,
    x: &Tensor,
    exec_mode: ExecMode,
    sr_mode: SrMode,
) -> Tensor {
    let mut s = Session::eval(0);
    s.exec_mode = exec_mode;
    s.sr_mode = sr_mode;
    model.forward(x, &mut s)
}

fn param_bits(model: &mut fast_nn::Sequential) -> Vec<u32> {
    let mut bits = Vec::new();
    model.visit_params(&mut |p| bits.extend(p.value.data().iter().map(|v| v.to_bits())));
    bits
}

/// Drives `workload` through the full train→freeze→serve lifecycle under
/// `cfg`, asserting every stage contract.
///
/// # Panics
///
/// Panics with a cell-labelled message if any invariant fails: resume is
/// not bit-exact, the compiled forward diverges from eval, a request is
/// dropped, or a reload fails or serves stale weights.
pub fn run_lifecycle(workload: Workload, cfg: &LifecycleConfig) -> LifecycleReport {
    let cell = format!("{}[{:?},{:?}]", workload.name(), cfg.exec_mode, cfg.sr_mode).to_lowercase();
    let total_steps = cfg.head_steps + cfg.tail_steps + cfg.rounds * cfg.round_steps;
    let stream = workload.training_stream(total_steps);
    let opt = || Sgd::new(0.05, 0.9, 0.0);

    // --- 1. Train under the controller, checkpoint mid-run. -------------
    let mut ctl = FastController::new(total_steps, EpsilonSchedule::paper_default()).with_stride(2);
    let mut trainer = Trainer::new(workload.build(cfg.seed), opt(), cfg.seed);
    trainer.session.exec_mode = cfg.exec_mode;
    trainer.session.sr_mode = cfg.sr_mode;
    let mut losses = Vec::with_capacity(total_steps);
    for batch in &stream[..cfg.head_steps] {
        losses.push(workload.step(&mut trainer, batch, &mut ctl).loss);
    }
    let mid = trainer.checkpoint(Some(&mut ctl));
    let mut tail_bits = Vec::with_capacity(cfg.tail_steps);
    for batch in &stream[cfg.head_steps..cfg.head_steps + cfg.tail_steps] {
        let loss = workload.step(&mut trainer, batch, &mut ctl).loss;
        tail_bits.push(loss.to_bits());
        losses.push(loss);
    }
    let tail_params = param_bits(&mut trainer.model);
    assert!(
        losses.iter().all(|l| l.is_finite()),
        "{cell}: training loss must stay finite: {losses:?}"
    );

    // --- 2. Resume the mid-run artifact; replay must be bit-exact. ------
    let mut ctl2 =
        FastController::new(total_steps, EpsilonSchedule::paper_default()).with_stride(2);
    // Seed intentionally different: the artifact must supply every tensor.
    let mut resumed = Trainer::resume(
        workload.build(cfg.seed ^ 0xDEAD),
        opt(),
        &mid,
        Some(&mut ctl2),
    )
    .unwrap_or_else(|e| panic!("{cell}: resume failed: {e}"));
    assert_eq!(
        resumed.session.sr_mode, cfg.sr_mode,
        "{cell}: artifact must self-describe its SR mode"
    );
    resumed.session.exec_mode = cfg.exec_mode; // exec mode is serving config, not state
    for (i, batch) in stream[cfg.head_steps..cfg.head_steps + cfg.tail_steps]
        .iter()
        .enumerate()
    {
        let loss = workload.step(&mut resumed, batch, &mut ctl2).loss;
        assert_eq!(
            loss.to_bits(),
            tail_bits[i],
            "{cell}: resumed loss diverged at tail step {i}"
        );
    }
    assert_eq!(
        param_bits(&mut resumed.model),
        tail_params,
        "{cell}: resumed parameters diverged from the uninterrupted run"
    );

    // --- 3. Freeze; compiled forward must equal eval forward. -----------
    let probes: Vec<Tensor> = (0..PROBES).map(|i| workload.sample_input(i)).collect();
    let want: Vec<Tensor> = probes
        .iter()
        .map(|x| eval_forward(&mut trainer.model, x, cfg.exec_mode, cfg.sr_mode))
        .collect();
    // The resumed model is bit-identical (asserted above), so freezing it
    // keeps `trainer` free to continue the continual-learning rounds.
    let mut compiled = CompiledModel::compile(resumed.model, 0)
        .with_exec_mode(cfg.exec_mode)
        .with_sr_mode(cfg.sr_mode);
    for (x, w) in probes.iter().zip(&want) {
        assert_eq!(
            &compiled.infer(x),
            w,
            "{cell}: compiled forward must match eval forward bit for bit"
        );
    }

    // --- 4. Serve under concurrent load; hot-reload mid-traffic. --------
    let final_art = trainer.checkpoint(Some(&mut ctl));
    let model_state = StateDict::from_bytes(final_art.require(fast_ckpt::SECTION_MODEL).unwrap())
        .unwrap_or_else(|e| panic!("{cell}: model section must decode: {e}"));
    let replicas: Vec<CompiledModel> = (0..cfg.replicas)
        .map(|r| {
            let mut c = CompiledModel::compile(workload.build(cfg.seed ^ (r as u64 + 1)), 0)
                .with_exec_mode(cfg.exec_mode)
                .with_sr_mode(cfg.sr_mode);
            c.apply_state(&model_state)
                .unwrap_or_else(|e| panic!("{cell}: replica {r} rejected trained state: {e}"));
            c
        })
        .collect();
    let server = Server::start(replicas, BatchConfig::default());
    let mut submitted = 0u64;
    let mut consumed = cfg.head_steps + cfg.tail_steps;
    let mut generation = 0;
    for round in 0..cfg.rounds {
        // Concurrent submitters race the re-train + reload below. Dropped
        // requests would hang (or panic) a `wait`, so completion of the
        // scope is itself the zero-drop proof; counts are re-checked at
        // shutdown.
        std::thread::scope(|scope| {
            for t in 0..cfg.submitters {
                let server = &server;
                let probes = &probes;
                scope.spawn(move || {
                    let pending: Vec<_> = (0..cfg.requests_per_submitter)
                        .map(|k| server.submit(probes[(t + k) % probes.len()].clone()))
                        .collect();
                    for p in pending {
                        let out = p.wait();
                        assert!(
                            out.data().iter().all(|v| v.is_finite()),
                            "response must be finite"
                        );
                    }
                });
            }
            // Continual learning: train a couple more steps, ship them.
            for batch in &stream[consumed..consumed + cfg.round_steps] {
                losses.push(workload.step(&mut trainer, batch, &mut ctl).loss);
            }
            let art = trainer.checkpoint(Some(&mut ctl));
            generation = server
                .reload(&art)
                .unwrap_or_else(|e| panic!("{cell}: round {round} reload failed: {e}"));
        });
        submitted += (cfg.submitters * cfg.requests_per_submitter) as u64;
        consumed += cfg.round_steps;
        // The reload call returned inside the scope, so by now every new
        // request must see the round's weights (bit-transparent swap).
        for x in probes.iter() {
            let w = eval_forward(&mut trainer.model, x, cfg.exec_mode, cfg.sr_mode);
            assert_eq!(
                server.infer(x.clone()),
                w,
                "{cell}: round {round} post-reload response must match retrained model"
            );
            submitted += 1;
        }
    }
    // --- 5. Coalesced burst: results must match per-sample eval. ---------
    // All requests are in flight before any wait, so the continuous
    // batcher coalesces the backlog; the responses must still be
    // bit-identical to single-sample eval forwards — this is what
    // exercises the proportional output split for workloads whose models
    // emit several rows per sample (transformer) or rank-4 maps (YOLO).
    let want: Vec<Tensor> = probes
        .iter()
        .map(|x| eval_forward(&mut trainer.model, x, cfg.exec_mode, cfg.sr_mode))
        .collect();
    let burst = 3 * probes.len();
    let pending: Vec<_> = (0..burst)
        .map(|i| server.submit(probes[i % probes.len()].clone()))
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        assert_eq!(
            p.wait(),
            want[i % want.len()],
            "{cell}: coalesced response {i} must equal a per-sample eval forward"
        );
    }
    submitted += burst as u64;
    // --- 6. Deadline-armed wave: admission control must pass requests
    // whose budget is generous, and deadline-armed responses stay
    // bit-identical to unarmed ones (the deadline is admission metadata,
    // not numerics).
    let armed: Vec<_> = (0..probes.len())
        .map(|i| {
            server.submit_request(
                fast_serve::ServeRequest::new(probes[i].clone())
                    .with_deadline(std::time::Duration::from_secs(60)),
            )
        })
        .collect();
    for (i, p) in armed.into_iter().enumerate() {
        assert_eq!(
            p.result().unwrap_or_else(|e| panic!(
                "{cell}: generous-deadline request {i} must be admitted and served: {e}"
            )),
            want[i],
            "{cell}: deadline-armed response {i} must equal the unarmed response"
        );
    }
    submitted += probes.len() as u64;
    assert_eq!(
        server.weight_generation(),
        cfg.rounds as u64,
        "{cell}: one weight generation per round"
    );
    let stats = server.shutdown();
    assert_eq!(
        stats.samples, submitted,
        "{cell}: every submitted sample must be answered"
    );
    assert_eq!(
        stats.reload_failures, 0,
        "{cell}: no replica may reject a round's artifact"
    );
    assert_eq!(
        stats.reloads,
        (cfg.replicas * cfg.rounds) as u64,
        "{cell}: every reload must reach every worker"
    );
    assert_eq!(
        stats.rejected, 0,
        "{cell}: no request carried a deadline tight enough to shed"
    );
    assert_eq!(
        stats.deadline_missed, 0,
        "{cell}: no admitted request may expire in queue at this load"
    );
    assert_eq!(
        stats.queue_ns.count(),
        submitted,
        "{cell}: every served request must record queue residency"
    );
    assert_eq!(
        stats.service_ns.count(),
        submitted,
        "{cell}: every served request must record service time"
    );
    LifecycleReport {
        cell,
        losses,
        served: stats.samples,
        reloads: stats.reloads,
        generation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One in-crate smoke cell so harness bugs surface here before the
    /// workspace-level `tests/lifecycle.rs` matrix runs.
    #[test]
    fn mlp_replay_lfsr_cell_passes() {
        let report = run_lifecycle(
            Workload::Mlp,
            &LifecycleConfig::quick(ExecMode::Replay, SrMode::Lfsr),
        );
        assert_eq!(report.cell, "mlp[replay,lfsr]");
        assert_eq!(report.generation, 2);
        assert!(report.served > 0);
    }
}
