//! Records the numerical-variability sweep into `BENCH_variability.json`
//! (DESIGN.md §13) and compares runs against the committed record.
//!
//! ```text
//! variability_bench [--quick] [--out FILE] [--baseline-file FILE] [--metrics-out FILE]
//! ```
//!
//! * Default: the full sweep (3 seeds × format zoo × both SR modes on
//!   MLP + ResNet-lite), printed to stdout or written to `--out`.
//! * `--quick`: the CI subset — a strict subset of the full sweep's cells
//!   with identical training budgets, so every record it produces must be
//!   bit-identical to the committed one.
//! * `--baseline-file`: after the run, compare each record against the
//!   committed file; any metric drift is listed and exits non-zero (the
//!   sweep is deterministic, so drift means the numerics changed).
//!
//! * `--metrics-out`: enable span collection for the sweep and dump the
//!   process-global telemetry snapshot (train/qgemm counters, span
//!   timings; DESIGN.md §15) as JSON after the run. Collection is
//!   bit-invisible (the determinism suite pins this), so the records are
//!   identical either way.
//!
//! Regenerate the committed record with:
//! `cargo run --release -p fast_harness --bin variability_bench -- --out BENCH_variability.json`

use fast_harness::json::Json;
use fast_harness::variability::{compare_records, render_report};
use fast_harness::{run_variability, VariabilitySweep};

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--baseline-file" => {
                baseline = Some(args.next().expect("--baseline-file needs a path"));
            }
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: variability_bench [--quick] [--out FILE] [--baseline-file FILE] \
                     [--metrics-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    if metrics_out.is_some() {
        fast_telemetry::set_collection(true);
    }

    let sweep = if quick {
        VariabilitySweep::quick()
    } else {
        VariabilitySweep::full()
    };
    let cells: usize = sweep
        .plans
        .iter()
        .map(|p| p.formats.len() * 2)
        .sum::<usize>()
        * sweep.seeds.len();
    eprintln!(
        "running {} variability sweep: {cells} cells ({} seeds)...",
        if quick { "quick" } else { "full" },
        sweep.seeds.len()
    );
    let records = run_variability(&sweep);
    let report = render_report(&sweep, &records);
    match &out {
        Some(path) => {
            std::fs::write(path, &report).expect("write report");
            eprintln!("wrote {} records to {path}", records.len());
        }
        None => print!("{report}"),
    }

    if let Some(path) = &metrics_out {
        let snapshot = fast_telemetry::Registry::global().snapshot().to_json();
        std::fs::write(path, &snapshot)
            .unwrap_or_else(|e| panic!("cannot write metrics snapshot {path}: {e}"));
        eprintln!("wrote telemetry snapshot to {path}");
    }

    if let Some(path) = baseline {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed =
            Json::parse(&committed).unwrap_or_else(|e| panic!("malformed baseline {path}: {e}"));
        let current = Json::parse(&report).expect("fresh report must parse");
        match compare_records(&current, &committed) {
            Ok(matched) => {
                eprintln!("OK: {matched} records bit-identical to {path}");
            }
            Err(errors) => {
                eprintln!("FAIL: {} records drifted from {path}:", errors.len());
                for e in &errors {
                    eprintln!("  {e}");
                }
                std::process::exit(1);
            }
        }
    }
}
