//! Lifecycle conformance and numerical-variability harnesses (DESIGN.md §13).
//!
//! Two drivers built on the whole stack:
//!
//! * [`lifecycle`] — pushes a model-zoo workload through the full pipeline
//!   (FAST-Adaptive training → checkpoint → bit-exact resume → frozen
//!   compile → batched serving under concurrent load → mid-traffic hot
//!   reload) and asserts the invariants every stage owes the next. The
//!   conformance suite in `tests/lifecycle.rs` runs it for every zoo
//!   workload across the `{Replay, Integer} × {Lfsr, Counter}` mode matrix.
//! * [`variability`] — sweeps seeds × the numeric-format zoo × rounding
//!   modes on fixed training runs and distils each run into deterministic
//!   divergence metrics (loss-curve divergence, final-weight L2/ULP
//!   distance, steps-to-target-accuracy). The `variability_bench` binary
//!   records them into `BENCH_variability.json` at the repo root with the
//!   same record/compare protocol as `BENCH_quant_gemm.json`.
//!
//! Both drivers use only deterministic inputs ([`workloads`] wraps
//! `fast_data`'s seeded generators), so every number they produce is
//! bit-reproducible across runs and worker counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod lifecycle;
pub mod variability;
pub mod workloads;

pub use lifecycle::{run_lifecycle, LifecycleConfig, LifecycleReport};
pub use variability::{run_variability, VariabilityRecord, VariabilitySweep};
pub use workloads::{Batch, Workload};
