//! Property-based tests for the BFP numerics core.
//!
//! These pin down the invariants the rest of the workspace builds on:
//! quantization error bounds, chunk-serial/direct dot-product equivalence,
//! truncation semantics, and the stochastic-rounding expectation property of
//! paper Theorem 1.

use fast_bfp::dot::{dot_chunked, dot_dequantized, dot_f32};
use fast_bfp::{
    exponent_of, relative_improvement, BfpFormat, BfpGroup, BitSource, ChunkedGroup, GroupAxis,
    Lfsr16, RngBits, Rounding,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn finite_f32(mag: f32) -> impl Strategy<Value = f32> {
    prop_oneof![
        5 => -mag..mag,
        1 => Just(0.0f32),
        1 => (-mag..mag).prop_map(|x| x / 1e6),
    ]
}

fn group_values(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(finite_f32(100.0), 1..=len)
}

proptest! {
    /// Nearest-rounding quantization error is at most half an ulp of the
    /// group scale (the error bound behind paper Fig 4's pipeline).
    #[test]
    fn quantization_error_within_half_ulp(xs in group_values(16), m in 2u32..=8) {
        let fmt = BfpFormat::new(16, m, 8).unwrap();
        let g = BfpGroup::quantize_nearest(&xs, fmt);
        let ulp = g.scale();
        for (i, &x) in xs.iter().enumerate() {
            let q = g.value(i) as f64;
            // Saturated values can deviate more; exclude the max magnitude.
            if g.mantissas()[i].unsigned_abs() as i64 == fmt.max_magnitude() {
                continue;
            }
            prop_assert!((q - x as f64).abs() <= 0.5 * ulp + 1e-12,
                "x={x} q={q} ulp={ulp}");
        }
    }

    /// Quantization never increases the max magnitude beyond one ulp and
    /// preserves signs of values that survive truncation.
    #[test]
    fn quantization_preserves_sign_and_scale(xs in group_values(16)) {
        let fmt = BfpFormat::high();
        let g = BfpGroup::quantize_nearest(&xs, fmt);
        for (i, &x) in xs.iter().enumerate() {
            let q = g.value(i);
            if q != 0.0 {
                prop_assert_eq!(q.is_sign_negative(), x < 0.0, "x={} q={}", x, q);
            }
            prop_assert!(q.abs() as f64 <= x.abs() as f64 + g.scale());
        }
    }

    /// Idempotence: quantizing already-quantized data is the identity.
    #[test]
    fn quantization_is_idempotent(xs in group_values(16), m in 2u32..=8) {
        let fmt = BfpFormat::new(16, m, 8).unwrap();
        let once = BfpGroup::quantize_nearest(&xs, fmt).dequantize();
        let twice = BfpGroup::quantize_nearest(&once, fmt).dequantize();
        prop_assert_eq!(once, twice);
    }

    /// Chunk-serial fMAC arithmetic is bit-identical to the direct integer
    /// dot product, and both match the dequantized f32 dot product
    /// (the fake-quantization fidelity argument of DESIGN.md §3).
    #[test]
    fn dot_products_agree(
        xs in prop::collection::vec(-50.0f32..50.0, 16),
        ys in prop::collection::vec(-50.0f32..50.0, 16),
        ma in prop::sample::select(vec![2u32, 4, 6, 8]),
        mb in prop::sample::select(vec![2u32, 4, 6, 8]),
    ) {
        let a = BfpGroup::quantize_nearest(&xs, BfpFormat::new(16, ma, 8).unwrap());
        let b = BfpGroup::quantize_nearest(&ys, BfpFormat::new(16, mb, 8).unwrap());
        let direct = dot_f32(&a, &b);
        prop_assert_eq!(direct, dot_dequantized(&a, &b));
        let ca = ChunkedGroup::from_group(&a).unwrap();
        let cb = ChunkedGroup::from_group(&b).unwrap();
        let chunked = dot_chunked(&ca, &cb);
        prop_assert_eq!(chunked.value, direct);
        prop_assert_eq!(chunked.passes, (ma / 2) as usize * (mb / 2) as usize);
    }

    /// Chunked round trip is lossless and dropping the low chunk equals
    /// integer truncation toward zero.
    #[test]
    fn chunk_roundtrip_and_truncation(xs in group_values(16)) {
        let fmt = BfpFormat::new(16, 4, 8).unwrap();
        let g = BfpGroup::quantize_nearest(&xs, fmt);
        let c = ChunkedGroup::from_group(&g).unwrap();
        prop_assert_eq!(c.to_group(), g.clone());
        prop_assert_eq!(c.drop_low_chunk().to_group(), g.truncate_to(2));
    }

    /// Theorem 1: the expected stochastically rounded mantissa equals the
    /// unrounded aligned mantissa to within the SR noise granularity
    /// (2^-noise_bits), so SGD weight increments are unbiased.
    #[test]
    fn theorem1_sr_is_unbiased(frac in 0.0f64..1.0, base in 0i64..14) {
        let x = base as f64 + frac;
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(
            (frac * 1e9) as u64 ^ base as u64));
        let n = 40_000;
        let sum: i64 = (0..n)
            .map(|_| Rounding::STOCHASTIC8.round(x, &mut src))
            .sum();
        let mean = sum as f64 / n as f64;
        // Statistical tolerance: std of mean ~ 0.5/sqrt(n) ≈ 0.0025, plus
        // the 2^-8 quantization of the noise itself.
        prop_assert!((mean - x).abs() < 0.02, "mean {mean} vs x {x}");
    }

    /// The shared exponent is always the max exponent present (unwindowed).
    #[test]
    fn shared_exponent_is_group_max(xs in group_values(16)) {
        prop_assume!(xs.iter().any(|&v| v != 0.0));
        let g = BfpGroup::quantize_nearest(&xs, BfpFormat::high());
        let want = xs.iter().filter_map(|&v| exponent_of(v)).max().unwrap();
        prop_assert_eq!(g.shared_exponent(), want);
    }

    /// r(X) is finite and non-negative for generic data, and 0 for all-zero.
    #[test]
    fn relative_improvement_is_sane(xs in prop::collection::vec(finite_f32(10.0), 1..200)) {
        let r = relative_improvement(&xs, 16);
        prop_assert!(r >= 0.0);
    }

    /// Truncation monotonically shrinks magnitudes.
    #[test]
    fn truncation_shrinks(xs in group_values(16)) {
        let g = BfpGroup::quantize_nearest(&xs, BfpFormat::new(16, 6, 8).unwrap());
        for m in [4u32, 2] {
            let t = g.truncate_to(m);
            for i in 0..g.len() {
                prop_assert!(t.value(i).abs() <= g.value(i).abs());
            }
        }
    }
}

/// Deterministic LFSR-driven SR sequences are reproducible and the LFSR
/// behaves as a BitSource across the full period.
#[test]
fn lfsr_driven_quantization_is_deterministic() {
    let fmt = BfpFormat::high();
    let xs: Vec<f32> = (0..16).map(|i| (i as f32 * 0.713).cos()).collect();
    let run = |seed: u16| {
        let mut lfsr = Lfsr16::new(seed);
        BfpGroup::quantize(&xs, fmt, Rounding::STOCHASTIC8, &mut lfsr, None).dequantize()
    };
    assert_eq!(run(0x1111), run(0x1111));
    assert_ne!(run(0x1111), run(0x2222));
}

/// Theorem 1 corollary, end to end: accumulating SR-rounded gradient steps
/// reaches the same total weight increment as FP32 in expectation
/// (paper Fig 8's three-iteration example, generalized).
#[test]
fn theorem1_weight_trajectory_matches_fp32_in_expectation() {
    let grad = 2.0 / 3.0; // the paper's worked example x = 2/3
    let iters = 30_000;
    let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(99));
    let mut w_sr = 0.0f64;
    for _ in 0..iters {
        w_sr += Rounding::STOCHASTIC8.round(grad, &mut src) as f64;
    }
    let w_fp = grad * iters as f64;
    let rel = (w_sr - w_fp).abs() / w_fp;
    assert!(rel < 0.01, "SR trajectory deviates {rel:.4} from FP32");

    // Biased rounding-down (paper Fig 7 right) severely undershoots.
    let w_trunc = (0..iters)
        .map(|_| {
            let mut nb = NoBitsNeeded;
            Rounding::Truncate.round(grad, &mut nb) as f64
        })
        .sum::<f64>();
    assert_eq!(w_trunc, 0.0, "truncation loses the entire sub-ulp gradient");
}

struct NoBitsNeeded;
impl BitSource for NoBitsNeeded {
    fn next_bits(&mut self, _n: u32) -> u32 {
        unreachable!()
    }
}

// ---------------------------------------------------------------------------
// Integer-kernel equivalence: the batch kernel of `fast_bfp::kernel` must be
// bit-identical to the seed f64 implementation (PR 2) for every f32 bit
// pattern, format, exponent window and rounding mode. The `seed_reference`
// module below is a verbatim transcription of the pre-kernel implementation.
// ---------------------------------------------------------------------------

mod seed_reference {
    use fast_bfp::{exponent_of, BfpFormat, BitSource, ExponentWindow, Rounding};

    fn sanitize(v: f32) -> f32 {
        if v.is_nan() {
            0.0
        } else if v.is_infinite() {
            f32::MAX.copysign(v)
        } else {
            v
        }
    }

    fn round(rounding: Rounding, scaled: f64, bits: &mut dyn BitSource) -> i64 {
        match rounding {
            Rounding::Nearest => (scaled + 0.5).floor() as i64,
            Rounding::Truncate => scaled.floor() as i64,
            Rounding::Stochastic { noise_bits } => {
                assert!((1..=31).contains(&noise_bits));
                let q = 1u64 << noise_bits;
                let noise = bits.next_bits(noise_bits) as f64 / q as f64;
                (scaled + noise).floor() as i64
            }
        }
    }

    /// Seed `BfpGroup::quantize`, returning `(shared_exponent, mantissas)`.
    pub fn quantize(
        values: &[f32],
        format: BfpFormat,
        rounding: Rounding,
        bits: &mut dyn BitSource,
        window: Option<ExponentWindow>,
    ) -> (i32, Vec<i32>) {
        let m = format.mantissa_bits();
        let natural_exp = values
            .iter()
            .filter_map(|&v| exponent_of(sanitize(v)))
            .max();
        let shared_exponent = match natural_exp {
            None => {
                let e = window.map(|w| w.clamp(i32::MIN / 2)).unwrap_or(0);
                return (e, vec![0; values.len()]);
            }
            Some(e) => match window {
                Some(w) => w.clamp(e),
                None => e,
            },
        };
        let max_mag = format.max_magnitude();
        let scale = 2.0f64.powi(m as i32 - 1 - shared_exponent);
        let mantissas = values
            .iter()
            .map(|&v| {
                let v = sanitize(v);
                if v == 0.0 {
                    return 0;
                }
                let scaled = (v.abs() as f64) * scale;
                let mag = round(rounding, scaled, bits).min(max_mag) as i32;
                if v < 0.0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        (shared_exponent, mantissas)
    }

    /// Seed `BfpGroup::dequantize_into` for a quantized group.
    pub fn dequantize(shared_exponent: i32, mantissas: &[i32], format: BfpFormat) -> Vec<f32> {
        let s = 2.0f64.powi(shared_exponent - format.mantissa_bits() as i32 + 1);
        mantissas.iter().map(|&m| (m as f64 * s) as f32).collect()
    }

    /// Seed `fake_quantize_slice`, returning `(groups, saturated, zeros)`.
    pub fn fake_quantize_slice(
        values: &mut [f32],
        fmt: BfpFormat,
        rounding: Rounding,
        bits: &mut dyn BitSource,
        window: Option<ExponentWindow>,
    ) -> (usize, u64, u64) {
        let mut stats = (0usize, 0u64, 0u64);
        let max_mag = fmt.max_magnitude() as i32;
        for chunk in values.chunks_mut(fmt.group_size()) {
            let (e, mantissas) = quantize(chunk, fmt, rounding, bits, window);
            stats.0 += 1;
            for &m in &mantissas {
                if m == 0 {
                    stats.2 += 1;
                } else if m.abs() == max_mag {
                    stats.1 += 1;
                }
            }
            chunk.copy_from_slice(&dequantize(e, &mantissas, fmt));
        }
        stats
    }

    /// Seed `fake_quantize_matrix` with the strided per-column gather.
    #[allow(clippy::too_many_arguments)]
    pub fn fake_quantize_matrix(
        data: &mut [f32],
        rows: usize,
        cols: usize,
        along_col: bool,
        fmt: BfpFormat,
        rounding: Rounding,
        bits: &mut dyn BitSource,
        use_window: bool,
    ) -> (usize, u64, u64) {
        let window = use_window.then(|| ExponentWindow::from_values(data, fmt.exponent_bits()));
        if !along_col {
            let mut stats = (0usize, 0u64, 0u64);
            for row in data.chunks_mut(cols) {
                let (g, s, z) = fake_quantize_slice(row, fmt, rounding, bits, window);
                stats.0 += g;
                stats.1 += s;
                stats.2 += z;
            }
            return stats;
        }
        let mut stats = (0usize, 0u64, 0u64);
        let max_mag = fmt.max_magnitude() as i32;
        let g = fmt.group_size();
        let mut scratch = vec![0.0f32; g];
        for col in 0..cols {
            let mut row = 0;
            while row < rows {
                let n = g.min(rows - row);
                for (k, s) in scratch[..n].iter_mut().enumerate() {
                    *s = data[(row + k) * cols + col];
                }
                let (e, mantissas) = quantize(&scratch[..n], fmt, rounding, bits, window);
                stats.0 += 1;
                for &m in &mantissas {
                    if m == 0 {
                        stats.2 += 1;
                    } else if m.abs() == max_mag {
                        stats.1 += 1;
                    }
                }
                scratch[..n].copy_from_slice(&dequantize(e, &mantissas, fmt));
                for (k, &s) in scratch[..n].iter().enumerate() {
                    data[(row + k) * cols + col] = s;
                }
                row += n;
            }
        }
        stats
    }
}

/// Every f32 bit pattern, weighted toward the hard cases: subnormals,
/// zeros, infinities, NaN, and huge/tiny magnitudes.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    prop_oneof![
        4 => (0u32..=u32::MAX).prop_map(f32::from_bits),
        2 => (0u32..0x80_0000).prop_map(f32::from_bits),                  // subnormal
        2 => (0u32..0x80_0000).prop_map(|b| f32::from_bits(b | 0x8000_0000)),
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(f32::NAN),
        2 => (-120.0f32..120.0).prop_map(|e| e.exp2()),
    ]
}

fn any_rounding() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        Just(Rounding::Nearest),
        Just(Rounding::Truncate),
        (1u32..=31).prop_map(|noise_bits| Rounding::Stochastic { noise_bits }),
    ]
}

/// Window selector: 0 = no window, otherwise an `e`-bit window whose
/// reference may lie far *below* the data exponents (forcing saturation).
fn window_from(sel: u32, reference_exponent: i32) -> Option<fast_bfp::ExponentWindow> {
    (sel != 0).then_some(fast_bfp::ExponentWindow {
        reference_exponent,
        exponent_bits: sel,
    })
}

proptest! {
    /// The integer kernel behind `BfpGroup::quantize` reproduces the seed
    /// f64 pipeline bit for bit — shared exponent, mantissas, and the f32
    /// reconstruction — for arbitrary bit patterns, formats, windows and
    /// rounding modes, with stochastic draws consuming an identical LFSR.
    #[test]
    fn kernel_group_is_bit_identical_to_seed(
        values in prop::collection::vec(any_f32_bits(), 1..=24),
        m in 1u32..=16,
        e in 1u32..=8,
        rounding in any_rounding(),
        win_sel in 0u32..=8,
        win_ref in -200i32..=200,
        seed in 0u16..=u16::MAX,
    ) {
        let fmt = BfpFormat::new(24, m, e).expect("valid format");
        let window = window_from(win_sel, win_ref);
        let mut lfsr_a = Lfsr16::new(seed);
        let mut lfsr_b = lfsr_a.clone();
        let got = BfpGroup::quantize(&values, fmt, rounding, &mut lfsr_a, window);
        let (want_e, want_m) = seed_reference::quantize(&values, fmt, rounding, &mut lfsr_b, window);
        prop_assert_eq!(got.shared_exponent(), want_e);
        prop_assert_eq!(got.mantissas(), &want_m[..]);
        prop_assert_eq!(lfsr_a.state(), lfsr_b.state(), "bit streams diverged");
        let want_back = seed_reference::dequantize(want_e, &want_m, fmt);
        for (g, w) in got.dequantize().iter().zip(&want_back) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Slice fake-quantization (the batched entry point) is bit-identical to
    /// the seed path, including the fused `QuantStats` counters.
    #[test]
    fn kernel_slice_is_bit_identical_to_seed(
        values in prop::collection::vec(any_f32_bits(), 1..=64),
        g in 1usize..=17,
        m in 1u32..=16,
        rounding in any_rounding(),
        win_sel in 0u32..=8,
        win_ref in -200i32..=200,
        seed in 0u16..=u16::MAX,
    ) {
        let fmt = BfpFormat::new(g, m, 8).expect("valid format");
        let window = window_from(win_sel, win_ref);
        let mut got_buf = values.clone();
        let mut want_buf = values.clone();
        let mut lfsr_a = Lfsr16::new(seed);
        let mut lfsr_b = lfsr_a.clone();
        let stats = fast_bfp::kernel::fake_quantize_slice_with(
            &mut got_buf, fmt, rounding, &mut lfsr_a, window);
        let (groups, saturated, zeros) = seed_reference::fake_quantize_slice(
            &mut want_buf, fmt, rounding, &mut lfsr_b, window);
        prop_assert_eq!((stats.groups, stats.saturated, stats.zeros), (groups, saturated, zeros));
        prop_assert_eq!(lfsr_a.state(), lfsr_b.state(), "bit streams diverged");
        for (g, w) in got_buf.iter().zip(&want_buf) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Matrix fake-quantization — both group axes — is bit-identical to the
    /// seed's strided implementation: the `AlongCol` panel kernel must
    /// consume the stochastic bit stream in exactly the seed's element
    /// order (columns left to right, rows top to bottom).
    #[test]
    fn kernel_matrix_is_bit_identical_to_seed(
        rows in 1usize..=40,
        cols in 1usize..=40,
        g in 1usize..=17,
        m in 1u32..=16,
        rounding in any_rounding(),
        along_col in 0u32..=1,
        use_window in 0u32..=1,
        seed in 0u16..=u16::MAX,
        fill in 0u32..=u32::MAX,
    ) {
        let fmt = BfpFormat::new(g, m, 3).expect("valid format");
        let values: Vec<f32> = (0..rows * cols)
            .map(|i| f32::from_bits(fill.wrapping_mul(i as u32 + 1).rotate_left(i as u32 % 31)))
            .collect();
        let axis = if along_col == 1 { GroupAxis::AlongCol } else { GroupAxis::AlongRow };
        let mut got_buf = values.clone();
        let mut want_buf = values;
        let mut lfsr_a = Lfsr16::new(seed);
        let mut lfsr_b = lfsr_a.clone();
        let stats = fast_bfp::kernel::fake_quantize_matrix_with(
            &mut got_buf, rows, cols, axis, fmt, rounding, &mut lfsr_a, use_window == 1);
        let (groups, saturated, zeros) = seed_reference::fake_quantize_matrix(
            &mut want_buf, rows, cols, along_col == 1, fmt, rounding, &mut lfsr_b, use_window == 1);
        prop_assert_eq!((stats.groups, stats.saturated, stats.zeros), (groups, saturated, zeros));
        prop_assert_eq!(lfsr_a.state(), lfsr_b.state(), "bit streams diverged");
        for (g, w) in got_buf.iter().zip(&want_buf) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
