//! Property-based tests for the BFP numerics core.
//!
//! These pin down the invariants the rest of the workspace builds on:
//! quantization error bounds, chunk-serial/direct dot-product equivalence,
//! truncation semantics, and the stochastic-rounding expectation property of
//! paper Theorem 1.

use fast_bfp::dot::{dot_chunked, dot_dequantized, dot_f32};
use fast_bfp::{
    exponent_of, relative_improvement, BfpFormat, BfpGroup, BitSource, ChunkedGroup, Lfsr16,
    RngBits, Rounding,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn finite_f32(mag: f32) -> impl Strategy<Value = f32> {
    prop_oneof![
        5 => -mag..mag,
        1 => Just(0.0f32),
        1 => (-mag..mag).prop_map(|x| x / 1e6),
    ]
}

fn group_values(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(finite_f32(100.0), 1..=len)
}

proptest! {
    /// Nearest-rounding quantization error is at most half an ulp of the
    /// group scale (the error bound behind paper Fig 4's pipeline).
    #[test]
    fn quantization_error_within_half_ulp(xs in group_values(16), m in 2u32..=8) {
        let fmt = BfpFormat::new(16, m, 8).unwrap();
        let g = BfpGroup::quantize_nearest(&xs, fmt);
        let ulp = g.scale();
        for (i, &x) in xs.iter().enumerate() {
            let q = g.value(i) as f64;
            // Saturated values can deviate more; exclude the max magnitude.
            if g.mantissas()[i].unsigned_abs() as i64 == fmt.max_magnitude() {
                continue;
            }
            prop_assert!((q - x as f64).abs() <= 0.5 * ulp + 1e-12,
                "x={x} q={q} ulp={ulp}");
        }
    }

    /// Quantization never increases the max magnitude beyond one ulp and
    /// preserves signs of values that survive truncation.
    #[test]
    fn quantization_preserves_sign_and_scale(xs in group_values(16)) {
        let fmt = BfpFormat::high();
        let g = BfpGroup::quantize_nearest(&xs, fmt);
        for (i, &x) in xs.iter().enumerate() {
            let q = g.value(i);
            if q != 0.0 {
                prop_assert_eq!(q.is_sign_negative(), x < 0.0, "x={} q={}", x, q);
            }
            prop_assert!(q.abs() as f64 <= x.abs() as f64 + g.scale());
        }
    }

    /// Idempotence: quantizing already-quantized data is the identity.
    #[test]
    fn quantization_is_idempotent(xs in group_values(16), m in 2u32..=8) {
        let fmt = BfpFormat::new(16, m, 8).unwrap();
        let once = BfpGroup::quantize_nearest(&xs, fmt).dequantize();
        let twice = BfpGroup::quantize_nearest(&once, fmt).dequantize();
        prop_assert_eq!(once, twice);
    }

    /// Chunk-serial fMAC arithmetic is bit-identical to the direct integer
    /// dot product, and both match the dequantized f32 dot product
    /// (the fake-quantization fidelity argument of DESIGN.md §3).
    #[test]
    fn dot_products_agree(
        xs in prop::collection::vec(-50.0f32..50.0, 16),
        ys in prop::collection::vec(-50.0f32..50.0, 16),
        ma in prop::sample::select(vec![2u32, 4, 6, 8]),
        mb in prop::sample::select(vec![2u32, 4, 6, 8]),
    ) {
        let a = BfpGroup::quantize_nearest(&xs, BfpFormat::new(16, ma, 8).unwrap());
        let b = BfpGroup::quantize_nearest(&ys, BfpFormat::new(16, mb, 8).unwrap());
        let direct = dot_f32(&a, &b);
        prop_assert_eq!(direct, dot_dequantized(&a, &b));
        let ca = ChunkedGroup::from_group(&a).unwrap();
        let cb = ChunkedGroup::from_group(&b).unwrap();
        let chunked = dot_chunked(&ca, &cb);
        prop_assert_eq!(chunked.value, direct);
        prop_assert_eq!(chunked.passes, (ma / 2) as usize * (mb / 2) as usize);
    }

    /// Chunked round trip is lossless and dropping the low chunk equals
    /// integer truncation toward zero.
    #[test]
    fn chunk_roundtrip_and_truncation(xs in group_values(16)) {
        let fmt = BfpFormat::new(16, 4, 8).unwrap();
        let g = BfpGroup::quantize_nearest(&xs, fmt);
        let c = ChunkedGroup::from_group(&g).unwrap();
        prop_assert_eq!(c.to_group(), g.clone());
        prop_assert_eq!(c.drop_low_chunk().to_group(), g.truncate_to(2));
    }

    /// Theorem 1: the expected stochastically rounded mantissa equals the
    /// unrounded aligned mantissa to within the SR noise granularity
    /// (2^-noise_bits), so SGD weight increments are unbiased.
    #[test]
    fn theorem1_sr_is_unbiased(frac in 0.0f64..1.0, base in 0i64..14) {
        let x = base as f64 + frac;
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(
            (frac * 1e9) as u64 ^ base as u64));
        let n = 40_000;
        let sum: i64 = (0..n)
            .map(|_| Rounding::STOCHASTIC8.round(x, &mut src))
            .sum();
        let mean = sum as f64 / n as f64;
        // Statistical tolerance: std of mean ~ 0.5/sqrt(n) ≈ 0.0025, plus
        // the 2^-8 quantization of the noise itself.
        prop_assert!((mean - x).abs() < 0.02, "mean {mean} vs x {x}");
    }

    /// The shared exponent is always the max exponent present (unwindowed).
    #[test]
    fn shared_exponent_is_group_max(xs in group_values(16)) {
        prop_assume!(xs.iter().any(|&v| v != 0.0));
        let g = BfpGroup::quantize_nearest(&xs, BfpFormat::high());
        let want = xs.iter().filter_map(|&v| exponent_of(v)).max().unwrap();
        prop_assert_eq!(g.shared_exponent(), want);
    }

    /// r(X) is finite and non-negative for generic data, and 0 for all-zero.
    #[test]
    fn relative_improvement_is_sane(xs in prop::collection::vec(finite_f32(10.0), 1..200)) {
        let r = relative_improvement(&xs, 16);
        prop_assert!(r >= 0.0);
    }

    /// Truncation monotonically shrinks magnitudes.
    #[test]
    fn truncation_shrinks(xs in group_values(16)) {
        let g = BfpGroup::quantize_nearest(&xs, BfpFormat::new(16, 6, 8).unwrap());
        for m in [4u32, 2] {
            let t = g.truncate_to(m);
            for i in 0..g.len() {
                prop_assert!(t.value(i).abs() <= g.value(i).abs());
            }
        }
    }
}

/// Deterministic LFSR-driven SR sequences are reproducible and the LFSR
/// behaves as a BitSource across the full period.
#[test]
fn lfsr_driven_quantization_is_deterministic() {
    let fmt = BfpFormat::high();
    let xs: Vec<f32> = (0..16).map(|i| (i as f32 * 0.713).cos()).collect();
    let run = |seed: u16| {
        let mut lfsr = Lfsr16::new(seed);
        BfpGroup::quantize(&xs, fmt, Rounding::STOCHASTIC8, &mut lfsr, None).dequantize()
    };
    assert_eq!(run(0x1111), run(0x1111));
    assert_ne!(run(0x1111), run(0x2222));
}

/// Theorem 1 corollary, end to end: accumulating SR-rounded gradient steps
/// reaches the same total weight increment as FP32 in expectation
/// (paper Fig 8's three-iteration example, generalized).
#[test]
fn theorem1_weight_trajectory_matches_fp32_in_expectation() {
    let grad = 2.0 / 3.0; // the paper's worked example x = 2/3
    let iters = 30_000;
    let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(99));
    let mut w_sr = 0.0f64;
    for _ in 0..iters {
        w_sr += Rounding::STOCHASTIC8.round(grad, &mut src) as f64;
    }
    let w_fp = grad * iters as f64;
    let rel = (w_sr - w_fp).abs() / w_fp;
    assert!(rel < 0.01, "SR trajectory deviates {rel:.4} from FP32");

    // Biased rounding-down (paper Fig 7 right) severely undershoots.
    let w_trunc = (0..iters)
        .map(|_| {
            let mut nb = NoBitsNeeded;
            Rounding::Truncate.round(grad, &mut nb) as f64
        })
        .sum::<f64>();
    assert_eq!(w_trunc, 0.0, "truncation loses the entire sub-ulp gradient");
}

struct NoBitsNeeded;
impl BitSource for NoBitsNeeded {
    fn next_bits(&mut self, _n: u32) -> u32 {
        unreachable!()
    }
}
