//! Counter-mode stochastic rounding: order-independence, worker
//! invariance, pack/dense bit-identity, and mean-unbiasedness (DESIGN.md
//! §12).
//!
//! The load-bearing property: the noise an element receives is a pure
//! function of `(seed, base + linear offset)`, so quantizing a tensor in
//! any segment order, on any worker count, through any kernel path
//! (slice/matrix, AlongRow/AlongCol, packed/dense) yields bitwise
//! identical results.

use fast_bfp::kernel::{fake_quantize_matrix_counter, fake_quantize_slice_counter};
use fast_bfp::packed::{pack_matrix_counter, PackedData};
use fast_bfp::{BfpFormat, CounterRng, GroupAxis, Rounding};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SR8: Rounding = Rounding::Stochastic { noise_bits: 8 };

/// The 10-format zoo: the paper's reference settings plus group-size /
/// mantissa-width extremes that exercise partial groups, i8-unpackable
/// widths, and single-element groups.
fn format_zoo() -> Vec<BfpFormat> {
    vec![
        BfpFormat::low(),
        BfpFormat::mid(),
        BfpFormat::high(),
        BfpFormat::msfp12(),
        BfpFormat::new(16, 7, 3).unwrap(),
        BfpFormat::new(16, 12, 3).unwrap(),
        BfpFormat::new(4, 4, 3).unwrap(),
        BfpFormat::new(5, 7, 8).unwrap(),
        BfpFormat::new(1, 4, 3).unwrap(),
        BfpFormat::new(64, 4, 3).unwrap(),
    ]
}

fn rand_data(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(-4.0f32..4.0) * 2.0f32.powi(rng.gen_range(-12..6)))
        .collect()
}

/// f32 values including the awkward classes (zero, subnormal, inf, NaN)
/// that route groups down the general f64 path.
fn any_quant_input() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -100.0f32..100.0,
        2 => (-100.0f32..100.0).prop_map(|x| x / 1e6),
        1 => Just(0.0f32),
        1 => Just(1e-40f32), // subnormal
        1 => Just(f32::INFINITY),
        1 => Just(f32::NAN),
    ]
}

fn bits_of(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Quantizing a slice in one pass equals quantizing its group-aligned
    /// segments in *reverse* order (each segment based at its own start
    /// offset): draws are positional, not sequential.
    #[test]
    fn slice_segments_quantize_identically_in_any_order(
        data in prop::collection::vec(any_quant_input(), 1..300),
        seed in 0u64..=u64::MAX,
        fmt_idx in 0usize..10,
        nb in prop::sample::select(vec![1u32, 3, 8, 16]),
    ) {
        let fmt = format_zoo()[fmt_idx];
        let rounding = Rounding::Stochastic { noise_bits: nb };
        let rng = CounterRng::new(seed);
        let mut whole = data.clone();
        fake_quantize_slice_counter(&mut whole, fmt, rounding, rng, 0, None, 1);

        // Split at group boundaries, visit segments back to front.
        let g = fmt.group_size();
        let mut pieced = data.clone();
        let seg = (g * 3).max(g);
        let starts: Vec<usize> = (0..data.len()).step_by(seg).collect();
        for &s in starts.iter().rev() {
            let end = (s + seg).min(data.len());
            fake_quantize_slice_counter(
                &mut pieced[s..end], fmt, rounding, rng, s as u64, None, 1,
            );
        }
        prop_assert_eq!(bits_of(&whole), bits_of(&pieced));
    }

    /// Matrix counter quantization equals quantizing its row stripes
    /// independently in shuffled order (stripes aligned to group_size rows
    /// for AlongCol), for both axes, through NaN/inf/subnormal fallbacks.
    #[test]
    fn matrix_row_stripes_quantize_identically(
        raw in prop::collection::vec(any_quant_input(), 12..240),
        cols in 1usize..12,
        seed in 0u64..=u64::MAX,
        along_col in prop::sample::select(vec![false, true]),
    ) {
        let fmt = BfpFormat::new(4, 4, 3).unwrap();
        let rows = (raw.len() / cols).max(1);
        let data = &raw[..rows * cols];
        let axis = if along_col { GroupAxis::AlongCol } else { GroupAxis::AlongRow };
        let rng = CounterRng::new(seed);
        let mut whole = data.to_vec();
        fake_quantize_matrix_counter(
            &mut whole, rows, cols, axis, fmt, SR8, rng, 0, false, 1,
        );

        // Stripe rows: group-aligned for AlongCol so block decomposition
        // (and per-column shared exponents) match the unsharded kernel.
        let granule = match axis {
            GroupAxis::AlongRow => 1,
            GroupAxis::AlongCol => fmt.group_size(),
        };
        let mut pieced = data.to_vec();
        let starts: Vec<usize> = (0..rows).step_by(granule).collect();
        for &r0 in starts.iter().rev() {
            let r1 = (r0 + granule).min(rows);
            fake_quantize_matrix_counter(
                &mut pieced[r0 * cols..r1 * cols],
                r1 - r0,
                cols,
                axis,
                fmt,
                SR8,
                rng,
                (r0 * cols) as u64,
                false,
                1,
            );
        }
        prop_assert_eq!(bits_of(&whole), bits_of(&pieced));
    }
}

/// Worker counts 1/2/3/8/64 (and the `Parallelism` default) produce
/// bitwise identical slice quantization — sharding is invisible.
#[test]
fn slice_workers_are_bit_invisible() {
    let n = 1 << 17; // large enough that 8 workers actually engage
    let data = rand_data(n, 11);
    let rng = CounterRng::new(0xFEED);
    for fmt in [BfpFormat::high(), BfpFormat::new(5, 7, 8).unwrap()] {
        let mut reference = data.clone();
        fake_quantize_slice_counter(&mut reference, fmt, SR8, rng, 7, None, 1);
        for workers in [2usize, 3, 8, 64] {
            let mut buf = data.clone();
            let stats = fake_quantize_slice_counter(&mut buf, fmt, SR8, rng, 7, None, workers);
            assert_eq!(
                bits_of(&reference),
                bits_of(&buf),
                "{fmt} workers={workers}"
            );
            assert!(stats.groups as usize >= n / fmt.group_size());
        }
    }
}

/// Worker counts are equally invisible for matrix quantization, both axes,
/// with the exponent window enabled (the window is resolved matrix-wide
/// before sharding).
#[test]
fn matrix_workers_are_bit_invisible() {
    let (rows, cols) = (512, 256);
    let data = rand_data(rows * cols, 23);
    let rng = CounterRng::new(1);
    for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
        for use_window in [false, true] {
            let mut reference = data.clone();
            fake_quantize_matrix_counter(
                &mut reference,
                rows,
                cols,
                axis,
                BfpFormat::high(),
                SR8,
                rng,
                0,
                use_window,
                1,
            );
            for workers in [2usize, 3, 8, 64] {
                let mut buf = data.clone();
                fake_quantize_matrix_counter(
                    &mut buf,
                    rows,
                    cols,
                    axis,
                    BfpFormat::high(),
                    SR8,
                    rng,
                    0,
                    use_window,
                    workers,
                );
                assert_eq!(
                    bits_of(&reference),
                    bits_of(&buf),
                    "{axis:?} window={use_window} workers={workers}"
                );
            }
        }
    }
}

fn dequantize(p: &PackedData, rows: usize, cols: usize, axis: GroupAxis, g: usize) -> Vec<f32> {
    let gpr = cols.div_ceil(g).max(1);
    (0..rows * cols)
        .map(|idx| {
            let (i, j) = (idx / cols, idx % cols);
            let scale = match axis {
                GroupAxis::AlongRow => p.scales[i * gpr + j / g],
                GroupAxis::AlongCol => p.scales[(i / g) * cols + j],
            };
            p.mantissas[idx] as f32 * scale
        })
        .collect()
}

/// Packed counter-mode operands reconstruct bit-identically to the dense
/// counter-mode kernel for the same `(rng, base)` — pack refusal and dense
/// fallback stay interchangeable per operand — and the packed output is
/// itself worker-invariant.
#[test]
fn counter_packing_matches_dense_and_workers() {
    let (rows, cols) = (96, 48);
    let data = rand_data(rows * cols, 31);
    let rng = CounterRng::new(0xACE1);
    for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
        for (fmt, rounding) in [
            (BfpFormat::high(), SR8),
            (BfpFormat::mid(), Rounding::Stochastic { noise_bits: 3 }),
            (BfpFormat::high(), Rounding::Nearest),
        ] {
            let mut dense = data.clone();
            fake_quantize_matrix_counter(
                &mut dense, rows, cols, axis, fmt, rounding, rng, 5, true, 1,
            );
            let packed =
                pack_matrix_counter(&data, rows, cols, axis, fmt, rounding, rng, 5, true, 1)
                    .expect("plain data must pack");
            let got = dequantize(&packed, rows, cols, axis, fmt.group_size());
            assert_eq!(
                bits_of(&dense),
                bits_of(&got),
                "{axis:?} {fmt} {rounding:?}"
            );
            assert_eq!(packed.stats, {
                let mut buf = data.clone();
                fake_quantize_matrix_counter(
                    &mut buf, rows, cols, axis, fmt, rounding, rng, 5, true, 1,
                )
            });
        }
    }
    // Worker invariance of the packed form itself (needs a matrix big
    // enough for sharding to engage).
    let (rows, cols) = (1024, 256);
    let data = rand_data(rows * cols, 37);
    for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
        let reference = pack_matrix_counter(
            &data,
            rows,
            cols,
            axis,
            BfpFormat::high(),
            SR8,
            rng,
            0,
            true,
            1,
        )
        .unwrap();
        for workers in [2usize, 8] {
            let p = pack_matrix_counter(
                &data,
                rows,
                cols,
                axis,
                BfpFormat::high(),
                SR8,
                rng,
                0,
                true,
                workers,
            )
            .unwrap();
            assert_eq!(
                reference.mantissas, p.mantissas,
                "{axis:?} workers={workers}"
            );
            assert_eq!(
                bits_of(&reference.scales),
                bits_of(&p.scales),
                "{axis:?} workers={workers}"
            );
            assert_eq!(reference.stats, p.stats, "{axis:?} workers={workers}");
        }
    }
}

/// Deterministic rounding through the counter entry points is identical to
/// the sequential entry points (no draws → the noise plumbing must be
/// arithmetically invisible).
#[test]
fn deterministic_counter_matches_sequential() {
    use fast_bfp::kernel::fake_quantize_matrix_with;
    use fast_bfp::Lfsr16;
    let (rows, cols) = (33, 21);
    let data = rand_data(rows * cols, 41);
    for fmt in format_zoo() {
        for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
            for rounding in [Rounding::Nearest, Rounding::Truncate] {
                let mut seq = data.clone();
                fake_quantize_matrix_with(
                    &mut seq,
                    rows,
                    cols,
                    axis,
                    fmt,
                    rounding,
                    &mut Lfsr16::default(),
                    true,
                );
                let mut ctr = data.clone();
                fake_quantize_matrix_counter(
                    &mut ctr,
                    rows,
                    cols,
                    axis,
                    fmt,
                    rounding,
                    CounterRng::new(9),
                    123,
                    true,
                    1,
                );
                assert_eq!(bits_of(&seq), bits_of(&ctr), "{fmt} {axis:?} {rounding:?}");
            }
        }
    }
}

/// `(sig, p)` of a positive finite f32: `|x| = sig · 2^p`, `sig < 2^24`.
fn decompose(x: f32) -> (u32, i32) {
    let bits = x.to_bits() & 0x7FFF_FFFF;
    let (exp_field, frac) = (bits >> 23, bits & 0x7F_FFFF);
    if exp_field == 0 {
        (frac, -149)
    } else {
        (frac | 0x80_0000, exp_field as i32 - 150)
    }
}

/// Exact analytic E[quantized x] for stochastic rounding with `nb`-bit
/// noise against shared exponent `e`: enumerates all `2^nb` equiprobable
/// draws through the same integer formula as the kernel.
fn analytic_expectation(x: f32, e: i32, fmt: BfpFormat, nb: u32) -> f64 {
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u64;
    let (sig, p) = decompose(x);
    let t = e as i64 + 1 - m as i64 - p as i64;
    let scale = 2.0f64.powi(e - m as i32 + 1);
    let mut acc = 0.0f64;
    for r in 0..1u64 << nb {
        let mag = if t <= 0 {
            (sig as u64) << (-t).min(39) as u32
        } else if t >= 64 {
            0
        } else if t >= nb as i64 {
            ((sig as u64) + (r << (t - nb as i64) as u32)) >> t as u32
        } else {
            (((sig as u64) << (nb as i64 - t) as u32) + r) >> nb
        };
        acc += mag.min(max_mag) as f64;
    }
    let mean_mag = acc / (1u64 << nb) as f64;
    if x < 0.0 {
        -mean_mag * scale
    } else {
        mean_mag * scale
    }
}

/// Mean-unbiasedness gate over the format zoo: averaging counter-SR
/// quantizations of the same group across K distinct offsets converges to
/// the exact f64 expectation (which in the unsaturated interior is the
/// value itself — paper Theorem 1).
#[test]
fn counter_sr_is_mean_unbiased_across_offsets() {
    const K: usize = 4096;
    for fmt in format_zoo() {
        let g = fmt.group_size();
        let nb = 8u32;
        // A group anchored by its first element; the rest probe interior
        // magnitudes (no saturation, no zero).
        let mut group = vec![0.0f32; g];
        group[0] = 1.75;
        for (i, v) in group.iter_mut().enumerate().skip(1) {
            *v = 0.11 + 0.07 * (i as f32 % 13.0) * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let e = 0; // exponent of 1.75
        let rng = CounterRng::new(0xBEEF);
        let mut sums = vec![0.0f64; g];
        for k in 0..K {
            let mut buf = group.clone();
            fake_quantize_slice_counter(
                &mut buf,
                fmt,
                Rounding::Stochastic { noise_bits: nb },
                rng,
                (k * g) as u64,
                None,
                1,
            );
            for (s, &q) in sums.iter_mut().zip(&buf) {
                *s += q as f64;
            }
        }
        let ulp = 2.0f64.powi(e - fmt.mantissa_bits() as i32 + 1);
        for (i, (&x, &s)) in group.iter().zip(&sums).enumerate() {
            let want = analytic_expectation(x, e, fmt, nb);
            let got = s / K as f64;
            // Empirical std of the mean is <= 0.5·ulp/sqrt(K) ≈ 0.008·ulp;
            // 0.08·ulp is a 10-sigma gate (deterministic given the seed).
            assert!(
                (got - want).abs() <= 0.08 * ulp,
                "{fmt} elem {i}: x={x} want {want} got {got} (ulp {ulp})"
            );
        }
    }
}

/// The statelessness that powers everything: `CounterRng` is `Copy`, and
/// reusing the same `(seed, base)` replays the identical quantization —
/// the property serving freeze and checkpoint resume rely on.
#[test]
fn same_seed_and_base_replays_bitwise() {
    let data = rand_data(2048, 55);
    let rng = CounterRng::new(42);
    let mut a = data.clone();
    let mut b = data.clone();
    fake_quantize_slice_counter(&mut a, BfpFormat::high(), SR8, rng, 1000, None, 1);
    fake_quantize_slice_counter(&mut b, BfpFormat::high(), SR8, rng, 1000, None, 1);
    assert_eq!(bits_of(&a), bits_of(&b));
    // ... while a different base or seed decorrelates.
    let mut c = data.clone();
    fake_quantize_slice_counter(&mut c, BfpFormat::high(), SR8, rng, 1001, None, 1);
    assert_ne!(bits_of(&a), bits_of(&c));
    let mut d = data.clone();
    fake_quantize_slice_counter(
        &mut d,
        BfpFormat::high(),
        SR8,
        CounterRng::new(43),
        1000,
        None,
        1,
    );
    assert_ne!(bits_of(&a), bits_of(&d));
}
