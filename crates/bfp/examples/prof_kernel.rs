//! Stage-by-stage microprofile of the integer quantization kernel:
//! exponent scan, nearest and stochastic fake-quantization, and a memcpy
//! floor, in ns/element. Handy when tuning `fast_bfp::kernel` —
//! `cargo run --release -p fast_bfp --example prof_kernel`.

use fast_bfp::{BfpFormat, Lfsr16, Rounding};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let fmt = BfpFormat::high();
    let base: Vec<f32> = (0..65536).map(|i| (i as f32 * 0.137).sin() * 3.0).collect();
    let mut buf = base.clone();
    let mut lfsr = Lfsr16::default();
    // max_exponent alone
    let t = Instant::now();
    for _ in 0..200 {
        let mut acc = 0i64;
        for chunk in buf.chunks(16) {
            acc += fast_bfp::kernel::max_exponent(black_box(chunk)).unwrap_or(0) as i64;
        }
        black_box(acc);
    }
    println!(
        "max_exponent scan: {:.2} ns/elem",
        t.elapsed().as_nanos() as f64 / (200.0 * 65536.0)
    );
    let t = Instant::now();
    for _ in 0..200 {
        buf.copy_from_slice(&base);
        black_box(fast_bfp::kernel::fake_quantize_slice_with(
            &mut buf,
            fmt,
            Rounding::Nearest,
            &mut lfsr,
            None,
        ));
    }
    println!(
        "fq nearest: {:.2} ns/elem",
        t.elapsed().as_nanos() as f64 / (200.0 * 65536.0)
    );
    let t = Instant::now();
    for _ in 0..200 {
        buf.copy_from_slice(&base);
        black_box(fast_bfp::kernel::fake_quantize_slice_with(
            &mut buf,
            fmt,
            Rounding::STOCHASTIC8,
            &mut lfsr,
            None,
        ));
    }
    println!(
        "fq stochastic: {:.2} ns/elem",
        t.elapsed().as_nanos() as f64 / (200.0 * 65536.0)
    );
    // memcpy reference
    let t = Instant::now();
    for _ in 0..200 {
        buf.copy_from_slice(black_box(&base));
        black_box(&buf);
    }
    println!(
        "memcpy: {:.2} ns/elem",
        t.elapsed().as_nanos() as f64 / (200.0 * 65536.0)
    );
}
