use crate::error::FormatError;

/// A Block Floating Point format description (paper Table I and Fig 2).
///
/// A BFP format groups `group_size` values under a single shared exponent of
/// `exponent_bits` bits; every value keeps a private sign bit and an
/// `mantissa_bits`-bit magnitude mantissa.
///
/// The paper's fixed reference settings (Section VI) are provided as
/// constructors: [`BfpFormat::low`] (`m=2`), [`BfpFormat::mid`] (`m=3`),
/// [`BfpFormat::high`] (`m=4`) — all with `g=16, e=3` — and
/// [`BfpFormat::msfp12`] (Microsoft MSFP-12: `g=16, m=3, e=8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BfpFormat {
    group_size: usize,
    mantissa_bits: u32,
    exponent_bits: u32,
}

impl BfpFormat {
    /// Creates a format with group size `g`, mantissa bitwidth `m`, and
    /// shared-exponent bitwidth `e`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if `g == 0`, `m` is outside `1..=16`, or `e`
    /// is outside `1..=8`.
    pub fn new(g: usize, m: u32, e: u32) -> Result<Self, FormatError> {
        if g == 0 {
            return Err(FormatError::ZeroGroupSize);
        }
        if !(1..=16).contains(&m) {
            return Err(FormatError::MantissaBits(m));
        }
        if !(1..=8).contains(&e) {
            return Err(FormatError::ExponentBits(e));
        }
        Ok(BfpFormat {
            group_size: g,
            mantissa_bits: m,
            exponent_bits: e,
        })
    }

    /// The paper's `LowBFP` setting: `g=16, m=2, e=3`.
    pub fn low() -> Self {
        BfpFormat {
            group_size: 16,
            mantissa_bits: 2,
            exponent_bits: 3,
        }
    }

    /// The paper's `MidBFP` setting: `g=16, m=3, e=3`.
    pub fn mid() -> Self {
        BfpFormat {
            group_size: 16,
            mantissa_bits: 3,
            exponent_bits: 3,
        }
    }

    /// The paper's `HighBFP` setting: `g=16, m=4, e=3`.
    pub fn high() -> Self {
        BfpFormat {
            group_size: 16,
            mantissa_bits: 4,
            exponent_bits: 3,
        }
    }

    /// Microsoft's MSFP-12 format as drawn in paper Fig 2: `g=16, m=3, e=8`.
    pub fn msfp12() -> Self {
        BfpFormat {
            group_size: 16,
            mantissa_bits: 3,
            exponent_bits: 8,
        }
    }

    /// Flexpoint-style format (`g` spans a whole tensor in the original; we
    /// keep the paper's comparison spirit with a wide mantissa): `m=16, e=5`.
    pub fn flexpoint(group_size: usize) -> Result<Self, FormatError> {
        BfpFormat::new(group_size, 16, 5)
    }

    /// Returns a copy of this format with a different mantissa bitwidth.
    ///
    /// Used by the FAST controller when toggling between `m=2` and `m=4`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if `m` is outside `1..=16`.
    pub fn with_mantissa_bits(self, m: u32) -> Result<Self, FormatError> {
        BfpFormat::new(self.group_size, m, self.exponent_bits)
    }

    /// Returns a copy of this format with a different group size.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if `g == 0`.
    pub fn with_group_size(self, g: usize) -> Result<Self, FormatError> {
        BfpFormat::new(g, self.mantissa_bits, self.exponent_bits)
    }

    /// Group size `g`: number of values sharing one exponent.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Mantissa bitwidth `m` (magnitude bits, excluding the sign bit).
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Shared-exponent bitwidth `e`.
    pub fn exponent_bits(&self) -> u32 {
        self.exponent_bits
    }

    /// Maximum representable mantissa magnitude, `2^m - 1`.
    pub fn max_magnitude(&self) -> i64 {
        (1i64 << self.mantissa_bits) - 1
    }

    /// Number of 2-bit mantissa chunks, `ceil(m / 2)` (paper Section V-B).
    pub fn chunk_count(&self) -> u32 {
        self.mantissa_bits.div_ceil(2)
    }

    /// Storage cost in bits for one full group under the chunked memory
    /// layout of paper Fig 15 / Section V-D: `e + g * (m/2) * 3` — each
    /// 2-bit chunk is stored with a replicated sign bit for uniform access.
    pub fn storage_bits_per_group(&self) -> u64 {
        self.exponent_bits as u64 + (self.group_size as u64) * (self.chunk_count() as u64) * 3
    }

    /// Average storage bits per value (e.g. 3.19 for `g=16, m=2, e=3` and
    /// 6.19 for `m=4`, matching the paper's "3.2 and 6.2 bits" figures).
    pub fn storage_bits_per_value(&self) -> f64 {
        self.storage_bits_per_group() as f64 / self.group_size as f64
    }
}

impl Default for BfpFormat {
    /// Defaults to the paper's baseline training format, `HighBFP`
    /// (`g=16, m=4, e=3`; Section VI-C).
    fn default() -> Self {
        BfpFormat::high()
    }
}

impl std::fmt::Display for BfpFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BFP(g={}, m={}, e={})",
            self.group_size, self.mantissa_bits, self.exponent_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(BfpFormat::low().mantissa_bits(), 2);
        assert_eq!(BfpFormat::mid().mantissa_bits(), 3);
        assert_eq!(BfpFormat::high().mantissa_bits(), 4);
        assert_eq!(BfpFormat::msfp12().exponent_bits(), 8);
        for f in [BfpFormat::low(), BfpFormat::mid(), BfpFormat::high()] {
            assert_eq!(f.group_size(), 16);
            assert_eq!(f.exponent_bits(), 3);
        }
    }

    #[test]
    fn storage_cost_matches_paper_section_v_d() {
        // Paper: "an average of 3.2 (m=2) and 6.2 (m=4) bits to store each
        // value" with e=3, g=16.
        let low = BfpFormat::new(16, 2, 3).unwrap();
        let high = BfpFormat::new(16, 4, 3).unwrap();
        assert!((low.storage_bits_per_value() - 3.1875).abs() < 1e-9);
        assert!((high.storage_bits_per_value() - 6.1875).abs() < 1e-9);
    }

    #[test]
    fn invalid_formats_rejected() {
        assert_eq!(BfpFormat::new(0, 4, 3), Err(FormatError::ZeroGroupSize));
        assert_eq!(BfpFormat::new(16, 0, 3), Err(FormatError::MantissaBits(0)));
        assert_eq!(
            BfpFormat::new(16, 17, 3),
            Err(FormatError::MantissaBits(17))
        );
        assert_eq!(BfpFormat::new(16, 4, 0), Err(FormatError::ExponentBits(0)));
        assert_eq!(BfpFormat::new(16, 4, 9), Err(FormatError::ExponentBits(9)));
    }

    #[test]
    fn chunk_count_rounds_up() {
        assert_eq!(BfpFormat::new(16, 2, 3).unwrap().chunk_count(), 1);
        assert_eq!(BfpFormat::new(16, 3, 3).unwrap().chunk_count(), 2);
        assert_eq!(BfpFormat::new(16, 4, 3).unwrap().chunk_count(), 2);
        assert_eq!(BfpFormat::new(16, 5, 3).unwrap().chunk_count(), 3);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", BfpFormat::high());
        assert!(s.contains("g=16") && s.contains("m=4") && s.contains("e=3"));
    }
}
