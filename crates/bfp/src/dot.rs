//! BFP dot products.
//!
//! Implements the two equivalent evaluation strategies of the paper:
//!
//! * [`dot_f32`] — the direct form of Fig 5: one integer multiply-accumulate
//!   over the mantissas plus a single shared-exponent addition.
//! * [`dot_chunked`] — the fMAC's variable-precision form of Fig 13: one
//!   pass per pair of 2-bit chunks, each pass an integer dot product
//!   accumulated into a floating-point register with the pass exponent
//!   decremented by 2 per chunk position.
//!
//! The two are bit-identical (tested), which is the correctness argument for
//! simulating fMAC arithmetic with fake-quantized f32 GEMMs elsewhere in the
//! workspace.

use crate::chunk::ChunkedGroup;
use crate::group::BfpGroup;

/// Result of a chunk-serial fMAC dot product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedDot {
    /// The dot-product value.
    pub value: f32,
    /// Number of fMAC passes consumed: `chunks(a) * chunks(b)`
    /// (paper Section V-B: a 4-bit × 4-bit product takes 4 passes).
    pub passes: usize,
}

/// Computes the dot product of two BFP groups exactly (paper Fig 5):
/// `sum_i Ma_i * Mb_i` in integer arithmetic, scaled by
/// `2^(Ea + Eb - ma - mb + 2)`.
///
/// # Panics
///
/// Panics if the groups have different lengths.
pub fn dot_f32(a: &BfpGroup, b: &BfpGroup) -> f32 {
    let (sum, exp) = dot_parts(a, b);
    (sum as f64 * 2.0f64.powi(exp)) as f32
}

/// Exposes the intermediate integer sum and the combined exponent of a BFP
/// dot product, before the final FP normalization.
///
/// `value = sum * 2^exp`.
///
/// # Panics
///
/// Panics if the groups have different lengths.
pub fn dot_parts(a: &BfpGroup, b: &BfpGroup) -> (i64, i32) {
    assert_eq!(a.len(), b.len(), "dot product requires equal group lengths");
    let sum: i64 = a
        .mantissas()
        .iter()
        .zip(b.mantissas())
        .map(|(&x, &y)| x as i64 * y as i64)
        .sum();
    let exp = a.shared_exponent() + b.shared_exponent()
        - a.format().mantissa_bits() as i32
        - b.format().mantissa_bits() as i32
        + 2;
    (sum, exp)
}

/// Computes the dot product of two dequantized groups in f32 — the
/// "software reference" used to validate that fake quantization plus f32
/// accumulation reproduces hardware BFP arithmetic.
///
/// # Panics
///
/// Panics if the groups have different lengths.
pub fn dot_dequantized(a: &BfpGroup, b: &BfpGroup) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product requires equal group lengths");
    let av = a.dequantize();
    let bv = b.dequantize();
    let mut acc = 0.0f64;
    for (x, y) in av.iter().zip(&bv) {
        acc += (*x as f64) * (*y as f64);
    }
    acc as f32
}

/// Computes the dot product chunk-serially, as the fMAC executes it
/// (paper Fig 13): for every pair of 2-bit chunks `(ca, cb)` one integer
/// pass runs, whose partial sum is accumulated at exponent
/// `Ea + Eb + 2 - 2*(ca + cb + 2)`.
///
/// Returns both the value and the number of passes, which is the quantity
/// the systolic-array cycle model charges for variable-precision work.
///
/// # Panics
///
/// Panics if the groups have different lengths.
pub fn dot_chunked(a: &ChunkedGroup, b: &ChunkedGroup) -> ChunkedDot {
    assert_eq!(a.len(), b.len(), "dot product requires equal group lengths");
    let mut acc = 0.0f64;
    let mut passes = 0usize;
    let base_exp = a.shared_exponent() + b.shared_exponent() + 2;
    for ca in 0..a.chunk_count() {
        for cb in 0..b.chunk_count() {
            passes += 1;
            let mut partial: i64 = 0;
            let ac = a.chunk(ca);
            let bc = b.chunk(cb);
            for i in 0..a.len() {
                let sa = if a.signs()[i] { -1i64 } else { 1 };
                let sb = if b.signs()[i] { -1i64 } else { 1 };
                partial += sa * sb * (ac[i] as i64) * (bc[i] as i64);
            }
            let exp = base_exp - 2 * (ca as i32 + cb as i32 + 2);
            acc += partial as f64 * 2.0f64.powi(exp);
        }
    }
    ChunkedDot {
        value: acc as f32,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::BfpFormat;

    fn fmt(g: usize, m: u32) -> BfpFormat {
        BfpFormat::new(g, m, 8).unwrap()
    }

    #[test]
    fn fig5_worked_example() {
        // Paper Fig 5: mantissas (14, -2, -7, 1) . (4, -9, 11, 0) with
        // shared exponents 2 and 4 (in value terms 2^2 and 2^4 blocks).
        // Integer part: 14*4 + (-2)(-9) + (-7)(11) + 0 = 56 + 18 - 77 = -3.
        let a = BfpGroup::from_parts(fmt(4, 5), 2, vec![14, -2, -7, 1]);
        let b = BfpGroup::from_parts(fmt(4, 5), 4, vec![4, -9, 11, 0]);
        let (sum, exp) = dot_parts(&a, &b);
        assert_eq!(sum, -3);
        // exp = 2 + 4 - 5 - 5 + 2 = -2.
        assert_eq!(exp, -2);
        assert_eq!(dot_f32(&a, &b), -3.0 * 0.25);
    }

    #[test]
    fn integer_dot_equals_dequantized_dot() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for m in [2u32, 4, 6, 8] {
            for _ in 0..50 {
                let f = fmt(16, m);
                let xs: Vec<f32> = (0..16).map(|_| rng.gen_range(-2.0..2.0)).collect();
                let ys: Vec<f32> = (0..16).map(|_| rng.gen_range(-2.0..2.0)).collect();
                let a = BfpGroup::quantize_nearest(&xs, f);
                let b = BfpGroup::quantize_nearest(&ys, f);
                assert_eq!(dot_f32(&a, &b), dot_dequantized(&a, &b), "m={m}");
            }
        }
    }

    #[test]
    fn chunked_dot_is_bit_identical_to_direct_dot() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for (ma, mb) in [(2u32, 2u32), (2, 4), (4, 2), (4, 4), (6, 4), (8, 8)] {
            for _ in 0..30 {
                let xs: Vec<f32> = (0..16).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let ys: Vec<f32> = (0..16).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let a = BfpGroup::quantize_nearest(&xs, fmt(16, ma));
                let b = BfpGroup::quantize_nearest(&ys, fmt(16, mb));
                let ca = ChunkedGroup::from_group(&a).unwrap();
                let cb = ChunkedGroup::from_group(&b).unwrap();
                let chunked = dot_chunked(&ca, &cb);
                assert_eq!(chunked.value, dot_f32(&a, &b), "ma={ma} mb={mb}");
                assert_eq!(chunked.passes, (ma as usize / 2) * (mb as usize / 2));
            }
        }
    }

    #[test]
    fn pass_counts_match_paper_examples() {
        // Paper: 2-bit x 4-bit -> 2 passes; 4-bit x 4-bit -> 4 passes.
        let a2 = BfpGroup::from_parts(fmt(2, 2), 0, vec![1, 2]);
        let a4 = BfpGroup::from_parts(fmt(2, 4), 0, vec![1, 2]);
        let c2 = ChunkedGroup::from_group(&a2).unwrap();
        let c4 = ChunkedGroup::from_group(&a4).unwrap();
        assert_eq!(dot_chunked(&c2, &c4).passes, 2);
        assert_eq!(dot_chunked(&c4, &c4).passes, 4);
        assert_eq!(dot_chunked(&c2, &c2).passes, 1);
    }

    #[test]
    fn zero_groups_dot_to_zero() {
        let a = BfpGroup::from_parts(fmt(4, 4), 0, vec![0; 4]);
        let b = BfpGroup::from_parts(fmt(4, 4), 5, vec![3, -3, 1, 2]);
        assert_eq!(dot_f32(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal group lengths")]
    fn mismatched_lengths_panic() {
        let a = BfpGroup::from_parts(fmt(4, 4), 0, vec![1, 2, 3, 4]);
        let b = BfpGroup::from_parts(fmt(4, 4), 0, vec![1, 2]);
        let _ = dot_f32(&a, &b);
    }
}
