//! Linear-feedback shift register noise source for stochastic rounding.
//!
//! The paper's BFP converter (Fig 14) derives its stochastic-rounding noise
//! from "a group of 8-bit random binary streams produced by the linear
//! feedback shift register (LFSR)". [`Lfsr16`] models that hardware block: a
//! maximal-length 16-bit Galois LFSR with period `2^16 - 1`.

/// A source of uniformly distributed random bits.
///
/// Abstracts over the hardware [`Lfsr16`] and host-side RNGs ([`RngBits`])
/// so quantization code can be tested against both.
pub trait BitSource {
    /// Returns `n` random bits (`1..=32`) in the low bits of the result.
    fn next_bits(&mut self, n: u32) -> u32;
}

/// Maximal-length 16-bit Galois LFSR (taps x^16 + x^14 + x^13 + x^11 + 1,
/// mask `0xB400`), the hardware noise generator of the paper's converter.
///
/// The state is never zero; period is 65535.
///
/// ```
/// use fast_bfp::{BitSource, Lfsr16};
/// let mut lfsr = Lfsr16::new(0xACE1);
/// let byte = lfsr.next_bits(8);
/// assert!(byte < 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

/// Per-byte jump table for [`Lfsr16`]: `JUMP8[b]` is the accumulated tap
/// injection after 8 Galois steps whose shifted-out bits were `b`
/// (`state_after_8 = (state >> 8) ^ JUMP8[state & 0xFF]`).
///
/// Valid because the taps (`0xB400`) only touch bits ≥ 10, so the low 8
/// state bits are shifted out unmodified and each set bit `i` contributes
/// its injection shifted right by the remaining `7 - i` steps.
const JUMP8: [u16; 256] = {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut acc = 0u16;
        let mut i = 0;
        while i < 8 {
            if (b >> i) & 1 == 1 {
                acc ^= Lfsr16::TAPS >> (7 - i);
            }
            i += 1;
        }
        table[b] = acc;
        b += 1;
    }
    table
};

/// Bit-reversal table: the 8 bits shifted out of the LFSR, reassembled in
/// draw order (first-drawn bit is the MSB of the returned byte).
const BITREV8: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        table[b] = (b as u8).reverse_bits();
        b += 1;
    }
    table
};

impl Lfsr16 {
    /// Feedback tap mask for the maximal-length polynomial.
    const TAPS: u16 = 0xB400;

    /// Creates an LFSR from a seed. A zero seed (the lock-up state) is
    /// remapped to a fixed non-zero constant.
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances one step and returns the output bit.
    pub fn next_bit(&mut self) -> u32 {
        let lsb = (self.state & 1) as u32;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= Self::TAPS;
        }
        lsb
    }

    /// Advances 8 steps at once and returns the byte of output bits in draw
    /// order — identical to eight [`Lfsr16::next_bit`] calls, but O(1) via
    /// the linearity of the Galois step (the stochastic-rounding hot path
    /// draws 8-bit noise per gradient element).
    #[inline]
    pub fn next_byte(&mut self) -> u8 {
        let low = (self.state & 0xFF) as usize;
        self.state = (self.state >> 8) ^ JUMP8[low];
        BITREV8[low]
    }

    /// Current register state (for inspection/tests).
    pub fn state(&self) -> u16 {
        self.state
    }
}

impl Default for Lfsr16 {
    fn default() -> Self {
        Lfsr16::new(0xACE1)
    }
}

impl BitSource for Lfsr16 {
    fn next_bits(&mut self, n: u32) -> u32 {
        assert!(
            (1..=32).contains(&n),
            "next_bits supports 1..=32 bits, got {n}"
        );
        let mut out = 0u32;
        let mut left = n;
        while left >= 8 {
            out = (out << 8) | self.next_byte() as u32;
            left -= 8;
        }
        for _ in 0..left {
            out = (out << 1) | self.next_bit();
        }
        out
    }
}

/// Adapter exposing any [`rand`] RNG as a [`BitSource`].
///
/// Useful in tests and property checks where statistical quality matters
/// more than hardware fidelity.
///
/// # Draw-width semantics
///
/// Every [`BitSource::next_bits`] call consumes exactly **one** `next_u32`
/// from the wrapped RNG and returns its **low** `n` bits, regardless of `n`
/// — narrower draws discard the remaining high bits rather than banking
/// them. This differs from [`Lfsr16`], whose stream is bit-serial: there an
/// `n`-bit draw advances the register exactly `n` steps and the first-drawn
/// bit lands in the MSB. Consequence: two `RngBits` draws of 8 bits and one
/// draw of 16 bits see *different* noise from the same RNG state, so code
/// that must replay a stream has to use identical draw widths — which the
/// quantization kernels do (one `noise_bits`-wide draw per element).
///
/// `n` is validated to `1..=32` exactly like [`Lfsr16`].
#[derive(Debug)]
pub struct RngBits<R>(pub R);

impl<R: rand::RngCore> BitSource for RngBits<R> {
    fn next_bits(&mut self, n: u32) -> u32 {
        assert!(
            (1..=32).contains(&n),
            "next_bits supports 1..=32 bits, got {n}"
        );
        if n == 32 {
            self.0.next_u32()
        } else {
            self.0.next_u32() & ((1u32 << n) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lfsr_is_maximal_length() {
        let mut lfsr = Lfsr16::new(1);
        let mut seen = HashSet::new();
        for _ in 0..65535 {
            assert!(seen.insert(lfsr.state()), "state repeated early");
            lfsr.next_bit();
        }
        // After the full period the state returns to the start.
        assert_eq!(lfsr.state(), 1);
    }

    #[test]
    fn lfsr_never_reaches_zero() {
        let mut lfsr = Lfsr16::new(0xBEEF);
        for _ in 0..70000 {
            lfsr.next_bit();
            assert_ne!(lfsr.state(), 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        assert_ne!(Lfsr16::new(0).state(), 0);
    }

    #[test]
    fn eight_bit_stream_is_roughly_uniform() {
        let mut lfsr = Lfsr16::new(0x1234);
        let mut counts = [0u32; 256];
        let draws = 65536 * 2;
        for _ in 0..draws {
            counts[lfsr.next_bits(8) as usize] += 1;
        }
        let expected = draws as f64 / 256.0;
        for (byte, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.25,
                "byte {byte} count {c} deviates {dev:.2} from uniform"
            );
        }
    }

    #[test]
    fn jump8_matches_eight_single_steps() {
        let mut fast = Lfsr16::new(0x1D5B);
        let mut slow = fast.clone();
        for _ in 0..70000 {
            let mut byte = 0u8;
            for _ in 0..8 {
                byte = (byte << 1) | slow.next_bit() as u8;
            }
            assert_eq!(fast.next_byte(), byte);
            assert_eq!(fast.state(), slow.state());
        }
    }

    #[test]
    fn next_bits_matches_bit_serial_for_all_widths() {
        for n in 1..=32u32 {
            let mut fast = Lfsr16::new(0xACE1);
            let mut slow = fast.clone();
            for _ in 0..1000 {
                let mut want = 0u32;
                for _ in 0..n {
                    want = (want << 1) | slow.next_bit();
                }
                assert_eq!(fast.next_bits(n), want, "width {n}");
                assert_eq!(fast.state(), slow.state());
            }
        }
    }

    #[test]
    fn rng_bits_masks_correctly() {
        use rand::SeedableRng;
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(7));
        for _ in 0..1000 {
            assert!(src.next_bits(3) < 8);
        }
    }

    #[test]
    fn rng_bits_consumes_one_word_per_draw_and_keeps_low_bits() {
        use rand::{RngCore, SeedableRng};
        // Reference stream: the raw u32 sequence of the same seeded RNG.
        let mut reference = rand::rngs::StdRng::seed_from_u64(99);
        let words: Vec<u32> = (0..12).map(|_| reference.next_u32()).collect();
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(99));
        // Mixed widths: each draw consumes exactly one word and masks its
        // low bits; widths never bank leftover bits across draws.
        let widths = [8u32, 1, 32, 16, 8, 31, 3, 24, 12, 32, 5, 8];
        for (&w, &word) in widths.iter().zip(&words) {
            let expect = if w == 32 { word } else { word & ((1 << w) - 1) };
            assert_eq!(src.next_bits(w), expect, "width {w}");
        }
    }

    #[test]
    fn rng_bits_full_width_is_passthrough() {
        use rand::{RngCore, SeedableRng};
        let mut reference = rand::rngs::StdRng::seed_from_u64(5);
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(5));
        for _ in 0..100 {
            assert_eq!(src.next_bits(32), reference.next_u32());
        }
    }

    #[test]
    #[should_panic(expected = "next_bits supports 1..=32 bits")]
    fn rng_bits_rejects_zero_width() {
        use rand::SeedableRng;
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(1));
        src.next_bits(0);
    }
}
