//! BFP group quantization — the FP32 → BFP conversion pipeline of paper
//! Fig 4: find the max exponent, align mantissas, add stochastic noise (for
//! gradients), truncate to `m` bits.

use crate::format::BfpFormat;
use crate::kernel;
use crate::lfsr::BitSource;
use crate::rounding::Rounding;

/// Models the finite shared-exponent field (`e` bits) as an offset below a
/// per-tensor reference exponent.
///
/// Hardware stores the group exponent in `e` bits. We model this (see
/// DESIGN.md §3) as the offset `reference_exponent - E_group`, clamped to
/// `0..=2^e - 1`. Groups whose natural exponent lies below the window are
/// forced up to the window floor, which truncates their mantissas toward
/// zero — exactly the data loss a narrow hardware exponent causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExponentWindow {
    /// Per-tensor reference (typically the max exponent over the tensor).
    pub reference_exponent: i32,
    /// Width of the stored exponent field in bits.
    pub exponent_bits: u32,
}

impl ExponentWindow {
    /// Clamps a group exponent into the representable window.
    pub fn clamp(&self, group_exponent: i32) -> i32 {
        let max_offset = (1i32 << self.exponent_bits) - 1;
        let offset = (self.reference_exponent - group_exponent).clamp(0, max_offset);
        self.reference_exponent - offset
    }

    /// Builds a window from a slice: the reference is the largest exponent
    /// present (or 0 for an all-zero slice).
    pub fn from_values(values: &[f32], exponent_bits: u32) -> Self {
        ExponentWindow {
            reference_exponent: kernel::max_exponent(values).unwrap_or(0),
            exponent_bits,
        }
    }
}

/// A group of values quantized to a shared-exponent block floating point
/// format (paper Fig 2, bottom).
///
/// Each value is stored as a signed integer mantissa `M` with
/// `|M| <= 2^m - 1`; the represented value is `M * 2^(E - m + 1)` where `E`
/// is the shared (unbiased) exponent.
#[derive(Debug, Clone, PartialEq)]
pub struct BfpGroup {
    format: BfpFormat,
    shared_exponent: i32,
    mantissas: Vec<i32>,
}

struct NoNoise;
impl BitSource for NoNoise {
    fn next_bits(&mut self, _n: u32) -> u32 {
        unreachable!("deterministic rounding draws no random bits")
    }
}

impl BfpGroup {
    /// Quantizes `values` into a BFP group.
    ///
    /// This is the full converter pipeline of paper Fig 4/14:
    /// 1. the shared exponent is the max exponent over the group (optionally
    ///    clamped into an [`ExponentWindow`] modelling the `e`-bit field);
    /// 2. each mantissa is aligned by the gap to the shared exponent;
    /// 3. `rounding` decides the low-order bits (stochastic for gradients);
    /// 4. magnitudes are truncated/saturated to `m` bits.
    ///
    /// The arithmetic is executed by the integer batch kernel of
    /// [`crate::kernel`]; this type remains the explanatory, materialized
    /// view of one group (see DESIGN.md §7). Saturating sanitization —
    /// non-finite values become the signed largest finite f32, NaN becomes
    /// zero — and rounding-parameter validation both happen once per group,
    /// not once per value.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or longer than the format's group size.
    pub fn quantize(
        values: &[f32],
        format: BfpFormat,
        rounding: Rounding,
        bits: &mut dyn BitSource,
        window: Option<ExponentWindow>,
    ) -> Self {
        assert!(!values.is_empty(), "cannot quantize an empty group");
        assert!(
            values.len() <= format.group_size(),
            "group of {} values exceeds format group size {}",
            values.len(),
            format.group_size()
        );
        let shared_exponent = match kernel::max_exponent(values) {
            None => {
                // All-zero group: store zero mantissas under the window floor
                // (or 0 when unbounded).
                let e = window.map(|w| w.clamp(i32::MIN / 2)).unwrap_or(0);
                return BfpGroup {
                    format,
                    shared_exponent: e,
                    mantissas: vec![0; values.len()],
                };
            }
            Some(e) => match window {
                Some(w) => w.clamp(e),
                None => e,
            },
        };
        let mut mantissas = Vec::with_capacity(values.len());
        kernel::quantize_group_mantissas(
            values,
            shared_exponent,
            format,
            rounding,
            bits,
            &mut mantissas,
        );
        BfpGroup {
            format,
            shared_exponent,
            mantissas,
        }
    }

    /// Quantizes with round-to-nearest and no exponent window — the
    /// weight/activation path of the paper, with `e` wide enough.
    pub fn quantize_nearest(values: &[f32], format: BfpFormat) -> Self {
        BfpGroup::quantize(values, format, Rounding::Nearest, &mut NoNoise, None)
    }

    /// Builds a group directly from parts (for tests and the fMAC model).
    ///
    /// # Panics
    ///
    /// Panics if any mantissa magnitude exceeds `2^m - 1` or the length
    /// exceeds the group size.
    pub fn from_parts(format: BfpFormat, shared_exponent: i32, mantissas: Vec<i32>) -> Self {
        assert!(mantissas.len() <= format.group_size());
        let max = format.max_magnitude() as i32;
        assert!(
            mantissas.iter().all(|&m| m.abs() <= max),
            "mantissa magnitude exceeds format maximum {max}"
        );
        BfpGroup {
            format,
            shared_exponent,
            mantissas,
        }
    }

    /// The format this group was quantized under.
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// The shared (unbiased) exponent `E`.
    pub fn shared_exponent(&self) -> i32 {
        self.shared_exponent
    }

    /// The signed integer mantissas.
    pub fn mantissas(&self) -> &[i32] {
        &self.mantissas
    }

    /// Number of values in the group.
    pub fn len(&self) -> usize {
        self.mantissas.len()
    }

    /// Whether the group holds no values.
    pub fn is_empty(&self) -> bool {
        self.mantissas.is_empty()
    }

    /// The value of one ulp: `2^(E - m + 1)`.
    pub fn scale(&self) -> f64 {
        2.0f64.powi(self.shared_exponent - self.format.mantissa_bits() as i32 + 1)
    }

    /// Reconstructs the `i`-th value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> f32 {
        (self.mantissas[i] as f64 * self.scale()) as f32
    }

    /// Reconstructs all values.
    pub fn dequantize(&self) -> Vec<f32> {
        let s = self.scale();
        self.mantissas
            .iter()
            .map(|&m| (m as f64 * s) as f32)
            .collect()
    }

    /// Writes reconstructed values into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len());
        let s = self.scale();
        for (o, &m) in out.iter_mut().zip(&self.mantissas) {
            *o = (m as f64 * s) as f32;
        }
    }

    /// Drops low-order mantissa bits to produce a narrower-precision view of
    /// the same group (shared exponent unchanged, magnitudes truncated
    /// toward zero).
    ///
    /// This is the hardware operation of paper Section V-D: "if Algorithm 1
    /// selects the 2-bit mantissa, then the low-order 2-bit chunk is
    /// discarded".
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the current mantissa bitwidth.
    pub fn truncate_to(&self, m: u32) -> BfpGroup {
        let cur = self.format.mantissa_bits();
        assert!(
            m <= cur,
            "cannot widen a group from {cur} to {m} bits by truncation"
        );
        let shift = cur - m;
        let format = self
            .format
            .with_mantissa_bits(m)
            .expect("narrowing a valid format stays valid");
        let mantissas = self
            .mantissas
            .iter()
            .map(|&v| {
                let mag = (v.unsigned_abs() >> shift) as i32;
                if v < 0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        BfpGroup {
            format,
            shared_exponent: self.shared_exponent,
            mantissas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::RngBits;
    use rand::SeedableRng;

    fn fmt(g: usize, m: u32, e: u32) -> BfpFormat {
        BfpFormat::new(g, m, e).unwrap()
    }

    #[test]
    fn max_element_gets_full_mantissa_precision() {
        let f = fmt(4, 4, 8);
        let g = BfpGroup::quantize_nearest(&[1.0, 0.5, 0.25, 0.125], f);
        assert_eq!(g.shared_exponent(), 0);
        // 1.0 * 2^(4-1-0) = 8 -> mantissa 8, value 8 * 2^(0-4+1) = 1.0.
        assert_eq!(g.mantissas()[0], 8);
        assert_eq!(g.value(0), 1.0);
        assert_eq!(g.value(1), 0.5);
    }

    #[test]
    fn small_values_lose_bits_as_in_fig4() {
        // With m=2, a value 3 octaves below the max loses all mantissa bits
        // (paper Fig 4 third value).
        let f = fmt(4, 2, 8);
        let g = BfpGroup::quantize(
            &[1.0, 0.9, 0.11, 0.0],
            f,
            Rounding::Truncate,
            &mut NoNoise,
            None,
        );
        assert_eq!(g.shared_exponent(), 0);
        // scale for m=2: |x| * 2^(1-0); 0.11*2 = 0.22 -> truncates to 0.
        assert_eq!(g.mantissas()[2], 0);
        assert_eq!(g.mantissas()[3], 0);
        assert_eq!(g.mantissas()[0], 2); // 1.0*2 = 2
    }

    #[test]
    fn saturation_at_max_magnitude() {
        let f = fmt(4, 3, 8);
        // 1.99 has exponent 0; scaled = 1.99*4 = 7.96 -> nearest 8 -> clamp 7.
        let g = BfpGroup::quantize_nearest(&[1.99, 0.1, 0.1, 0.1], f);
        assert_eq!(g.mantissas()[0], 7);
    }

    #[test]
    fn signs_preserved() {
        let f = fmt(4, 4, 8);
        let g = BfpGroup::quantize_nearest(&[-1.0, 1.0, -0.5, 0.5], f);
        assert_eq!(g.value(0), -1.0);
        assert_eq!(g.value(2), -0.5);
    }

    #[test]
    fn all_zero_group() {
        let f = fmt(4, 4, 3);
        let g = BfpGroup::quantize_nearest(&[0.0; 4], f);
        assert!(g.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quantization_error_bounded_by_half_ulp_of_max() {
        let f = fmt(16, 8, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::Rng;
        let xs: Vec<f32> = (0..16).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let g = BfpGroup::quantize_nearest(&xs, f);
        let ulp = g.scale();
        for (i, &x) in xs.iter().enumerate() {
            let err = (g.value(i) as f64 - x as f64).abs();
            assert!(err <= 0.5 * ulp + 1e-12, "err {err} > half ulp {ulp}");
        }
    }

    #[test]
    fn exponent_window_truncates_small_groups() {
        let f = fmt(4, 4, 3);
        // Window reference 0, e=3 -> representable exponents 0..=-7.
        let w = ExponentWindow {
            reference_exponent: 0,
            exponent_bits: 3,
        };
        // Group whose natural exponent is -20: clamped to -7; values become
        // denormal w.r.t. the window and truncate to zero.
        let tiny = [1e-6f32, 2e-6, -1e-6, 5e-7];
        let g = BfpGroup::quantize(&tiny, f, Rounding::Nearest, &mut NoNoise, Some(w));
        assert_eq!(g.shared_exponent(), -7);
        assert!(g.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn exponent_window_wide_enough_is_identity() {
        let f = fmt(4, 4, 8);
        let xs = [0.5f32, 0.25, 0.1, 0.05];
        let w = ExponentWindow::from_values(&xs, 8);
        let a = BfpGroup::quantize(&xs, f, Rounding::Nearest, &mut NoNoise, Some(w));
        let b = BfpGroup::quantize_nearest(&xs, f);
        assert_eq!(a, b);
    }

    #[test]
    fn truncate_to_drops_low_chunk() {
        let f = fmt(4, 4, 8);
        let g = BfpGroup::from_parts(f, 0, vec![15, -9, 4, 3]);
        let t = g.truncate_to(2);
        assert_eq!(t.format().mantissa_bits(), 2);
        assert_eq!(t.mantissas(), &[3, -2, 1, 0]);
        assert_eq!(t.shared_exponent(), 0);
        // Values shrink toward zero, never away.
        for i in 0..4 {
            assert!(t.value(i).abs() <= g.value(i).abs());
        }
    }

    #[test]
    fn stochastic_rounding_stays_within_one_ulp() {
        let f = fmt(16, 4, 8);
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(11));
        let xs: Vec<f32> = (1..=16).map(|i| i as f32 * 0.013).collect();
        for _ in 0..50 {
            let g = BfpGroup::quantize(&xs, f, Rounding::STOCHASTIC8, &mut src, None);
            let ulp = g.scale();
            for (i, &x) in xs.iter().enumerate() {
                let err = (g.value(i) as f64 - x as f64).abs();
                assert!(err < ulp + 1e-12);
            }
        }
    }

    #[test]
    fn nonfinite_inputs_saturate() {
        let f = fmt(4, 4, 8);
        let g = BfpGroup::quantize_nearest(&[f32::INFINITY, 1.0, f32::NAN, -f32::INFINITY], f);
        assert_eq!(g.mantissas()[0], 15); // saturated positive
        assert_eq!(g.mantissas()[2], 0); // NaN -> 0
        assert_eq!(g.mantissas()[3], -15);
    }

    #[test]
    #[should_panic(expected = "exceeds format group size")]
    fn oversized_group_panics() {
        let f = fmt(2, 4, 3);
        let _ = BfpGroup::quantize_nearest(&[1.0, 2.0, 3.0], f);
    }
}
