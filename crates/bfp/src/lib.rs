//! Block Floating Point (BFP) numerics for the FAST training system.
//!
//! This crate implements the number-format layer of *FAST: DNN Training Under
//! Variable Precision Block Floating Point with Stochastic Rounding* (Zhang,
//! McDanel, Kung — HPCA 2022):
//!
//! * [`BfpFormat`] — a BFP format description: group size `g`, mantissa
//!   bitwidth `m`, shared-exponent bitwidth `e` (paper Table I / Fig 2).
//! * [`BfpGroup`] — a quantized group of values sharing one exponent, with
//!   the conversion pipeline of paper Fig 4: find max exponent → align
//!   mantissas → add stochastic noise (gradients) → truncate.
//! * [`Rounding`] — nearest / truncate / stochastic rounding, the latter
//!   driven by an [`Lfsr16`] linear-feedback shift register exactly as in the
//!   paper's BFP converter (Fig 14), or — under [`SrMode::Counter`] — by
//!   [`CounterRng`], an order-independent counter-based noise source keyed
//!   on `(seed, element offset)` that makes stochastic rounding
//!   embarrassingly parallel (DESIGN.md §12).
//! * [`ChunkedGroup`] — the 2-bit-chunk mantissa memory layout of Fig 15
//!   that enables variable-precision arithmetic (Fig 13).
//! * [`kernel`] — the zero-allocation integer batch kernels behind all of
//!   the above: `f32::to_bits` exponent extraction, integer mantissa shifts,
//!   rounding and noise source monomorphized out of the hot loop
//!   (bit-identical to the explanatory f64 path; see DESIGN.md §7).
//! * [`packed`] — BFP-native packed operands: integer mantissas plus
//!   per-group scales produced straight from f32 data, bit-replayable as
//!   `mantissa × scale` without ever materializing the dequantized copy —
//!   the quantized-GEMM execution layer's representation, and what
//!   frozen-weight serving caches hold (DESIGN.md §8–§9).
//! * [`dot`] — BFP dot products: the direct integer form (Fig 5) and the
//!   chunk-serial form executed by the fMAC, which are bit-identical.
//! * [`tensor_quant`] — matrix-level grouped (fake-)quantization along a
//!   reduction axis plus the relative-improvement statistic `r(X)` of Eq. 2
//!   that drives the FAST-Adaptive algorithm (Algorithm 1).
//! * [`stats`] — exponent-gap histograms reproducing paper Fig 6.
//!
//! # Quick example
//!
//! ```
//! use fast_bfp::{BfpFormat, BfpGroup, Rounding};
//!
//! # fn main() -> Result<(), fast_bfp::FormatError> {
//! let fmt = BfpFormat::new(16, 4, 3)?; // g=16, m=4, e=3 ("HighBFP")
//! let xs: Vec<f32> = (0..16).map(|i| 0.01 * (i as f32 + 1.0)).collect();
//! let group = BfpGroup::quantize_nearest(&xs, fmt);
//! let back = group.dequantize();
//! assert_eq!(back.len(), xs.len());
//! // The largest element is represented with full m-bit fidelity.
//! let rel_err = (back[15] - xs[15]).abs() / xs[15];
//! assert!(rel_err < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod error;
mod format;
mod fp;
mod group;
mod lfsr;
mod rng;
mod rounding;

pub mod dot;
pub mod kernel;
pub mod packed;
pub mod stats;
pub mod tensor_quant;

pub use chunk::ChunkedGroup;
pub use error::FormatError;
pub use format::BfpFormat;
pub use fp::{exponent_of, quantize_minifloat, Minifloat};
pub use group::{BfpGroup, ExponentWindow};
pub use lfsr::{BitSource, Lfsr16, RngBits};
pub use rng::{CounterRng, SrMode};
pub use rounding::Rounding;
pub use tensor_quant::{
    fake_quantize_matrix, fake_quantize_slice, relative_improvement, GroupAxis, QuantStats,
};
