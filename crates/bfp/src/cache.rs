//! Reusable cached quantized buffers for frozen-weight inference.
//!
//! Training re-quantizes FP32 master weights on every GEMM because
//! Algorithm 1 may change a layer's precision between iterations. At
//! inference the weights and the format assignment are frozen, so the
//! FP32 → BFP → FP32 conversion can run **once** and be replayed from a
//! cache (DESIGN.md §8). [`QuantCache`] is that cache at the slice level:
//! it owns the quantized buffer, tracks a caller-supplied version key, and
//! rebuilds only when the key changes — repeat hits cost nothing and
//! allocate nothing.

/// A reusable buffer holding one quantized copy of a source slice.
///
/// The cache is format-agnostic: the caller passes a closure that performs
/// the actual in-place quantization (any [`crate::Rounding`], any format —
/// or a non-BFP scalar format). Staleness is tracked through an opaque
/// `u64` key; bump the key whenever the source values or the target format
/// change and the next [`QuantCache::get_or_build`] call rebuilds.
///
/// ```
/// use fast_bfp::cache::QuantCache;
/// use fast_bfp::kernel::fake_quantize_slice_with;
/// use fast_bfp::{BfpFormat, Lfsr16, Rounding};
///
/// let weights = vec![0.111f32; 32];
/// let mut cache = QuantCache::new();
/// let mut builds = 0u32;
/// for _request in 0..3 {
///     let q = cache.get_or_build(7, &weights, |buf| {
///         builds += 1;
///         fake_quantize_slice_with(
///             buf,
///             BfpFormat::high(),
///             Rounding::Nearest,
///             &mut Lfsr16::default(),
///             None,
///         );
///     });
///     assert_eq!(q.len(), weights.len());
/// }
/// assert_eq!(builds, 1, "repeat hits replay the cached buffer");
/// ```
#[derive(Debug, Default, Clone)]
pub struct QuantCache {
    buf: Vec<f32>,
    key: Option<u64>,
}

impl QuantCache {
    /// Creates an empty (invalid) cache.
    pub const fn new() -> Self {
        QuantCache {
            buf: Vec::new(),
            key: None,
        }
    }

    /// Whether the cache currently holds a build for `key`.
    pub fn is_valid(&self, key: u64) -> bool {
        self.key == Some(key)
    }

    /// Drops the cached build; the next [`QuantCache::get_or_build`]
    /// rebuilds regardless of key. The allocation is retained for reuse.
    pub fn invalidate(&mut self) {
        self.key = None;
    }

    /// Returns the cached quantized copy of `src`, rebuilding it first if
    /// the cache is invalid, holds a different `key`, or `src` changed
    /// length. On rebuild, `src` is copied into the internal buffer and
    /// `quantize` is invoked on it in place (exactly once); on a hit the
    /// stored buffer is returned untouched and `quantize` is not called.
    pub fn get_or_build(
        &mut self,
        key: u64,
        src: &[f32],
        quantize: impl FnOnce(&mut [f32]),
    ) -> &[f32] {
        if self.key != Some(key) || self.buf.len() != src.len() {
            self.buf.clear();
            self.buf.extend_from_slice(src);
            quantize(&mut self.buf);
            self.key = Some(key);
        }
        &self.buf
    }

    /// The cached buffer (empty if never built).
    pub fn data(&self) -> &[f32] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_per_key() {
        let src = [1.0f32, 2.0, 3.0];
        let mut cache = QuantCache::new();
        let mut builds = 0;
        for _ in 0..4 {
            let out = cache.get_or_build(1, &src, |b| {
                builds += 1;
                for v in b.iter_mut() {
                    *v *= 0.5;
                }
            });
            assert_eq!(out, &[0.5, 1.0, 1.5]);
        }
        assert_eq!(builds, 1);
        assert!(cache.is_valid(1));
        assert!(!cache.is_valid(2));
    }

    #[test]
    fn key_change_rebuilds_from_fresh_source() {
        let mut cache = QuantCache::new();
        cache.get_or_build(1, &[1.0, 1.0], |b| b[0] = 9.0);
        // New key: the buffer must be re-seeded from src, not from the
        // previous quantized contents.
        let out = cache.get_or_build(2, &[2.0, 2.0], |b| b[1] = 3.0);
        assert_eq!(out, &[2.0, 3.0]);
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let mut cache = QuantCache::new();
        let mut builds = 0;
        cache.get_or_build(5, &[1.0], |_| builds += 1);
        cache.invalidate();
        assert!(!cache.is_valid(5));
        cache.get_or_build(5, &[1.0], |_| builds += 1);
        assert_eq!(builds, 2);
    }

    #[test]
    fn length_change_rebuilds() {
        let mut cache = QuantCache::new();
        cache.get_or_build(1, &[1.0, 2.0], |_| {});
        let out = cache.get_or_build(1, &[3.0], |_| {});
        assert_eq!(out, &[3.0]);
    }
}
