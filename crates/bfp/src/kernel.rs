//! Zero-allocation integer BFP fake-quantization kernels.
//!
//! The explanatory path ([`crate::BfpGroup`]) models paper Fig 4 with f64
//! arithmetic: one heap-allocated group per 16 values, an `f64::powi` per
//! group and an f64 multiply per element. This module is the production
//! substrate behind it: the same align-shift-round pipeline executed as
//! integer bit manipulation on `f32::to_bits` patterns, monomorphized over
//! the rounding mode and the [`BitSource`] so the per-element `dyn` call of
//! the seed implementation disappears from the hot loop.
//!
//! The kernels are *bit-identical* to the f64 reference for every finite,
//! infinite and NaN input, every `m ∈ 1..=16`, every exponent window and
//! every stochastic noise width (`crates/bfp/tests/proptests.rs` pins this
//! across the full f32 range). The equivalence argument, spelled out in
//! DESIGN.md §7: an f32 magnitude is `sig · 2^p` with `sig < 2^24`, so the
//! scaled mantissa `|x| · 2^(m-1-E)` of the reference is the exact rational
//! `sig / 2^t` with `t = E + 1 - m - p`, and every rounding rule of
//! [`Rounding`] reduces to integer shifts against that denominator. The f64
//! reference computes the same quantity exactly except when the scaled value
//! is large enough that `2^m - 1` saturation hides the difference.
//!
//! Groups are never materialized: each group is quantized and written back
//! (or emitted into a caller-provided buffer) in one pass, and
//! [`QuantStats`] counting happens inline instead of re-scanning mantissas.

use crate::format::BfpFormat;
use crate::group::ExponentWindow;
use crate::lfsr::BitSource;
use crate::rng::{CounterBits, CounterRng};
use crate::rounding::Rounding;
use crate::tensor_quant::{GroupAxis, QuantStats};

/// Number of columns staged per panel by the `AlongCol` matrix kernel.
///
/// 32 columns × f32 keeps a panel row inside two cache lines while the
/// gather/scatter walks the matrix row-major.
const COL_PANEL: usize = 32;

/// Minimum elements each extra worker must be handed before counter-mode
/// quantization shards — below this the thread-spawn cost dominates the
/// ~2-3 ns/element quantization work.
const MIN_ELEMS_PER_WORKER: usize = 1 << 14;

/// The noise stream the quantization kernels draw from, generalizing
/// [`BitSource`] with *positioning*: order-free sources key every draw on an
/// element offset, sequential sources ignore the position calls entirely.
///
/// The kernels announce each group's position via [`NoiseSource::seek`]
/// (linear offset of its first element plus the stride between consecutive
/// elements) and account skipped elements via [`NoiseSource::skip`], so an
/// order-free source hands every element the noise at its own offset no
/// matter which path, order, or worker visits it.
pub(crate) trait NoiseSource {
    /// Whether draws are keyed purely by element position. Order-free
    /// sources unlock the column-vertical stochastic paths and worker
    /// sharding; sequential sources must see elements in the reference
    /// order (and skip zeros, for stream parity with the seed
    /// implementation).
    const ORDER_FREE: bool;

    /// The next `n`-bit draw (low bits), advancing the position by one
    /// stride step.
    fn draw(&mut self, n: u32) -> u32;

    /// Positions the source at linear element offset `base`, with
    /// consecutive draws `stride` elements apart. No-op for sequential
    /// sources.
    fn seek(&mut self, base: u64, stride: u64);

    /// Advances the position by `k` stride steps without drawing (an
    /// element that consumes no noise). No-op for sequential sources.
    fn skip(&mut self, k: u64);

    /// Fills `out` with consecutive 8-bit draws (requires stride 1),
    /// advancing the position by `out.len()`. Equivalent to `out.len()`
    /// calls of `draw(8)`; order-free sources override this with bulk word
    /// extraction so the caller's consuming loop can go branch-free.
    #[inline]
    fn fill8(&mut self, out: &mut [u8]) {
        for b in out {
            *b = self.draw(8) as u8;
        }
    }
}

/// A [`BitSource`] consumed in element-visitation order — the paper's
/// serialized LFSR semantics. Positioning calls are no-ops; draw order *is*
/// the stream order.
pub(crate) struct SeqSource<'a, B: BitSource + ?Sized>(pub(crate) &'a mut B);

impl<B: BitSource + ?Sized> NoiseSource for SeqSource<'_, B> {
    const ORDER_FREE: bool = false;

    #[inline(always)]
    fn draw(&mut self, n: u32) -> u32 {
        self.0.next_bits(n)
    }

    #[inline(always)]
    fn seek(&mut self, _base: u64, _stride: u64) {}

    #[inline(always)]
    fn skip(&mut self, _k: u64) {}
}

/// Splits a finite non-zero f32 magnitude bit pattern into `(sig, p)` with
/// `|x| = sig · 2^p` and `sig < 2^24` (subnormals keep their raw fraction).
#[inline(always)]
pub(crate) fn decompose(abs_bits: u32) -> (u32, i32) {
    let exp_field = abs_bits >> 23;
    let frac = abs_bits & 0x7F_FFFF;
    if exp_field == 0 {
        (frac, -149)
    } else {
        (frac | 0x80_0000, exp_field as i32 - 150)
    }
}

/// The unbiased exponent `floor(log2 |x|)` of a decomposed magnitude.
#[inline(always)]
pub(crate) fn exponent_of_parts(sig: u32, p: i32) -> i32 {
    p + (31 - sig.leading_zeros() as i32)
}

/// Maximum exponent over a slice after saturating sanitization: NaN values
/// are ignored (they quantize to zero), infinities count as `f32::MAX`.
/// Returns `None` for an all-zero (or all-NaN) slice.
///
/// Integer twin of `exponent_of(sanitize(v))` folded with `max` — the
/// comparator tree of the paper's converter (Fig 14). Because
/// `floor(log2 |x|)` is monotone in the magnitude bit pattern, the scan
/// reduces to an integer max over sanitized patterns with a single exponent
/// decode at the end.
pub fn max_exponent(values: &[f32]) -> Option<i32> {
    let (best, _) = scan_group(values);
    (best != 0).then(|| {
        let (sig, p) = decompose(best);
        exponent_of_parts(sig, p)
    })
}

/// One pass over a group: the maximum sanitized magnitude bit pattern, and
/// whether every element is a normal number or zero (the precondition for
/// the branch-free quantization loop).
#[inline]
pub(crate) fn scan_group(values: &[f32]) -> (u32, bool) {
    let mut best = 0u32;
    let mut plain = true;
    for &v in values {
        let abs = v.to_bits() & 0x7FFF_FFFF;
        plain &= abs == 0 || abs.wrapping_sub(0x0080_0000) <= 0x7EFF_FFFF;
        let abs = if abs >= 0x7F80_0000 {
            if abs == 0x7F80_0000 {
                0x7F7F_FFFF // infinity saturates to f32::MAX
            } else {
                0 // NaN sanitizes to zero
            }
        } else {
            abs
        };
        if abs > best {
            best = abs;
        }
    }
    (best, plain)
}

/// Exact `2^e` in f64: bit-assembled for the normal range, `powi` (which is
/// also exact for powers of two) outside it. Pathological exponent windows
/// can push `e` anywhere in `i32`, including under/overflow — `powi`'s
/// `0.0`/`inf` results reproduce the reference behavior there.
#[inline(always)]
fn pow2_f64(e: i32) -> f64 {
    if (-1022..=1023).contains(&e) {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        2.0f64.powi(e)
    }
}

/// Exact `2^e` in f32 for `e ∈ [-149, 127]` (the fast-path scale range);
/// subnormal powers are assembled as a raw fraction bit.
#[inline(always)]
pub(crate) fn pow2_f32(e: i32) -> f32 {
    if e >= -126 {
        f32::from_bits(((e + 127) as u32) << 23)
    } else {
        f32::from_bits(1u32 << (e + 149))
    }
}

/// A monomorphizable rounding rule: rounds the exact rational `sig / 2^t`
/// (with `sig < 2^24`) to an unsigned integer magnitude. `t <= 0` means the
/// scaled mantissa is the exact integer `sig << -t`.
///
/// Magnitudes far beyond any representable mantissa are clamped to
/// `u64::MAX`; the caller's `min(max_mag)` saturation makes that exact.
pub(crate) trait RoundOp {
    /// Whether this rule consumes random bits. Deterministic rules may be
    /// evaluated in any element order (enabling column-parallel kernels);
    /// stochastic rules need a sequential source to see elements in the
    /// reference order — or an order-free source, which restores free
    /// ordering (DESIGN.md §12).
    const DRAWS_BITS: bool;

    /// Whether this rule is exactly 8-bit stochastic rounding — the paper's
    /// gradient configuration. Combined with an order-free source it
    /// unlocks the branch-free bulk-noise loops (`fill8` + u32 shift math),
    /// which is where counter mode's single-thread speedup comes from.
    const NOISE8: bool = false;

    fn round<N: NoiseSource>(&self, sig: u32, t: i64, bits: &mut N) -> u64;

    /// Fast-path variant with the precondition `t >= 1` (guaranteed when
    /// the shared exponent is at least the group's natural exponent, since
    /// then `t >= 24 - m >= 8`): branch-free for the deterministic modes
    /// via shift clamping — for `sig < 2^24` every clamped shift yields the
    /// same result as the exact one. The result fits u32 (`<= 2^16`).
    fn round_aligned<N: NoiseSource>(&self, sig: u32, t: i32, bits: &mut N) -> u32;
}

/// Shifts the already-integer scaled mantissa into place (`t <= 0` case
/// shared by all modes).
#[inline(always)]
fn shift_up(sig: u32, t: i64) -> u64 {
    if t < -39 {
        u64::MAX // magnitude beyond any mantissa; saturates downstream
    } else {
        (sig as u64) << (-t as u32)
    }
}

pub(crate) struct NearestOp;
impl RoundOp for NearestOp {
    const DRAWS_BITS: bool = false;

    #[inline(always)]
    fn round<N: NoiseSource>(&self, sig: u32, t: i64, _bits: &mut N) -> u64 {
        if t <= 0 {
            shift_up(sig, t)
        } else if t >= 25 {
            0 // sig < 2^24, so sig + 2^(t-1) < 2^t
        } else {
            ((sig as u64) + (1u64 << (t - 1))) >> t
        }
    }

    #[inline(always)]
    fn round_aligned<N: NoiseSource>(&self, sig: u32, t: i32, _bits: &mut N) -> u32 {
        let t = t.min(25) as u32; // t = 25: sig + 2^24 < 2^25, result 0
        (sig + (1u32 << (t - 1))) >> t
    }
}

pub(crate) struct TruncateOp;
impl RoundOp for TruncateOp {
    const DRAWS_BITS: bool = false;

    #[inline(always)]
    fn round<N: NoiseSource>(&self, sig: u32, t: i64, _bits: &mut N) -> u64 {
        if t <= 0 {
            shift_up(sig, t)
        } else if t >= 24 {
            0
        } else {
            (sig as u64) >> t
        }
    }

    #[inline(always)]
    fn round_aligned<N: NoiseSource>(&self, sig: u32, t: i32, _bits: &mut N) -> u32 {
        sig >> t.min(24) as u32
    }
}

/// Stochastic rounding with `noise_bits`-wide noise; `noise_bits` is
/// validated once at dispatch, not per element.
pub(crate) struct StochasticOp {
    pub(crate) noise_bits: u32,
}
impl RoundOp for StochasticOp {
    const DRAWS_BITS: bool = true;

    #[inline(always)]
    fn round<N: NoiseSource>(&self, sig: u32, t: i64, bits: &mut N) -> u64 {
        // The reference draws noise for every non-zero element, including
        // ones the shift decides outright, so the stream stays aligned.
        let r = bits.draw(self.noise_bits) as u64;
        let nb = self.noise_bits as i64;
        if t <= 0 {
            shift_up(sig, t) // floor(integer + noise) = integer
        } else if t >= 64 {
            0 // sig/2^t < 2^-40 and noise < 1 - 2^-nb, so the sum is < 1
        } else if t >= nb {
            // floor((sig + r·2^(t-nb)) / 2^t); r·2^(t-nb) < 2^t <= 2^63.
            ((sig as u64) + (r << (t - nb) as u32)) >> t as u32
        } else {
            // floor((sig·2^(nb-t) + r) / 2^nb); sig·2^(nb-t) < 2^54.
            (((sig as u64) << (nb - t) as u32) + r) >> nb as u32
        }
    }

    #[inline(always)]
    fn round_aligned<N: NoiseSource>(&self, sig: u32, t: i32, bits: &mut N) -> u32 {
        if !N::ORDER_FREE && sig == 0 {
            return 0; // zeros never draw noise (stream parity with seed)
        }
        // Order-free sources draw for zeros too — the draw is positional,
        // costs nothing downstream (the result is still 0: r < 2^nb), and
        // keeps every element pinned to its own offset.
        let r = bits.draw(self.noise_bits) as u64;
        let nb = self.noise_bits as i64;
        // Clamping t at 63 is exact: for t >= 63 both terms shift to zero
        // (sig < 2^24 and r·2^(63-nb) + sig < 2^63 for nb <= 31).
        let t = (t as i64).min(63);
        let mag = if t >= nb {
            ((sig as u64) + (r << (t - nb) as u32)) >> t as u32
        } else {
            (((sig as u64) << (nb - t) as u32) + r) >> nb as u32
        };
        mag as u32
    }
}

/// Quantizes one group of `values` against shared exponent `e`, pushing the
/// signed integer mantissas onto `out`.
#[inline]
fn group_mantissas<R: RoundOp, N: NoiseSource>(
    values: &[f32],
    e: i32,
    m: u32,
    max_mag: u64,
    round: &R,
    bits: &mut N,
    out: &mut Vec<i32>,
) {
    let t_base = e as i64 + 1 - m as i64;
    for &v in values {
        let raw = v.to_bits();
        let abs = raw & 0x7FFF_FFFF;
        if abs == 0 || abs > 0x7F80_0000 {
            bits.skip(1); // zero or NaN: consumes its position, never a draw
            out.push(0);
            continue;
        }
        let abs = if abs == 0x7F80_0000 { 0x7F7F_FFFF } else { abs };
        let (sig, p) = decompose(abs);
        let mag = round.round(sig, t_base - p as i64, bits).min(max_mag) as i32;
        out.push(if raw >> 31 == 1 { -mag } else { mag });
    }
}

/// Fake-quantizes one group in place, folding [`QuantStats`] counting into
/// the same pass. Write-back matches `BfpGroup::dequantize_into` bit for
/// bit: `mantissa · 2^(E-m+1)` with a single rounding to f32.
#[inline]
fn fake_quantize_group<R: RoundOp, N: NoiseSource>(
    chunk: &mut [f32],
    m: u32,
    max_mag: u64,
    window: Option<ExponentWindow>,
    round: &R,
    bits: &mut N,
    stats: &mut QuantStats,
) {
    stats.groups += 1;
    let (max_bits, plain) = scan_group(chunk);
    if max_bits == 0 {
        // All-zero group: every reconstruction is +0.0.
        stats.zeros += chunk.len() as u64;
        for v in chunk {
            *v = 0.0;
        }
        return;
    }
    let natural = {
        let (sig, p) = decompose(max_bits);
        exponent_of_parts(sig, p)
    };
    let e = window.map_or(natural, |w| w.clamp(natural));
    // Fast path: every element normal or zero, the shared exponent not
    // clamped below the natural one (so every per-element shift is a right
    // shift), and the group ulp representable in f32. Covers everything
    // outside NaN/inf/subnormal inputs and pathological hand-built windows.
    if plain && e >= natural && e <= 127 {
        fake_quantize_group_plain(chunk, e, m, max_mag, round, bits, stats);
    } else {
        fake_quantize_group_general(chunk, e, m, max_mag, round, bits, stats);
    }
}

/// Branch-free per-element loop for the all-normal-or-zero case.
///
/// Bit-equivalence with the general loop: `man as f32 * scale` performs one
/// round-to-nearest of the exact product (both factors are exact, the scale
/// `2^(E-m+1) ∈ [2^-141, 2^127]` is itself exact), which is precisely what
/// the f64 multiply followed by an f32 narrowing computes.
#[inline]
fn fake_quantize_group_plain<R: RoundOp, N: NoiseSource>(
    chunk: &mut [f32],
    e: i32,
    m: u32,
    max_mag: u64,
    round: &R,
    bits: &mut N,
    stats: &mut QuantStats,
) {
    if R::NOISE8 && N::ORDER_FREE {
        return fake_quantize_group_plain_noise8(chunk, e, m, max_mag, bits, stats);
    }
    let t_base = e + 1 - m as i32;
    let max_mag = max_mag as u32;
    let scale = pow2_f32(e - m as i32 + 1);
    let mut zeros = 0u32;
    let mut saturated = 0u32;
    for v in chunk.iter_mut() {
        let raw = v.to_bits();
        let abs = raw & 0x7FFF_FFFF;
        // Zeros keep sig = 0 and quantize to +0.0 without branching.
        let nonzero_mask = ((abs != 0) as u32).wrapping_neg();
        let sig = ((raw & 0x7F_FFFF) | 0x80_0000) & nonzero_mask;
        let p = (abs >> 23) as i32 - 150;
        let mag = round.round_aligned(sig, t_base - p, bits).min(max_mag);
        zeros += (mag == 0) as u32;
        saturated += (mag == max_mag) as u32; // max_mag >= 1, disjoint from 0
                                              // Branchless conditional negation by the sign bit.
        let s = (raw as i32) >> 31;
        let man = (mag as i32 ^ s) - s;
        *v = man as f32 * scale;
    }
    stats.zeros += zeros as u64;
    stats.saturated += saturated as u64;
}

/// Stack buffer for bulk 8-bit noise prefetch; group sizes are far smaller,
/// larger groups just loop.
const NOISE_CHUNK: usize = 256;

/// 8-bit-stochastic twin of [`fake_quantize_group_plain`] for order-free
/// noise: the group's draws are prefetched with [`NoiseSource::fill8`] (one
/// SplitMix64 word per eight lanes), and the consuming loop is branch-free
/// u32 arithmetic — the same auto-vectorizable shape as the deterministic
/// plain loop, which is where counter mode's single-thread speedup over the
/// serialized LFSR comes from (DESIGN.md §12).
///
/// Bit-equivalence with `Stochastic8Op::round_aligned` against the same
/// positional draws: with `t ≥ 8` (the plain-path precondition) and noise
/// `r < 2^8`, for `t ≤ 31` the u32 form `(sig + (r << (t-8))) >> t` is the
/// u64 form exactly (`sig + r·2^(t-8) < 2^24 + 2^31`, no overflow), and for
/// `t ≥ 32` the true magnitude is `⌊sig/2^t + r/2^8⌋ = 0`, which the `live`
/// mask forces. Zeros draw too (`sig = 0` → `mag = r >> 8 = 0`), keeping
/// every element pinned to its own offset.
#[inline]
fn fake_quantize_group_plain_noise8<N: NoiseSource>(
    chunk: &mut [f32],
    e: i32,
    m: u32,
    max_mag: u64,
    bits: &mut N,
    stats: &mut QuantStats,
) {
    let t_base = e + 1 - m as i32;
    let max_mag = max_mag as u32;
    let scale = pow2_f32(e - m as i32 + 1);
    let mut zeros = 0u32;
    let mut saturated = 0u32;
    let mut noise = [0u8; NOISE_CHUNK];
    for sub in chunk.chunks_mut(NOISE_CHUNK) {
        let nb = &mut noise[..sub.len()];
        bits.fill8(nb);
        for (v, &r) in sub.iter_mut().zip(nb.iter()) {
            let raw = v.to_bits();
            let abs = raw & 0x7FFF_FFFF;
            let nonzero_mask = ((abs != 0) as u32).wrapping_neg();
            let sig = ((raw & 0x7F_FFFF) | 0x80_0000) & nonzero_mask;
            let p = (abs >> 23) as i32 - 150;
            let t = (t_base - p) as u32;
            debug_assert!(t >= 8);
            let tc = t.min(31);
            let live = ((t < 32) as u32).wrapping_neg();
            let mag = (((sig + ((r as u32) << (tc - 8))) >> tc) & live).min(max_mag);
            zeros += (mag == 0) as u32;
            saturated += (mag == max_mag) as u32;
            let s = (raw as i32) >> 31;
            let man = (mag as i32 ^ s) - s;
            *v = man as f32 * scale;
        }
    }
    stats.zeros += zeros as u64;
    stats.saturated += saturated as u64;
}

/// General per-element loop: NaN/infinity sanitization, subnormal inputs,
/// and shared exponents pushed anywhere by a hand-built window.
fn fake_quantize_group_general<R: RoundOp, N: NoiseSource>(
    chunk: &mut [f32],
    e: i32,
    m: u32,
    max_mag: u64,
    round: &R,
    bits: &mut N,
    stats: &mut QuantStats,
) {
    let t_base = e as i64 + 1 - m as i64;
    // One ulp, 2^(E-m+1), computed once per group.
    let scale = pow2_f64(e - m as i32 + 1);
    let mut zeros = 0u64;
    let mut saturated = 0u64;
    for v in chunk.iter_mut() {
        let raw = v.to_bits();
        let abs = raw & 0x7FFF_FFFF;
        if abs == 0 || abs > 0x7F80_0000 {
            bits.skip(1); // zero/NaN consumes its position, never a draw
            zeros += 1;
            *v = 0.0;
            continue;
        }
        let abs = if abs == 0x7F80_0000 { 0x7F7F_FFFF } else { abs };
        let (sig, p) = decompose(abs);
        let mag = round.round(sig, t_base - p as i64, bits).min(max_mag);
        zeros += (mag == 0) as u64;
        saturated += (mag == max_mag) as u64; // max_mag >= 1, disjoint from 0
        let man = if raw >> 31 == 1 {
            -(mag as i64)
        } else {
            mag as i64
        };
        *v = (man as f64 * scale) as f32;
    }
    stats.zeros += zeros;
    stats.saturated += saturated;
}

/// The paper's gradient configuration (`noise_bits = 8`), specialized so
/// the noise width is a compile-time constant: the LFSR's 8-bit jump and
/// the shift arithmetic fold into straight-line code.
pub(crate) struct Stochastic8Op;
impl RoundOp for Stochastic8Op {
    const DRAWS_BITS: bool = true;
    const NOISE8: bool = true;

    #[inline(always)]
    fn round<N: NoiseSource>(&self, sig: u32, t: i64, bits: &mut N) -> u64 {
        StochasticOp { noise_bits: 8 }.round(sig, t, bits)
    }

    #[inline(always)]
    fn round_aligned<N: NoiseSource>(&self, sig: u32, t: i32, bits: &mut N) -> u32 {
        if !N::ORDER_FREE && sig == 0 {
            return 0; // zeros never draw noise (stream parity with seed)
        }
        // Order-free: positional draw even for zeros (result still 0; for
        // sig = 0 the fast-path t is t_base + 150 >= 9, so the assert holds).
        let r = bits.draw(8) as u64;
        // Fast-path precondition t >= 24 - m >= 8 = noise_bits, so only the
        // single-shift form is needed; clamping at 63 is exact (see
        // `StochasticOp::round_aligned`).
        debug_assert!(t >= 8);
        let t = (t as i64).min(63) as u32;
        (((sig as u64) + (r << (t - 8))) >> t) as u32
    }
}

/// Validates `Stochastic` parameters once, outside the element loop.
#[inline]
pub(crate) fn check_noise_bits(rounding: Rounding) {
    if let Rounding::Stochastic { noise_bits } = rounding {
        assert!(
            (1..=31).contains(&noise_bits),
            "noise_bits must be in 1..=31"
        );
    }
}

#[inline]
fn slice_kernel<R: RoundOp, N: NoiseSource>(
    values: &mut [f32],
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> QuantStats {
    let mut stats = QuantStats::default();
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u64;
    let g = fmt.group_size();
    for (gi, chunk) in values.chunks_mut(g).enumerate() {
        bits.seek((gi * g) as u64, 1);
        fake_quantize_group(chunk, m, max_mag, window, round, bits, &mut stats);
    }
    stats
}

#[allow(clippy::too_many_arguments)] // mirrors the converter signature
#[inline]
fn matrix_kernel<R: RoundOp, N: NoiseSource>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    use_window: bool,
) -> QuantStats {
    let window = use_window.then(|| ExponentWindow {
        reference_exponent: max_exponent(data).unwrap_or(0),
        exponent_bits: fmt.exponent_bits(),
    });
    matrix_kernel_windowed(data, rows, cols, axis, fmt, round, bits, window)
}

/// [`matrix_kernel`] after window resolution — the sharding entry point:
/// counter-mode stripes quantize sub-matrices against the window computed
/// once over the whole matrix, with their noise offsets biased to the
/// stripe's first element.
#[allow(clippy::too_many_arguments)] // mirrors the converter signature
#[inline]
fn matrix_kernel_windowed<R: RoundOp, N: NoiseSource>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> QuantStats {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    match axis {
        GroupAxis::AlongRow => {
            let mut stats = QuantStats::default();
            let m = fmt.mantissa_bits();
            let max_mag = fmt.max_magnitude() as u64;
            let g = fmt.group_size();
            for (r, row) in data.chunks_mut(cols).enumerate() {
                for (gi, chunk) in row.chunks_mut(g).enumerate() {
                    bits.seek((r * cols + gi * g) as u64, 1);
                    fake_quantize_group(chunk, m, max_mag, window, round, bits, &mut stats);
                }
            }
            stats
        }
        GroupAxis::AlongCol => along_col_kernel(data, rows, cols, fmt, round, bits, window),
    }
}

/// `AlongCol` quantization: column-parallel whenever element order is free
/// (deterministic rounding, or stochastic rounding with an order-free noise
/// source), panel-staged sequential only for stochastic rounding against a
/// sequential stream — counter mode deletes the SR panel-staging entirely.
fn along_col_kernel<R: RoundOp, N: NoiseSource>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> QuantStats {
    if !R::DRAWS_BITS || N::ORDER_FREE {
        along_col_vertical(data, rows, cols, fmt, round, bits, window)
    } else {
        along_col_panels(data, rows, cols, fmt, round, bits, window)
    }
}

/// Order-free `AlongCol` path: every column group in a row block is
/// quantized simultaneously, lane-wise across the columns — the natural
/// SIMD layout for a row-major matrix, with no transpose staging at all.
/// Valid because nearest/truncate rounding consumes no bit stream and
/// counter-mode stochastic rounding keys noise on element offsets, so
/// element order is free; each element still gets exactly the arithmetic of
/// [`fake_quantize_group`].
fn along_col_vertical<R: RoundOp, N: NoiseSource>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> QuantStats {
    let mut stats = QuantStats::default();
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u32;
    let g = fmt.group_size();
    // Per-column state for the current row block, plus accumulated counters.
    let mut col_max = vec![0u32; cols];
    let mut t_base = vec![0i32; cols];
    let mut scale = vec![0.0f32; cols];
    let mut zeros = vec![0u32; cols];
    let mut saturated = vec![0u32; cols];
    let mut scratch = Vec::new(); // only used by the rare fallback
    let mut noise_row: Vec<u8> = Vec::new(); // bulk draws for the noise8 path
    let mut row0 = 0;
    while row0 < rows {
        let rb = g.min(rows - row0);
        // Lane-wise scan: per-column sanitized maximum, plus one flag that
        // stays true only if every element in the block is normal or zero.
        col_max[..cols].fill(0);
        let mut odd = 0u32;
        for r in row0..row0 + rb {
            let row = &data[r * cols..(r + 1) * cols];
            for (c, &v) in row.iter().enumerate() {
                let abs = v.to_bits() & 0x7FFF_FFFF;
                odd |= ((abs != 0) as u32) & ((abs.wrapping_sub(0x0080_0000) > 0x7EFF_FFFF) as u32);
                if abs > col_max[c] {
                    col_max[c] = abs;
                }
            }
        }
        if odd != 0 {
            // Subnormal/inf/NaN present: gather each column group and run
            // the general scalar pipeline (deterministic rounding draws
            // nothing; an order-free source is seeked to the column's
            // strided offsets so every element keeps its own noise).
            scratch.resize(rb, 0.0);
            for c in 0..cols {
                for (k, s) in scratch.iter_mut().enumerate() {
                    *s = data[(row0 + k) * cols + c];
                }
                bits.seek((row0 * cols + c) as u64, cols as u64);
                fake_quantize_group(
                    &mut scratch,
                    m,
                    max_mag as u64,
                    window,
                    round,
                    bits,
                    &mut stats,
                );
                for (k, &s) in scratch.iter().enumerate() {
                    data[(row0 + k) * cols + c] = s;
                }
            }
            row0 += rb;
            continue;
        }
        stats.groups += cols;
        // Decode per-column shared exponents (max is a normal number, so the
        // exponent field is the exponent; matrix windows are built from the
        // matrix-wide maximum and can only raise it, keeping E in [-126,127]).
        for c in 0..cols {
            if col_max[c] == 0 {
                t_base[c] = 26; // all-zero group: sig = 0 everywhere
                scale[c] = 0.0;
            } else {
                let natural = (col_max[c] >> 23) as i32 - 127;
                let e = window.map_or(natural, |w| w.clamp(natural));
                t_base[c] = e + 1 - m as i32;
                scale[c] = pow2_f32(e - m as i32 + 1);
            }
        }
        // Lane-wise quantization of the block, same arithmetic as
        // `fake_quantize_group_plain`. The row-major walk advances an
        // order-free source one offset per element; for 8-bit stochastic
        // rounding the row's draws are prefetched in bulk and the loop goes
        // branch-free, mirroring `fake_quantize_group_plain_noise8`.
        for r in row0..row0 + rb {
            bits.seek((r * cols) as u64, 1);
            let row = &mut data[r * cols..(r + 1) * cols];
            if R::NOISE8 && N::ORDER_FREE {
                noise_row.resize(cols, 0);
                bits.fill8(&mut noise_row[..cols]);
                for (c, (v, &rn)) in row.iter_mut().zip(noise_row.iter()).enumerate() {
                    let raw = v.to_bits();
                    let abs = raw & 0x7FFF_FFFF;
                    let nonzero_mask = ((abs != 0) as u32).wrapping_neg();
                    let sig = ((raw & 0x7F_FFFF) | 0x80_0000) & nonzero_mask;
                    let p = (abs >> 23) as i32 - 150;
                    let t = (t_base[c] - p) as u32;
                    debug_assert!(t >= 8);
                    let tc = t.min(31);
                    let live = ((t < 32) as u32).wrapping_neg();
                    let mag = (((sig + ((rn as u32) << (tc - 8))) >> tc) & live).min(max_mag);
                    zeros[c] += (mag == 0) as u32;
                    saturated[c] += (mag == max_mag) as u32;
                    let s = (raw as i32) >> 31;
                    let man = (mag as i32 ^ s) - s;
                    *v = man as f32 * scale[c];
                }
                continue;
            }
            for (c, v) in row.iter_mut().enumerate() {
                let raw = v.to_bits();
                let abs = raw & 0x7FFF_FFFF;
                let nonzero_mask = ((abs != 0) as u32).wrapping_neg();
                let sig = ((raw & 0x7F_FFFF) | 0x80_0000) & nonzero_mask;
                let p = (abs >> 23) as i32 - 150;
                let mag = round.round_aligned(sig, t_base[c] - p, bits).min(max_mag);
                zeros[c] += (mag == 0) as u32;
                saturated[c] += (mag == max_mag) as u32;
                let s = (raw as i32) >> 31;
                let man = (mag as i32 ^ s) - s;
                *v = man as f32 * scale[c];
            }
        }
        row0 += rb;
    }
    stats.zeros += zeros.iter().map(|&z| z as u64).sum::<u64>();
    stats.saturated += saturated.iter().map(|&z| z as u64).sum::<u64>();
    stats
}

/// Sequential-stochastic `AlongCol` path via cache-friendly column panels.
///
/// Columns are staged [`COL_PANEL`] at a time into a contiguous transposed
/// scratch buffer (streaming the matrix row-major for both gather and
/// scatter), quantized as contiguous slices, and written back. Columns are
/// still consumed left to right, rows top to bottom, so a sequential
/// stochastic bit stream sees exactly the element order of the strided
/// reference. Only reached when `N::ORDER_FREE` is false — counter mode
/// takes [`along_col_vertical`] instead.
fn along_col_panels<R: RoundOp, N: NoiseSource>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> QuantStats {
    let mut stats = QuantStats::default();
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u64;
    let g = fmt.group_size();
    let mut scratch = vec![0.0f32; rows * COL_PANEL.min(cols.max(1))];
    let mut col = 0;
    while col < cols {
        let pc = COL_PANEL.min(cols - col);
        for (r, row) in data.chunks(cols).enumerate() {
            for (c, &v) in row[col..col + pc].iter().enumerate() {
                scratch[c * rows + r] = v;
            }
        }
        for colbuf in scratch[..pc * rows].chunks_mut(rows) {
            for chunk in colbuf.chunks_mut(g) {
                fake_quantize_group(chunk, m, max_mag, window, round, bits, &mut stats);
            }
        }
        for (r, row) in data.chunks_mut(cols).enumerate() {
            for (c, v) in row[col..col + pc].iter_mut().enumerate() {
                *v = scratch[c * rows + r];
            }
        }
        col += pc;
    }
    stats
}

/// Computes the signed mantissas of one group against a fixed shared
/// exponent, appending to `out` (the [`crate::BfpGroup`] construction path).
///
/// # Panics
///
/// Panics if `rounding` is `Stochastic` with `noise_bits` outside `1..=31`.
pub fn quantize_group_mantissas<B: BitSource + ?Sized>(
    values: &[f32],
    shared_exponent: i32,
    fmt: BfpFormat,
    rounding: Rounding,
    bits: &mut B,
    out: &mut Vec<i32>,
) {
    check_noise_bits(rounding);
    let (e, m, max_mag) = (
        shared_exponent,
        fmt.mantissa_bits(),
        fmt.max_magnitude() as u64,
    );
    let bits = &mut SeqSource(bits);
    match rounding {
        Rounding::Nearest => group_mantissas(values, e, m, max_mag, &NearestOp, bits, out),
        Rounding::Truncate => group_mantissas(values, e, m, max_mag, &TruncateOp, bits, out),
        Rounding::Stochastic { noise_bits: 8 } => {
            group_mantissas(values, e, m, max_mag, &Stochastic8Op, bits, out)
        }
        Rounding::Stochastic { noise_bits } => group_mantissas(
            values,
            e,
            m,
            max_mag,
            &StochasticOp { noise_bits },
            bits,
            out,
        ),
    }
}

/// Fake-quantizes a contiguous slice in groups of `fmt.group_size()`,
/// monomorphized over the [`BitSource`]. Semantically identical to
/// [`crate::fake_quantize_slice`] (which wraps this with a `dyn` source).
///
/// ```
/// use fast_bfp::kernel::fake_quantize_slice_with;
/// use fast_bfp::{BfpFormat, Lfsr16, Rounding};
///
/// // One HighBFP group (g=16, m=4): the largest magnitude anchors the
/// // shared exponent and survives with full m-bit fidelity.
/// let mut xs: Vec<f32> = (1..=16).map(|i| 0.01 * i as f32).collect();
/// let stats = fake_quantize_slice_with(
///     &mut xs,
///     BfpFormat::high(),
///     Rounding::Nearest,
///     &mut Lfsr16::default(),
///     None,
/// );
/// assert_eq!(stats.groups, 1);
/// let rel_err = (xs[15] - 0.16).abs() / 0.16;
/// assert!(rel_err < 0.1);
/// ```
///
/// # Panics
///
/// Panics if `rounding` is `Stochastic` with `noise_bits` outside `1..=31`.
pub fn fake_quantize_slice_with<B: BitSource + ?Sized>(
    values: &mut [f32],
    fmt: BfpFormat,
    rounding: Rounding,
    bits: &mut B,
    window: Option<ExponentWindow>,
) -> QuantStats {
    check_noise_bits(rounding);
    let bits = &mut SeqSource(bits);
    match rounding {
        Rounding::Nearest => slice_kernel(values, fmt, &NearestOp, bits, window),
        Rounding::Truncate => slice_kernel(values, fmt, &TruncateOp, bits, window),
        Rounding::Stochastic { noise_bits: 8 } => {
            slice_kernel(values, fmt, &Stochastic8Op, bits, window)
        }
        Rounding::Stochastic { noise_bits } => {
            slice_kernel(values, fmt, &StochasticOp { noise_bits }, bits, window)
        }
    }
}

/// Fake-quantizes a row-major `rows × cols` matrix with groups along
/// `axis`, monomorphized over the [`BitSource`]. Semantically identical to
/// [`crate::fake_quantize_matrix`] (which wraps this with a `dyn` source).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`, or if `rounding` is `Stochastic`
/// with `noise_bits` outside `1..=31`.
#[allow(clippy::too_many_arguments)] // mirrors the converter signature
pub fn fake_quantize_matrix_with<B: BitSource + ?Sized>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    rounding: Rounding,
    bits: &mut B,
    use_window: bool,
) -> QuantStats {
    check_noise_bits(rounding);
    let bits = &mut SeqSource(bits);
    match rounding {
        Rounding::Nearest => {
            matrix_kernel(data, rows, cols, axis, fmt, &NearestOp, bits, use_window)
        }
        Rounding::Truncate => {
            matrix_kernel(data, rows, cols, axis, fmt, &TruncateOp, bits, use_window)
        }
        Rounding::Stochastic { noise_bits: 8 } => matrix_kernel(
            data,
            rows,
            cols,
            axis,
            fmt,
            &Stochastic8Op,
            bits,
            use_window,
        ),
        Rounding::Stochastic { noise_bits } => matrix_kernel(
            data,
            rows,
            cols,
            axis,
            fmt,
            &StochasticOp { noise_bits },
            bits,
            use_window,
        ),
    }
}

/// Effective worker count for counter-mode sharding: capped so every worker
/// gets at least [`MIN_ELEMS_PER_WORKER`] elements, never below one.
#[inline]
pub(crate) fn effective_workers(workers: usize, numel: usize) -> usize {
    workers.min(numel / MIN_ELEMS_PER_WORKER).max(1)
}

/// Counter-mode slice quantization, monomorphized over the rounding rule and
/// sharded across `workers` threads at group granularity.
///
/// Element `i` of `values` draws its noise at offset `base + i`, no matter
/// which stripe or thread quantizes it — the output is bitwise identical for
/// every worker count and visitation order.
#[allow(clippy::too_many_arguments)]
fn slice_counter<R: RoundOp + Sync>(
    values: &mut [f32],
    fmt: BfpFormat,
    round: &R,
    rng: CounterRng,
    base: u64,
    window: Option<ExponentWindow>,
    workers: usize,
) -> QuantStats {
    let numel = values.len();
    let workers = effective_workers(workers, numel);
    if workers == 1 {
        let mut bits = CounterBits::new(rng, base);
        return slice_kernel(values, fmt, round, &mut bits, window);
    }
    let g = fmt.group_size();
    // Stripe at group granularity so every stripe starts on a group
    // boundary — stripe-local group decomposition then matches the
    // unsharded kernel exactly.
    let groups = numel.div_ceil(g);
    let stripe_elems = groups.div_ceil(workers) * g;
    let mut stats = QuantStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = values
            .chunks_mut(stripe_elems)
            .enumerate()
            .map(|(i, stripe)| {
                let origin = base + (i * stripe_elems) as u64;
                scope.spawn(move || {
                    let mut bits = CounterBits::new(rng, origin);
                    slice_kernel(stripe, fmt, round, &mut bits, window)
                })
            })
            .collect();
        for h in handles {
            stats.merge(h.join().expect("counter-SR worker panicked"));
        }
    });
    stats
}

/// Fake-quantizes a contiguous slice with counter-based noise: element `i`
/// draws at offset `base + i` from `rng`, independent of visitation order
/// and of `workers` (the quantization shards across threads at group
/// granularity; deterministic rounding modes simply ignore the noise).
///
/// This is the order-free twin of [`fake_quantize_slice_with`] — same
/// arithmetic, same [`QuantStats`], but the stochastic noise is keyed by
/// `(seed, offset)` instead of a serialized stream (DESIGN.md §12).
///
/// # Panics
///
/// Panics if `rounding` is `Stochastic` with `noise_bits` outside `1..=31`.
pub fn fake_quantize_slice_counter(
    values: &mut [f32],
    fmt: BfpFormat,
    rounding: Rounding,
    rng: CounterRng,
    base: u64,
    window: Option<ExponentWindow>,
    workers: usize,
) -> QuantStats {
    check_noise_bits(rounding);
    match rounding {
        Rounding::Nearest => slice_counter(values, fmt, &NearestOp, rng, base, window, workers),
        Rounding::Truncate => slice_counter(values, fmt, &TruncateOp, rng, base, window, workers),
        Rounding::Stochastic { noise_bits: 8 } => {
            slice_counter(values, fmt, &Stochastic8Op, rng, base, window, workers)
        }
        Rounding::Stochastic { noise_bits } => slice_counter(
            values,
            fmt,
            &StochasticOp { noise_bits },
            rng,
            base,
            window,
            workers,
        ),
    }
}

/// Counter-mode matrix quantization, monomorphized over the rounding rule
/// and sharded across `workers` threads in row stripes.
///
/// Stripes align to single rows for `AlongRow` and to `group_size()` rows
/// for `AlongCol`, so stripe-local group decomposition matches the
/// unsharded kernel; the exponent window is resolved once over the whole
/// matrix before sharding.
#[allow(clippy::too_many_arguments)]
fn matrix_counter<R: RoundOp + Sync>(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    round: &R,
    rng: CounterRng,
    base: u64,
    use_window: bool,
    workers: usize,
) -> QuantStats {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    let window = use_window.then(|| ExponentWindow {
        reference_exponent: max_exponent(data).unwrap_or(0),
        exponent_bits: fmt.exponent_bits(),
    });
    let workers = effective_workers(workers, data.len());
    if workers == 1 {
        let mut bits = CounterBits::new(rng, base);
        return matrix_kernel_windowed(data, rows, cols, axis, fmt, round, &mut bits, window);
    }
    let granule = match axis {
        GroupAxis::AlongRow => 1,
        GroupAxis::AlongCol => fmt.group_size(),
    };
    let blocks = rows.div_ceil(granule);
    let stripe_rows = blocks.div_ceil(workers) * granule;
    let mut stats = QuantStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks_mut(stripe_rows * cols)
            .enumerate()
            .map(|(i, stripe)| {
                let origin = base + (i * stripe_rows * cols) as u64;
                scope.spawn(move || {
                    let mut bits = CounterBits::new(rng, origin);
                    let srows = stripe.len() / cols;
                    matrix_kernel_windowed(stripe, srows, cols, axis, fmt, round, &mut bits, window)
                })
            })
            .collect();
        for h in handles {
            stats.merge(h.join().expect("counter-SR worker panicked"));
        }
    });
    stats
}

/// Fake-quantizes a row-major `rows × cols` matrix with counter-based
/// noise: the element at `(r, c)` draws at offset `base + r·cols + c` from
/// `rng`, independent of axis path, visitation order, and `workers`.
///
/// Order-free twin of [`fake_quantize_matrix_with`]; in stochastic modes the
/// `AlongCol` path runs column-vertical (no panel staging) and shards across
/// threads like deterministic rounding (DESIGN.md §12).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`, or if `rounding` is `Stochastic`
/// with `noise_bits` outside `1..=31`.
#[allow(clippy::too_many_arguments)] // mirrors the converter signature
pub fn fake_quantize_matrix_counter(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    rounding: Rounding,
    rng: CounterRng,
    base: u64,
    use_window: bool,
    workers: usize,
) -> QuantStats {
    check_noise_bits(rounding);
    match rounding {
        Rounding::Nearest => matrix_counter(
            data, rows, cols, axis, fmt, &NearestOp, rng, base, use_window, workers,
        ),
        Rounding::Truncate => matrix_counter(
            data,
            rows,
            cols,
            axis,
            fmt,
            &TruncateOp,
            rng,
            base,
            use_window,
            workers,
        ),
        Rounding::Stochastic { noise_bits: 8 } => matrix_counter(
            data,
            rows,
            cols,
            axis,
            fmt,
            &Stochastic8Op,
            rng,
            base,
            use_window,
            workers,
        ),
        Rounding::Stochastic { noise_bits } => matrix_counter(
            data,
            rows,
            cols,
            axis,
            fmt,
            &StochasticOp { noise_bits },
            rng,
            base,
            use_window,
            workers,
        ),
    }
}
