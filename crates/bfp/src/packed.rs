//! Packing FP32 matrices into BFP-native operands: integer mantissas plus
//! per-group shared-exponent scales, **without materializing the
//! dequantized f32 copy**.
//!
//! The fake-quantization kernels ([`crate::kernel`]) overwrite an f32
//! buffer with the dequantized BFP values; a GEMM then re-reads that buffer
//! — two full passes over memory per operand beyond the arithmetic itself.
//! This module produces the same quantization decision in packed form: one
//! `i8` mantissa per value and one f32 scale (`2^(E-m+1)`) per group. A
//! downstream kernel reconstructs each value as `mantissa as f32 * scale`,
//! which is **bit-identical** to what the fake-quantize kernel would have
//! written, because that is literally the same expression the kernel's
//! plain path evaluates (see `fake_quantize_group_plain` and DESIGN.md §9).
//!
//! Packing is restricted to the cases where the fake-quantize kernel takes
//! its plain path for every group, so the reconstruction identity holds
//! with no further argument:
//!
//! * mantissa width `m ≤ 7`, so signed mantissas fit `i8` (`|M| ≤ 127`);
//! * every input value is a normal number or zero — NaN/infinity/subnormal
//!   inputs force the kernel's general (f64) path, whose subnormal-scale
//!   rounding an `i8 × f32` pair cannot replay.
//!
//! [`pack_matrix_with`] detects both conditions with a draw-free prescan
//! and returns `None` — having consumed **no** stochastic-rounding bits —
//! so the caller can fall back to the fake-quantize + dense-GEMM path with
//! an unperturbed bit stream. Stochastic draws, when packing does proceed,
//! happen in exactly the element order of the strided reference
//! ([`crate::fake_quantize_matrix`]), so a packed operand and a
//! fake-quantized one consume identical bit streams.

use crate::format::BfpFormat;
use crate::group::ExponentWindow;
use crate::kernel::{
    check_noise_bits, effective_workers, exponent_of_parts, pow2_f32, scan_group, NearestOp,
    NoiseSource, RoundOp, SeqSource, Stochastic8Op, StochasticOp, TruncateOp,
};
use crate::lfsr::BitSource;
use crate::rng::{CounterBits, CounterRng};
use crate::rounding::Rounding;
use crate::tensor_quant::{GroupAxis, QuantStats};

/// Widest mantissa packable into `i8` storage (`2^7 - 1 = 127 = i8::MAX`).
pub const MAX_PACKED_MANTISSA_BITS: u32 = 7;

/// A BFP-packed matrix: signed integer mantissas plus per-group scales.
///
/// Layout is row-major `rows × cols` for the mantissas. For
/// [`GroupAxis::AlongRow`] the scales form a `rows × ceil(cols/g)` matrix
/// (`scale_of(i, j) = scales[i * gpr + j / g]`); for
/// [`GroupAxis::AlongCol`] they form a `ceil(rows/g) × cols` matrix
/// (`scale_of(i, j) = scales[(i / g) * cols + j]`).
///
/// # Guarantees consumed by integer-domain kernels
///
/// Downstream consumers that multiply mantissas as integers (the
/// `fast_tensor` integer-domain qGEMM, DESIGN.md §11) rely on two
/// invariants that every packing path upholds:
///
/// * **Mantissa range**: `|mantissas[idx]| ≤ 2^m − 1 ≤ 127` — the value
///   `-128` never occurs, because magnitudes are clamped to the format's
///   `max_magnitude()` *before* the sign is applied. A product of two
///   mantissas therefore fits `i16` (`≤ 127² = 16 129`) and i32
///   accumulation over up to `⌊i32::MAX / 127²⌋ = 133 152` products is
///   exact.
/// * **Scale values**: every scale is either an *exact power of two*
///   (`2^(E−m+1)` with `E` a representable normal exponent, so the f32 has
///   an all-zero significand field) or exactly `0.0` for an all-zero
///   group. A product of two scales is thus itself exact in f32 (no
///   rounding), which is what lets the integer kernels factor the scales
///   out of the inner product without changing the result.
#[derive(Debug, Clone)]
pub struct PackedData {
    /// Signed mantissas, row-major, one per value.
    pub mantissas: Vec<i8>,
    /// Per-group scales `2^(E - m + 1)` (`0.0` for all-zero groups).
    pub scales: Vec<f32>,
    /// The same counters the fake-quantize kernel would have produced.
    pub stats: QuantStats,
}

/// Packs a row-major `rows × cols` matrix into BFP mantissas + scales with
/// groups along `axis`, or returns `None` — consuming no random bits — when
/// the packed fast path cannot reproduce the fake-quantize kernel's bits
/// (mantissa wider than [`MAX_PACKED_MANTISSA_BITS`], or any non-normal
/// non-zero input value).
///
/// When `use_window` is set, the shared exponents are clamped into an
/// `e`-bit [`ExponentWindow`] anchored at the matrix-wide maximum exponent,
/// exactly as [`crate::fake_quantize_matrix`] does.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`, or if `rounding` is `Stochastic`
/// with `noise_bits` outside `1..=31`.
#[allow(clippy::too_many_arguments)] // mirrors the converter signature
pub fn pack_matrix_with<B: BitSource + ?Sized>(
    data: &[f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    rounding: Rounding,
    bits: &mut B,
    use_window: bool,
) -> Option<PackedData> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    check_noise_bits(rounding);
    if fmt.mantissa_bits() > MAX_PACKED_MANTISSA_BITS {
        return None;
    }
    // Draw-free prescan: the packed path requires every group to take the
    // fake-quantize kernel's plain path, which holds exactly when every
    // value is a normal number or zero (window clamping only ever *raises*
    // a group exponent toward the matrix maximum, so `e ∈ [natural, 127]`
    // is automatic). The scan also yields the matrix maximum for the window.
    let (max_bits, plain) = scan_group(data);
    if !plain {
        return None;
    }
    let window = use_window.then(|| ExponentWindow {
        reference_exponent: if max_bits == 0 {
            0
        } else {
            let (sig, p) = crate::kernel::decompose(max_bits);
            exponent_of_parts(sig, p)
        },
        exponent_bits: fmt.exponent_bits(),
    });
    let bits = &mut SeqSource(bits);
    Some(match rounding {
        Rounding::Nearest => pack_kernel(data, rows, cols, axis, fmt, &NearestOp, bits, window),
        Rounding::Truncate => pack_kernel(data, rows, cols, axis, fmt, &TruncateOp, bits, window),
        Rounding::Stochastic { noise_bits: 8 } => {
            pack_kernel(data, rows, cols, axis, fmt, &Stochastic8Op, bits, window)
        }
        Rounding::Stochastic { noise_bits } => pack_kernel(
            data,
            rows,
            cols,
            axis,
            fmt,
            &StochasticOp { noise_bits },
            bits,
            window,
        ),
    })
}

/// Counter-mode packing: the element at `(r, c)` draws its stochastic noise
/// at offset `base + r·cols + c` from `rng`, independent of axis path,
/// visitation order, and `workers` — and bit-identical to what
/// [`crate::kernel::fake_quantize_matrix_counter`] writes for the same
/// `(rng, base)`, so the packed fast path and the dense fallback remain
/// interchangeable per operand.
///
/// Returns `None` under exactly the same conditions as
/// [`pack_matrix_with`]; counter noise is positional, so a refusal "costs"
/// nothing and the caller's fallback quantizes with the same offsets.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`, or if `rounding` is `Stochastic`
/// with `noise_bits` outside `1..=31`.
#[allow(clippy::too_many_arguments)] // mirrors the converter signature
pub fn pack_matrix_counter(
    data: &[f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    rounding: Rounding,
    rng: CounterRng,
    base: u64,
    use_window: bool,
    workers: usize,
) -> Option<PackedData> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    check_noise_bits(rounding);
    if fmt.mantissa_bits() > MAX_PACKED_MANTISSA_BITS {
        return None;
    }
    let (max_bits, plain) = scan_group(data);
    if !plain {
        return None;
    }
    let window = use_window.then(|| ExponentWindow {
        reference_exponent: if max_bits == 0 {
            0
        } else {
            let (sig, p) = crate::kernel::decompose(max_bits);
            exponent_of_parts(sig, p)
        },
        exponent_bits: fmt.exponent_bits(),
    });
    Some(match rounding {
        Rounding::Nearest => pack_counter(
            data, rows, cols, axis, fmt, &NearestOp, rng, base, window, workers,
        ),
        Rounding::Truncate => pack_counter(
            data,
            rows,
            cols,
            axis,
            fmt,
            &TruncateOp,
            rng,
            base,
            window,
            workers,
        ),
        Rounding::Stochastic { noise_bits: 8 } => pack_counter(
            data,
            rows,
            cols,
            axis,
            fmt,
            &Stochastic8Op,
            rng,
            base,
            window,
            workers,
        ),
        Rounding::Stochastic { noise_bits } => pack_counter(
            data,
            rows,
            cols,
            axis,
            fmt,
            &StochasticOp { noise_bits },
            rng,
            base,
            window,
            workers,
        ),
    })
}

/// Counter-mode packing sharded across `workers` threads in row stripes
/// (single rows for `AlongRow`, `group_size()` rows for `AlongCol`, so
/// stripe-local group decomposition matches the unsharded packer). Stripe
/// outputs concatenate exactly because both mantissa and scale layouts are
/// row-major in the striped dimension.
#[allow(clippy::too_many_arguments)]
fn pack_counter<R: RoundOp + Sync>(
    data: &[f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    round: &R,
    rng: CounterRng,
    base: u64,
    window: Option<ExponentWindow>,
    workers: usize,
) -> PackedData {
    let workers = effective_workers(workers, data.len());
    if workers == 1 {
        let mut bits = CounterBits::new(rng, base);
        return pack_kernel(data, rows, cols, axis, fmt, round, &mut bits, window);
    }
    let granule = match axis {
        GroupAxis::AlongRow => 1,
        GroupAxis::AlongCol => fmt.group_size(),
    };
    let blocks = rows.div_ceil(granule);
    let stripe_rows = blocks.div_ceil(workers) * granule;
    let parts: Vec<PackedData> = std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks(stripe_rows * cols)
            .enumerate()
            .map(|(i, stripe)| {
                let origin = base + (i * stripe_rows * cols) as u64;
                scope.spawn(move || {
                    let mut bits = CounterBits::new(rng, origin);
                    let srows = stripe.len() / cols;
                    pack_kernel(stripe, srows, cols, axis, fmt, round, &mut bits, window)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("counter-SR pack worker panicked"))
            .collect()
    });
    let mut parts = parts.into_iter();
    let mut out = parts.next().expect("at least one stripe");
    for p in parts {
        out.mantissas.extend_from_slice(&p.mantissas);
        out.scales.extend_from_slice(&p.scales);
        out.stats.merge(p.stats);
    }
    out
}

#[allow(clippy::too_many_arguments)] // monomorphization split of the above
fn pack_kernel<R: RoundOp, N: NoiseSource>(
    data: &[f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> PackedData {
    match axis {
        GroupAxis::AlongRow => pack_along_row(data, rows, cols, fmt, round, bits, window),
        GroupAxis::AlongCol if !R::DRAWS_BITS || N::ORDER_FREE => {
            pack_along_col_vertical(data, rows, cols, fmt, round, bits, window)
        }
        GroupAxis::AlongCol => {
            pack_along_col_stochastic(data, rows, cols, fmt, round, bits, window)
        }
    }
}

/// Packs one contiguous group of plain (normal-or-zero) values, returning
/// the group scale and appending per-element counters to `stats`. Mirrors
/// `fake_quantize_group_plain` arithmetic exactly; the reconstruction
/// `man as f32 * scale` therefore reproduces its written f32s bit for bit.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the fake-quantize group kernel
fn pack_group_plain<R: RoundOp, N: NoiseSource>(
    values: &[f32],
    m: u32,
    max_mag: u32,
    window: Option<ExponentWindow>,
    round: &R,
    bits: &mut N,
    stats: &mut QuantStats,
    out: &mut [i8],
) -> f32 {
    stats.groups += 1;
    let mut group_max = 0u32;
    for &v in values {
        let abs = v.to_bits() & 0x7FFF_FFFF;
        if abs > group_max {
            group_max = abs;
        }
    }
    if group_max == 0 {
        stats.zeros += values.len() as u64;
        out[..values.len()].fill(0);
        return 0.0;
    }
    let natural = (group_max >> 23) as i32 - 127;
    let e = window.map_or(natural, |w| w.clamp(natural));
    let t_base = e + 1 - m as i32;
    let scale = pow2_f32(e - m as i32 + 1);
    let mut zeros = 0u32;
    let mut saturated = 0u32;
    for (v, o) in values.iter().zip(out.iter_mut()) {
        let raw = v.to_bits();
        let abs = raw & 0x7FFF_FFFF;
        let nonzero_mask = ((abs != 0) as u32).wrapping_neg();
        let sig = ((raw & 0x7F_FFFF) | 0x80_0000) & nonzero_mask;
        let p = (abs >> 23) as i32 - 150;
        let mag = round.round_aligned(sig, t_base - p, bits).min(max_mag);
        zeros += (mag == 0) as u32;
        saturated += (mag == max_mag) as u32;
        let s = (raw as i32) >> 31;
        *o = ((mag as i32 ^ s) - s) as i8;
    }
    stats.zeros += zeros as u64;
    stats.saturated += saturated as u64;
    scale
}

/// `AlongRow` packing: groups are contiguous within each row, visited in
/// the strided reference's element order (row-major), so stochastic draws
/// line up stream-for-stream.
fn pack_along_row<R: RoundOp, N: NoiseSource>(
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> PackedData {
    let g = fmt.group_size();
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u32;
    let gpr = cols.div_ceil(g).max(1);
    let mut mans = vec![0i8; rows * cols];
    let mut scales = vec![0.0f32; rows * gpr];
    let mut stats = QuantStats::default();
    for (r, row) in data.chunks(cols).enumerate() {
        for (gi, chunk) in row.chunks(g).enumerate() {
            bits.seek((r * cols + gi * g) as u64, 1);
            let scale = pack_group_plain(
                chunk,
                m,
                max_mag,
                window,
                round,
                bits,
                &mut stats,
                &mut mans[r * cols + gi * g..r * cols + gi * g + chunk.len()],
            );
            scales[r * gpr + gi] = scale;
        }
    }
    PackedData {
        mantissas: mans,
        scales,
        stats,
    }
}

/// Order-free `AlongCol` packing: lane-wise over row blocks (the same
/// traversal as the fake-quantize kernel's vertical path — element order is
/// free because nearest/truncate rounding draws no bits, and counter-mode
/// stochastic rounding keys its noise on element offsets).
fn pack_along_col_vertical<R: RoundOp, N: NoiseSource>(
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> PackedData {
    let g = fmt.group_size();
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u32;
    let mut mans = vec![0i8; rows * cols];
    let mut scales = vec![0.0f32; rows.div_ceil(g).max(1) * cols];
    let mut stats = QuantStats::default();
    let mut col_max = vec![0u32; cols];
    let mut t_base = vec![0i32; cols];
    let mut zeros = vec![0u32; cols];
    let mut saturated = vec![0u32; cols];
    let mut row0 = 0;
    while row0 < rows {
        let rb = g.min(rows - row0);
        col_max[..cols].fill(0);
        for r in row0..row0 + rb {
            for (c, &v) in data[r * cols..(r + 1) * cols].iter().enumerate() {
                let abs = v.to_bits() & 0x7FFF_FFFF;
                if abs > col_max[c] {
                    col_max[c] = abs;
                }
            }
        }
        stats.groups += cols;
        let scale_row = &mut scales[(row0 / g) * cols..(row0 / g) * cols + cols];
        for c in 0..cols {
            if col_max[c] == 0 {
                t_base[c] = 26; // all-zero group: sig = 0 everywhere
                scale_row[c] = 0.0;
            } else {
                let natural = (col_max[c] >> 23) as i32 - 127;
                let e = window.map_or(natural, |w| w.clamp(natural));
                t_base[c] = e + 1 - m as i32;
                scale_row[c] = pow2_f32(e - m as i32 + 1);
            }
        }
        for r in row0..row0 + rb {
            bits.seek((r * cols) as u64, 1);
            let row = &data[r * cols..(r + 1) * cols];
            let man_row = &mut mans[r * cols..(r + 1) * cols];
            for (c, (&v, o)) in row.iter().zip(man_row.iter_mut()).enumerate() {
                let raw = v.to_bits();
                let abs = raw & 0x7FFF_FFFF;
                let nonzero_mask = ((abs != 0) as u32).wrapping_neg();
                let sig = ((raw & 0x7F_FFFF) | 0x80_0000) & nonzero_mask;
                let p = (abs >> 23) as i32 - 150;
                let mag = round.round_aligned(sig, t_base[c] - p, bits).min(max_mag);
                zeros[c] += (mag == 0) as u32;
                saturated[c] += (mag == max_mag) as u32;
                let s = (raw as i32) >> 31;
                *o = ((mag as i32 ^ s) - s) as i8;
            }
        }
        row0 += rb;
    }
    stats.zeros += zeros.iter().map(|&z| z as u64).sum::<u64>();
    stats.saturated += saturated.iter().map(|&z| z as u64).sum::<u64>();
    PackedData {
        mantissas: mans,
        scales,
        stats,
    }
}

/// Number of columns staged per panel by the stochastic `AlongCol` packer
/// (matches the fake-quantize kernel's panel width).
const COL_PANEL: usize = 32;

/// Sequential-stochastic `AlongCol` packing via cache-friendly column
/// panels, exactly like the fake-quantize kernel's sequential stochastic
/// path: [`COL_PANEL`] columns are gathered into a contiguous transposed
/// scratch (streaming the matrix row-major), packed column by column, and
/// the mantissas scattered back row-major. Columns are consumed left to
/// right, rows top to bottom, so the noise stream sees the exact element
/// order of the strided reference. Only reached when `N::ORDER_FREE` is
/// false — counter mode takes [`pack_along_col_vertical`] instead.
fn pack_along_col_stochastic<R: RoundOp, N: NoiseSource>(
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: BfpFormat,
    round: &R,
    bits: &mut N,
    window: Option<ExponentWindow>,
) -> PackedData {
    let g = fmt.group_size();
    let m = fmt.mantissa_bits();
    let max_mag = fmt.max_magnitude() as u32;
    let mut mans = vec![0i8; rows * cols];
    let gpr = rows.div_ceil(g).max(1);
    let mut scales = vec![0.0f32; gpr * cols];
    let mut stats = QuantStats::default();
    let pw = COL_PANEL.min(cols.max(1));
    let mut gather = vec![0.0f32; rows * pw];
    let mut packed = vec![0i8; rows * pw];
    let mut col = 0;
    while col < cols {
        let pc = COL_PANEL.min(cols - col);
        for (r, row) in data.chunks(cols).enumerate() {
            for (c, &v) in row[col..col + pc].iter().enumerate() {
                gather[c * rows + r] = v;
            }
        }
        for c in 0..pc {
            let colbuf = &gather[c * rows..c * rows + rows];
            let manbuf = &mut packed[c * rows..c * rows + rows];
            for (gi, (chunk, out)) in colbuf.chunks(g).zip(manbuf.chunks_mut(g)).enumerate() {
                let scale =
                    pack_group_plain(chunk, m, max_mag, window, round, bits, &mut stats, out);
                scales[gi * cols + col + c] = scale;
            }
        }
        for (r, row) in mans.chunks_mut(cols).enumerate() {
            for (c, o) in row[col..col + pc].iter_mut().enumerate() {
                *o = packed[c * rows + r];
            }
        }
        col += pc;
    }
    PackedData {
        mantissas: mans,
        scales,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::fake_quantize_matrix_with;
    use crate::lfsr::{Lfsr16, RngBits};
    use rand::{Rng, SeedableRng};

    struct NoBits;
    impl BitSource for NoBits {
        fn next_bits(&mut self, _n: u32) -> u32 {
            unreachable!("deterministic rounding draws no bits")
        }
    }

    fn dequantize(p: &PackedData, rows: usize, cols: usize, axis: GroupAxis, g: usize) -> Vec<f32> {
        let gpr = cols.div_ceil(g).max(1);
        (0..rows * cols)
            .map(|idx| {
                let (i, j) = (idx / cols, idx % cols);
                let scale = match axis {
                    GroupAxis::AlongRow => p.scales[i * gpr + j / g],
                    GroupAxis::AlongCol => p.scales[(i / g) * cols + j],
                };
                p.mantissas[idx] as f32 * scale
            })
            .collect()
    }

    fn rand_data(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.gen_range(-4.0f32..4.0) * 2.0f32.powi(rng.gen_range(-12..6)))
            .collect()
    }

    #[test]
    fn packed_reconstruction_matches_fake_quantize_bitwise() {
        for (rows, cols) in [(1usize, 1usize), (3, 17), (16, 16), (7, 33)] {
            let data = rand_data(rows * cols, (rows * 31 + cols) as u64);
            for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
                for (fmt, rounding) in [
                    (BfpFormat::high(), Rounding::Nearest),
                    (BfpFormat::low(), Rounding::Truncate),
                    (BfpFormat::new(5, 7, 8).unwrap(), Rounding::Nearest),
                    (BfpFormat::high(), Rounding::STOCHASTIC8),
                    (BfpFormat::mid(), Rounding::Stochastic { noise_bits: 3 }),
                ] {
                    for windowed in [false, true] {
                        let mut want = data.clone();
                        let mut bits = Lfsr16::default();
                        fake_quantize_matrix_with(
                            &mut want, rows, cols, axis, fmt, rounding, &mut bits, windowed,
                        );
                        let mut bits2 = Lfsr16::default();
                        let packed = pack_matrix_with(
                            &data, rows, cols, axis, fmt, rounding, &mut bits2, windowed,
                        )
                        .expect("plain data must pack");
                        assert_eq!(bits, bits2, "bit streams must advance identically");
                        let got = dequantize(&packed, rows, cols, axis, fmt.group_size());
                        for (idx, (w, g)) in want.iter().zip(&got).enumerate() {
                            assert_eq!(
                                w.to_bits(),
                                g.to_bits(),
                                "({rows}x{cols}) {axis:?} {fmt} {rounding:?} win={windowed} @{idx}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stats_match_fake_quantize() {
        let data = rand_data(8 * 24, 5);
        for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
            let mut buf = data.clone();
            let want = fake_quantize_matrix_with(
                &mut buf,
                8,
                24,
                axis,
                BfpFormat::low(),
                Rounding::Nearest,
                &mut NoBits,
                false,
            );
            let packed = pack_matrix_with(
                &data,
                8,
                24,
                axis,
                BfpFormat::low(),
                Rounding::Nearest,
                &mut NoBits,
                false,
            )
            .unwrap();
            assert_eq!(packed.stats, want, "{axis:?}");
        }
    }

    #[test]
    fn non_plain_inputs_refuse_to_pack_without_drawing_bits() {
        for bad in [f32::NAN, f32::INFINITY, 1e-40f32] {
            let data = vec![1.0f32, bad, 0.5, -2.0];
            let mut bits = Lfsr16::default();
            let fresh = bits.clone();
            let got = pack_matrix_with(
                &data,
                2,
                2,
                GroupAxis::AlongRow,
                BfpFormat::high(),
                Rounding::STOCHASTIC8,
                &mut bits,
                false,
            );
            assert!(got.is_none(), "{bad} must force the fallback");
            assert_eq!(bits, fresh, "fallback must not consume noise bits");
        }
    }

    #[test]
    fn wide_mantissas_refuse_to_pack() {
        let data = vec![1.0f32; 16];
        let fmt = BfpFormat::new(16, 8, 3).unwrap();
        assert!(pack_matrix_with(
            &data,
            1,
            16,
            GroupAxis::AlongRow,
            fmt,
            Rounding::Nearest,
            &mut NoBits,
            false,
        )
        .is_none());
    }

    #[test]
    fn stochastic_packing_matches_reference_draw_order() {
        // A host RNG (not the LFSR) as the bit source: stream alignment must
        // hold for any BitSource, including AlongCol's column-major order.
        let data = rand_data(48 * 5, 9);
        for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
            let mut want = data.clone();
            let mut b1 = RngBits(rand::rngs::StdRng::seed_from_u64(3));
            fake_quantize_matrix_with(
                &mut want,
                48,
                5,
                axis,
                BfpFormat::high(),
                Rounding::STOCHASTIC8,
                &mut b1,
                false,
            );
            let mut b2 = RngBits(rand::rngs::StdRng::seed_from_u64(3));
            let packed = pack_matrix_with(
                &data,
                48,
                5,
                axis,
                BfpFormat::high(),
                Rounding::STOCHASTIC8,
                &mut b2,
                false,
            )
            .unwrap();
            let got = dequantize(&packed, 48, 5, axis, 16);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{axis:?}"
            );
        }
    }

    #[test]
    fn packed_invariants_hold_for_integer_kernels() {
        // The integer-domain qGEMM (fast_tensor, DESIGN.md §11) multiplies
        // mantissas as i8×i8 and multiplies scale pairs in f32. That is only
        // exact if |man| ≤ 127 (never -128) and every scale is an exact
        // power of two or 0.0 — pin both invariants across formats,
        // roundings and axes.
        let data = rand_data(24 * 24, 17);
        for axis in [GroupAxis::AlongRow, GroupAxis::AlongCol] {
            for (fmt, rounding) in [
                (BfpFormat::high(), Rounding::Nearest),
                (BfpFormat::mid(), Rounding::STOCHASTIC8),
                (BfpFormat::low(), Rounding::Truncate),
                (BfpFormat::new(7, 7, 5).unwrap(), Rounding::Nearest),
            ] {
                let mut bits = Lfsr16::default();
                let packed =
                    pack_matrix_with(&data, 24, 24, axis, fmt, rounding, &mut bits, true).unwrap();
                let cap = fmt.max_magnitude() as i16;
                assert!(cap <= 127);
                for &m in &packed.mantissas {
                    assert!((m as i16).abs() <= cap, "{axis:?} {fmt}: mantissa {m}");
                }
                for &s in &packed.scales {
                    let pow2 = s > 0.0 && s.to_bits() & 0x7F_FFFF == 0;
                    assert!(s == 0.0 || pow2, "{axis:?} {fmt}: scale {s} not 2^k or 0");
                }
            }
        }
    }

    #[test]
    fn all_zero_matrix_packs_to_zero_scales() {
        let data = vec![0.0f32; 32];
        let packed = pack_matrix_with(
            &data,
            2,
            16,
            GroupAxis::AlongRow,
            BfpFormat::high(),
            Rounding::Nearest,
            &mut NoBits,
            true,
        )
        .unwrap();
        assert!(packed.scales.iter().all(|&s| s == 0.0));
        assert!(packed.mantissas.iter().all(|&m| m == 0));
        assert_eq!(packed.stats.zeros, 32);
    }
}
