//! Quantization statistics, reproducing the analysis behind paper Fig 6
//! (distribution of the gap between each value's exponent and the BFP
//! shared exponent) and supporting the sensitivity study of Fig 18.

use crate::format::BfpFormat;
use crate::fp::exponent_of;
use crate::group::BfpGroup;

/// Histogram of `E_shared − E_i` gaps, as percentages.
///
/// Bin `k` holds the fraction (in percent) of values whose exponent sits
/// `k` binades below their group's shared exponent. The final bin
/// aggregates everything at `max_gap` or beyond — including exact zeros,
/// which are "fully shifted out" in hardware terms.
#[derive(Debug, Clone, PartialEq)]
pub struct GapHistogram {
    /// Percentage frequency per gap bin; `bins[k]` = share of values with
    /// gap `k` (last bin = `>= max_gap`). Sums to 100 (up to fp error).
    pub bins: Vec<f64>,
    /// Number of values accounted.
    pub count: u64,
    /// Mean gap (zeros counted at `max_gap`).
    pub mean_gap: f64,
}

/// Computes the exponent-gap histogram for `values` grouped contiguously in
/// groups of `group_size` (paper Fig 6; the paper uses g ∈ {8, 16, 32}).
///
/// Gaps of `max_gap` or more land in the final bin. Exact zeros carry no
/// exponent and are excluded (they quantize losslessly regardless of the
/// shared exponent — relevant for post-ReLU activations, roughly half
/// zeros).
///
/// # Panics
///
/// Panics if `group_size == 0` or `max_gap == 0`.
pub fn exponent_gap_histogram(values: &[f32], group_size: usize, max_gap: usize) -> GapHistogram {
    assert!(group_size > 0, "group size must be positive");
    assert!(max_gap > 0, "max_gap must be positive");
    let mut counts = vec![0u64; max_gap + 1];
    let mut total = 0u64;
    let mut gap_sum = 0f64;
    for chunk in values.chunks(group_size) {
        let shared = chunk.iter().filter_map(|&v| exponent_of(v)).max();
        let shared = match shared {
            Some(e) => e,
            None => continue, // all-zero group: nothing to histogram
        };
        for &v in chunk {
            if let Some(e) = exponent_of(v) {
                let gap = ((shared - e) as usize).min(max_gap);
                counts[gap] += 1;
                gap_sum += gap as f64;
                total += 1;
            }
        }
    }
    let bins = counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                100.0 * c as f64 / total as f64
            }
        })
        .collect();
    GapHistogram {
        bins,
        count: total,
        mean_gap: if total == 0 {
            0.0
        } else {
            gap_sum / total as f64
        },
    }
}

/// Mean-squared quantization error of nearest-rounding BFP at the given
/// format — the scalar summary used in sensitivity sweeps (Fig 18 support).
pub fn quantization_mse(values: &[f32], fmt: BfpFormat) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for chunk in values.chunks(fmt.group_size()) {
        let g = BfpGroup::quantize_nearest(chunk, fmt);
        for (i, &x) in chunk.iter().enumerate() {
            let d = g.value(i) as f64 - x as f64;
            sum += d * d;
        }
    }
    sum / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_scale_values_have_zero_gap() {
        let xs = vec![1.0f32, 1.5, 1.9, 1.2, 1.7, 1.1, 1.3, 1.8];
        let h = exponent_gap_histogram(&xs, 8, 16);
        assert!((h.bins[0] - 100.0).abs() < 1e-9);
        assert_eq!(h.count, 8);
        assert_eq!(h.mean_gap, 0.0);
    }

    #[test]
    fn octave_spaced_values_have_unit_gaps() {
        let xs = vec![1.0f32, 0.5, 0.25, 0.125];
        let h = exponent_gap_histogram(&xs, 4, 16);
        for k in 0..4 {
            assert!((h.bins[k] - 25.0).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn zeros_are_excluded() {
        let xs = vec![1.0f32, 0.0, 0.0, 0.0];
        let h = exponent_gap_histogram(&xs, 4, 8);
        assert_eq!(h.count, 1);
        assert!((h.bins[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn larger_groups_shift_mass_right() {
        // Paper Fig 6 observation: increasing g moves the distribution's
        // mass to larger gaps.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        // Log-normal-ish data: wide exponent spread, like gradients.
        let xs: Vec<f32> = (0..4096)
            .map(|_| {
                let e: f32 = rng.gen_range(-6.0..0.0);
                let s = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
                s * 2.0f32.powf(e)
            })
            .collect();
        let h8 = exponent_gap_histogram(&xs, 8, 16);
        let h32 = exponent_gap_histogram(&xs, 32, 16);
        assert!(
            h32.mean_gap > h8.mean_gap,
            "g=32 mean gap {} should exceed g=8 mean gap {}",
            h32.mean_gap,
            h8.mean_gap
        );
    }

    #[test]
    fn histogram_sums_to_100_percent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let xs: Vec<f32> = (0..1000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let h = exponent_gap_histogram(&xs, 16, 16);
        let sum: f64 = h.bins.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mse_decreases_with_mantissa_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let xs: Vec<f32> = (0..512).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut prev = f64::INFINITY;
        for m in [2u32, 3, 4, 5, 6] {
            let fmt = BfpFormat::new(16, m, 8).unwrap();
            let mse = quantization_mse(&xs, fmt);
            assert!(mse < prev, "m={m}: mse {mse} !< {prev}");
            prev = mse;
        }
    }

    #[test]
    fn mse_increases_with_group_size() {
        // Paper Fig 18: larger groups quantize worse at fixed m.
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let xs: Vec<f32> = (0..4096)
            .map(|_| {
                let e: f32 = rng.gen_range(-5.0..0.0);
                2.0f32.powf(e) * if rng.gen_bool(0.5) { -1.0 } else { 1.0 }
            })
            .collect();
        let mse8 = quantization_mse(&xs, BfpFormat::new(8, 4, 8).unwrap());
        let mse32 = quantization_mse(&xs, BfpFormat::new(32, 4, 8).unwrap());
        assert!(mse32 > mse8);
    }
}
