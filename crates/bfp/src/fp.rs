//! IEEE-754 helpers and generic minifloat quantization.
//!
//! These routines back the scalar floating-point formats of paper Fig 2:
//! bfloat16, FP16, TensorFloat-32 and HFP8 (1-4-3 forward / 1-5-2 backward),
//! all expressed as ["minifloats"](Minifloat) quantized from FP32 with
//! round-to-nearest-even, gradual underflow and saturation.

/// Returns the unbiased base-2 exponent `floor(log2(|x|))` of a finite,
/// non-zero `f32`, handling subnormals exactly; returns `None` for zero.
///
/// This is the quantity the BFP converter's comparator tree operates on
/// (paper Fig 14).
///
/// # Panics
///
/// Panics (debug assertions only) if `x` is NaN or infinite.
pub fn exponent_of(x: f32) -> Option<i32> {
    debug_assert!(
        x.is_finite(),
        "exponent_of requires a finite input, got {x}"
    );
    if x == 0.0 {
        return None;
    }
    let bits = x.abs().to_bits();
    let exp_field = (bits >> 23) & 0xFF;
    if exp_field == 0 {
        // Subnormal: value = mant * 2^-149 with mant in [1, 2^23).
        let mant = bits & 0x7F_FFFF;
        let top = 31 - mant.leading_zeros() as i32; // floor(log2(mant))
        Some(top - 149)
    } else {
        Some(exp_field as i32 - 127)
    }
}

/// A custom floating-point format with `exp_bits` exponent bits and
/// `man_bits` explicit mantissa (fraction) bits, quantized from FP32.
///
/// Covers the scalar formats of paper Fig 2. The bias is the usual
/// `2^(e-1) - 1`; overflow saturates to the largest finite value (DNN
/// training hardware clamps rather than producing infinities); underflow is
/// gradual (subnormals) down to zero; rounding is round-to-nearest-even.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Minifloat {
    /// Number of exponent bits.
    pub exp_bits: u32,
    /// Number of explicit fraction bits.
    pub man_bits: u32,
}

impl Minifloat {
    /// bfloat16: 8 exponent bits, 7 fraction bits.
    pub const BF16: Minifloat = Minifloat {
        exp_bits: 8,
        man_bits: 7,
    };
    /// IEEE FP16: 5 exponent bits, 10 fraction bits.
    pub const FP16: Minifloat = Minifloat {
        exp_bits: 5,
        man_bits: 10,
    };
    /// Nvidia TensorFloat-32: 8 exponent bits, 10 fraction bits.
    pub const TF32: Minifloat = Minifloat {
        exp_bits: 8,
        man_bits: 10,
    };
    /// HFP8 forward-pass format: 1-4-3.
    pub const HFP8_FWD: Minifloat = Minifloat {
        exp_bits: 4,
        man_bits: 3,
    };
    /// HFP8 backward-pass format: 1-5-2.
    pub const HFP8_BWD: Minifloat = Minifloat {
        exp_bits: 5,
        man_bits: 2,
    };

    /// Exponent bias, `2^(e-1) - 1`.
    pub fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Largest finite representable magnitude.
    pub fn max_value(&self) -> f32 {
        // DNN minifloats (bfloat16 aside) typically reserve the all-ones
        // exponent; we follow IEEE and reserve it, so the max exponent is
        // (2^e - 2) - bias.
        let max_exp = (1i32 << self.exp_bits) - 1 - self.bias() - 1;
        let frac = 2.0f64 - 2.0f64.powi(-(self.man_bits as i32));
        (frac * 2.0f64.powi(max_exp)) as f32
    }

    /// Smallest positive normal magnitude, `2^(1 - bias)`.
    pub fn min_normal(&self) -> f32 {
        2.0f64.powi(1 - self.bias()) as f32
    }
}

/// Quantizes `x` to the given [`Minifloat`] format and returns the value as
/// an `f32` ("fake quantization").
///
/// Non-finite inputs saturate to the signed largest finite value (NaN maps
/// to zero), mirroring saturating training hardware.
pub fn quantize_minifloat(x: f32, fmt: Minifloat) -> f32 {
    if x.is_nan() {
        return 0.0;
    }
    let sign = if x.is_sign_negative() { -1.0f32 } else { 1.0 };
    let ax = x.abs();
    if ax == 0.0 {
        return 0.0 * sign;
    }
    let max = fmt.max_value();
    if !ax.is_finite() || ax >= max {
        // Saturate (covers +/- inf and overflow after rounding check below).
        // Rounding could still push a slightly-smaller value over max; we
        // handle that after rounding too.
        if !ax.is_finite() {
            return sign * max;
        }
    }
    let bias = fmt.bias();
    let e = exponent_of(ax).expect("non-zero checked above");
    // Effective exponent of the quantization step. Normal numbers use
    // e - man_bits; subnormals freeze the exponent at (1 - bias).
    let min_normal_exp = 1 - bias;
    let step_exp = if e < min_normal_exp {
        min_normal_exp - fmt.man_bits as i32
    } else {
        e - fmt.man_bits as i32
    };
    let scaled = (ax as f64) * 2.0f64.powi(-step_exp);
    let rounded = round_half_even(scaled);
    if rounded == 0.0 {
        return 0.0 * sign;
    }
    let q = rounded * 2.0f64.powi(step_exp);
    let q = q as f32;
    if q > max {
        sign * max
    } else {
        sign * q
    }
}

fn round_half_even(x: f64) -> f64 {
    let floor = x.floor();
    let frac = x - floor;
    let round_up = frac > 0.5 || (frac == 0.5 && (floor as i64) % 2 != 0);
    if round_up {
        floor + 1.0
    } else {
        floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_normals() {
        assert_eq!(exponent_of(1.0), Some(0));
        assert_eq!(exponent_of(1.5), Some(0));
        assert_eq!(exponent_of(2.0), Some(1));
        assert_eq!(exponent_of(0.75), Some(-1));
        assert_eq!(exponent_of(-8.0), Some(3));
        assert_eq!(exponent_of(0.0), None);
        assert_eq!(exponent_of(-0.0), None);
    }

    #[test]
    fn exponent_of_subnormals() {
        let min_sub = f32::from_bits(1); // 2^-149
        assert_eq!(exponent_of(min_sub), Some(-149));
        let big_sub = f32::from_bits(0x007F_FFFF); // just below 2^-126
        assert_eq!(exponent_of(big_sub), Some(-127));
        assert_eq!(exponent_of(f32::MIN_POSITIVE), Some(-126));
    }

    #[test]
    fn bf16_roundtrip_of_representable() {
        // 1.5 has a short mantissa, exactly representable in bf16.
        assert_eq!(quantize_minifloat(1.5, Minifloat::BF16), 1.5);
        assert_eq!(quantize_minifloat(-3.25, Minifloat::BF16), -3.25);
    }

    #[test]
    fn bf16_matches_bit_truncation_with_rne() {
        // Reference: round f32 to bf16 via bit ops with round-to-nearest-even.
        fn bf16_ref(x: f32) -> f32 {
            let bits = x.to_bits();
            let lsb = (bits >> 16) & 1;
            let rounded = bits.wrapping_add(0x7FFF + lsb);
            f32::from_bits(rounded & 0xFFFF_0000)
        }
        for &x in &[
            0.1f32,
            std::f32::consts::PI,
            -std::f32::consts::E,
            1e-8,
            1e8,
            123.456,
            -0.0007,
        ] {
            let got = quantize_minifloat(x, Minifloat::BF16);
            let want = bf16_ref(x);
            assert_eq!(got.to_bits(), want.to_bits(), "x={x}");
        }
    }

    #[test]
    fn fp16_saturates_at_65504() {
        assert_eq!(quantize_minifloat(70000.0, Minifloat::FP16), 65504.0);
        assert_eq!(quantize_minifloat(-70000.0, Minifloat::FP16), -65504.0);
        assert_eq!(quantize_minifloat(f32::INFINITY, Minifloat::FP16), 65504.0);
    }

    #[test]
    fn fp16_subnormal_handling() {
        // FP16 min subnormal is 2^-24; half of it rounds to zero (ties-even).
        let tiny = 2.0f32.powi(-25);
        assert_eq!(quantize_minifloat(tiny, Minifloat::FP16), 0.0);
        let sub = 2.0f32.powi(-24);
        assert_eq!(quantize_minifloat(sub, Minifloat::FP16), 2.0f32.powi(-24));
    }

    #[test]
    fn hfp8_formats_have_expected_ranges() {
        // 1-4-3: bias 7, max = (2 - 2^-3) * 2^7 = 240.
        assert_eq!(Minifloat::HFP8_FWD.max_value(), 240.0);
        // 1-5-2: bias 15, max exponent 15, max = (2 - 2^-2) * 2^15 = 57344.
        assert_eq!(Minifloat::HFP8_BWD.max_value(), 57344.0);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(quantize_minifloat(f32::NAN, Minifloat::FP16), 0.0);
    }

    #[test]
    fn quantization_is_monotone_nondecreasing() {
        let fmt = Minifloat::HFP8_FWD;
        let mut prev = quantize_minifloat(-300.0, fmt);
        let mut x = -300.0f32;
        while x < 300.0 {
            let q = quantize_minifloat(x, fmt);
            assert!(q >= prev, "monotonicity violated at {x}: {q} < {prev}");
            prev = q;
            x += 0.37;
        }
    }
}
