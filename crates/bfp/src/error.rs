use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`BfpFormat`](crate::BfpFormat).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Group size was zero.
    ZeroGroupSize,
    /// Mantissa bitwidth outside the supported `1..=16` range.
    MantissaBits(u32),
    /// Exponent bitwidth outside the supported `1..=8` range.
    ExponentBits(u32),
    /// Mantissa bitwidth not a multiple of the 2-bit chunk size (required
    /// for chunked storage/arithmetic only).
    NotChunkAligned(u32),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::ZeroGroupSize => write!(f, "BFP group size must be at least 1"),
            FormatError::MantissaBits(m) => {
                write!(
                    f,
                    "BFP mantissa bitwidth {m} outside supported range 1..=16"
                )
            }
            FormatError::ExponentBits(e) => {
                write!(f, "BFP exponent bitwidth {e} outside supported range 1..=8")
            }
            FormatError::NotChunkAligned(m) => {
                write!(
                    f,
                    "mantissa bitwidth {m} is not a multiple of the 2-bit chunk size"
                )
            }
        }
    }
}

impl Error for FormatError {}
