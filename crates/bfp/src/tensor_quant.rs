//! Matrix-level grouped quantization and the FAST relative-improvement
//! statistic `r(X)` (paper Eq. 2).
//!
//! DNN tensors are quantized in groups of `g` along the *reduction*
//! dimension of the GEMM that will consume them, matching how a systolic
//! fMAC cell ingests operand vectors. "Fake quantization" writes the
//! dequantized BFP values back over the f32 buffer; because products of
//! two ≤16-bit mantissas are exact in f32 and hardware accumulates in FP32,
//! a fake-quantized f32 GEMM is bit-faithful to the fMAC pipeline (see
//! `dot::tests::chunked_dot_is_bit_identical_to_direct_dot`).
//!
//! The `dyn`-sourced entry points here draw stochastic noise in element
//! order (the paper's serialized LFSR semantics). For order-independent,
//! worker-shardable stochastic rounding keyed by `(seed, element offset)`,
//! see [`crate::kernel::fake_quantize_slice_counter`] and
//! [`crate::kernel::fake_quantize_matrix_counter`] (DESIGN.md §12).

use crate::format::BfpFormat;
use crate::group::{BfpGroup, ExponentWindow};
use crate::lfsr::BitSource;
use crate::rounding::Rounding;

/// Which way quantization groups run through a row-major matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAxis {
    /// Groups are consecutive elements *within a row* (along the column
    /// index) — the layout for the left GEMM operand `A (M×K)`.
    AlongRow,
    /// Groups are consecutive elements *within a column* (along the row
    /// index) — the layout for the right GEMM operand `B (K×N)`.
    AlongCol,
}

/// Aggregate statistics from a quantization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantStats {
    /// Number of BFP groups formed.
    pub groups: usize,
    /// Values whose mantissa saturated at `2^m - 1`.
    pub saturated: u64,
    /// Values quantized to exactly zero (underflow / shifted out).
    pub zeros: u64,
}

impl QuantStats {
    /// Folds another pass's counters into this one (the accumulation the
    /// quantized-GEMM plan performs across operand preparations).
    pub fn merge(&mut self, other: QuantStats) {
        self.groups += other.groups;
        self.saturated += other.saturated;
        self.zeros += other.zeros;
    }
}

/// Fake-quantizes a contiguous slice in groups of `fmt.group_size()`,
/// overwriting each value with its BFP reconstruction. The final group may
/// be shorter than `g`.
///
/// If `window` is `Some`, the shared exponents are clamped into the `e`-bit
/// window (per-tensor reference model; see [`ExponentWindow`]).
///
/// Thin `dyn`-sourced wrapper over the integer batch kernel; callers with a
/// concrete [`BitSource`] should prefer
/// [`kernel::fake_quantize_slice_with`](crate::kernel::fake_quantize_slice_with)
/// to monomorphize the stochastic-rounding draw.
pub fn fake_quantize_slice(
    values: &mut [f32],
    fmt: BfpFormat,
    rounding: Rounding,
    bits: &mut dyn BitSource,
    window: Option<ExponentWindow>,
) -> QuantStats {
    crate::kernel::fake_quantize_slice_with(values, fmt, rounding, bits, window)
}

/// Fake-quantizes a row-major `rows × cols` matrix with groups running
/// along `axis`. When `use_window` is set, an [`ExponentWindow`] with the
/// matrix-wide max exponent models the finite `e`-bit exponent field.
///
/// Thin `dyn`-sourced wrapper over the integer batch kernel; callers with a
/// concrete [`BitSource`] should prefer
/// [`kernel::fake_quantize_matrix_with`](crate::kernel::fake_quantize_matrix_with).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's converter signature
pub fn fake_quantize_matrix(
    data: &mut [f32],
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    fmt: BfpFormat,
    rounding: Rounding,
    bits: &mut dyn BitSource,
    use_window: bool,
) -> QuantStats {
    crate::kernel::fake_quantize_matrix_with(
        data, rows, cols, axis, fmt, rounding, bits, use_window,
    )
}

/// Computes the FAST relative improvement `r(X)` of paper Eq. 2:
///
/// ```text
/// r(X) = Σ |BFP(Xn,4) − BFP(Xn,2)| / Σ |BFP(Xn,2)|
/// ```
///
/// As in the hardware (Section V-D), the 2-bit quantization is the 4-bit
/// quantization with its low-order chunk discarded, so the numerator is the
/// total magnitude carried by the discarded chunks.
///
/// Returns `0.0` for an all-zero tensor and `f32::INFINITY` when the 2-bit
/// representation is entirely zero but the 4-bit one is not (the improvement
/// from the extra bits is then unbounded).
pub fn relative_improvement(values: &[f32], group_size: usize) -> f32 {
    assert!(group_size > 0, "group size must be positive");
    let fmt4 = BfpFormat::new(group_size, 4, 8).expect("static format is valid");
    let mut numer = 0.0f64;
    let mut denom = 0.0f64;
    for chunk in values.chunks(group_size) {
        let g4 = BfpGroup::quantize_nearest(chunk, fmt4);
        // ulp of the 4-bit representation: 2^(E - 3).
        let ulp4 = g4.scale();
        for &m in g4.mantissas() {
            let mag = m.unsigned_abs();
            let low = (mag & 0b11) as f64;
            let high = (mag >> 2) as f64;
            numer += low * ulp4;
            denom += high * 4.0 * ulp4;
        }
    }
    if denom == 0.0 {
        if numer == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        (numer / denom) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::RngBits;
    use rand::{Rng, SeedableRng};

    struct NoBits;
    impl BitSource for NoBits {
        fn next_bits(&mut self, _n: u32) -> u32 {
            unreachable!()
        }
    }

    #[test]
    fn slice_quantization_reduces_to_group_quantization() {
        let fmt = BfpFormat::new(4, 4, 8).unwrap();
        let mut xs = vec![1.0f32, 0.5, 0.25, 0.125, 8.0, 4.0, 2.0, 1.0];
        let expect: Vec<f32> = xs
            .chunks(4)
            .flat_map(|c| BfpGroup::quantize_nearest(c, fmt).dequantize())
            .collect();
        fake_quantize_slice(&mut xs, fmt, Rounding::Nearest, &mut NoBits, None);
        assert_eq!(xs, expect);
    }

    #[test]
    fn partial_final_group_is_handled() {
        let fmt = BfpFormat::new(4, 4, 8).unwrap();
        let mut xs = vec![1.0f32; 7];
        let stats = fake_quantize_slice(&mut xs, fmt, Rounding::Nearest, &mut NoBits, None);
        assert_eq!(stats.groups, 2);
        assert!(xs.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn along_col_groups_match_transposed_along_row() {
        let fmt = BfpFormat::new(4, 3, 8).unwrap();
        let rows = 8;
        let cols = 5;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-2.0f32..2.0))
            .collect();

        let mut a = data.clone();
        fake_quantize_matrix(
            &mut a,
            rows,
            cols,
            GroupAxis::AlongCol,
            fmt,
            Rounding::Nearest,
            &mut NoBits,
            false,
        );

        // Transpose, quantize along rows, transpose back.
        let mut t = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = data[r * cols + c];
            }
        }
        fake_quantize_matrix(
            &mut t,
            cols,
            rows,
            GroupAxis::AlongRow,
            fmt,
            Rounding::Nearest,
            &mut NoBits,
            false,
        );
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(a[r * cols + c], t[c * rows + r]);
            }
        }
    }

    #[test]
    fn stats_count_zeros_and_saturation() {
        let fmt = BfpFormat::new(4, 2, 8).unwrap();
        // Group: max 1.0 -> scale 2; 1.0->2, 1.6->3.2->3(sat),
        // 0.1->0.2->0 (zero), 0.5->1.
        let mut xs = vec![1.0f32, 1.6, 0.1, 0.5];
        let stats = fake_quantize_slice(&mut xs, fmt, Rounding::Nearest, &mut NoBits, None);
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.saturated, 1);
        assert_eq!(stats.zeros, 1);
    }

    #[test]
    fn relative_improvement_zero_for_exactly_representable() {
        // Values already exact at m=2 have no low-chunk mass.
        let xs = vec![1.0f32, 0.5, -1.0, 0.5, 1.0, -0.5, 1.0, 0.5];
        let r = relative_improvement(&xs, 8);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn relative_improvement_positive_for_fine_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let xs: Vec<f32> = (0..64).map(|_| rng.gen_range(0.5f32..1.0)).collect();
        let r = relative_improvement(&xs, 16);
        assert!(r > 0.0 && r.is_finite());
        // The discarded chunk is at most 3 ulps against a denominator of at
        // least 4 ulps per nonzero value, so r is bounded well below 1 for
        // same-scale data.
        assert!(r < 0.75, "r = {r}");
    }

    #[test]
    fn relative_improvement_matches_direct_eq2_evaluation() {
        // Cross-check against a literal evaluation of Eq. 2 using
        // truncate_to(2) as BFP(X, 2).
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let xs: Vec<f32> = (0..48).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let g = 16;
        let fmt4 = BfpFormat::new(g, 4, 8).unwrap();
        let mut numer = 0.0f64;
        let mut denom = 0.0f64;
        for chunk in xs.chunks(g) {
            let q4 = BfpGroup::quantize_nearest(chunk, fmt4);
            let q2 = q4.truncate_to(2);
            for i in 0..q4.len() {
                numer += (q4.value(i) as f64 - q2.value(i) as f64).abs();
                denom += (q2.value(i) as f64).abs();
            }
        }
        let want = (numer / denom) as f32;
        let got = relative_improvement(&xs, g);
        assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }

    #[test]
    fn relative_improvement_infinite_when_low_precision_is_blind() {
        // All mass in the low chunk: magnitudes quantize to <4 at m=4 within
        // a group dominated by one large value.
        let xs = vec![1.0f32, 0.05, 0.05, 0.05];
        // m=4: scale 8; 0.05*8=0.4 -> 0; 1.0 -> 8 -> high chunk 2 -> finite.
        let r = relative_improvement(&xs, 4);
        assert!(r.is_finite());
        // Construct a truly blind case: single tiny group far below 4 ulps.
        let ys = vec![0.2f32, 0.2, 0.2, 0.3];
        // max exp = -2 (0.3 -> [0.25,0.5)); scale = 2^(3-(-2)) = 32;
        // 0.3*32 = 9.6 -> 10 -> high chunk 2: still finite. Denominator only
        // vanishes when *all* magnitudes < 4, i.e. all values < 4 ulps.
        let r2 = relative_improvement(&ys, 4);
        assert!(r2.is_finite());
        let zs = vec![0.26f32, 0.14, 0.07, 0.03];
        // max exp -2, scale 32: mags 8,4,2,1 -> high chunks 2,1,0,0: finite.
        assert!(relative_improvement(&zs, 4).is_finite());
        // All-zero input.
        assert_eq!(relative_improvement(&[0.0; 8], 4), 0.0);
    }

    #[test]
    fn stochastic_matrix_quantization_is_reproducible_per_seed() {
        let fmt = BfpFormat::new(8, 4, 8).unwrap();
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let run = |seed: u64| {
            let mut data = xs.clone();
            let mut bits = RngBits(rand::rngs::StdRng::seed_from_u64(seed));
            fake_quantize_matrix(
                &mut data,
                8,
                8,
                GroupAxis::AlongRow,
                fmt,
                Rounding::STOCHASTIC8,
                &mut bits,
                false,
            );
            data
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
