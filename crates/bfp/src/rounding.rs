//! Rounding modes for FP → BFP mantissa conversion (paper Fig 4c/4d and
//! Section III-D).

use crate::lfsr::BitSource;

/// How aligned mantissas are rounded to `m` bits during BFP conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// Round to nearest (half away from zero), the hardware-cheap
    /// "add 0.5 ulp then truncate" rule. Used for weights and activations.
    Nearest,
    /// Truncate toward zero (drop low-order bits), paper Fig 4d without 4c.
    Truncate,
    /// Stochastic rounding: add a uniform random value in `[0, 1)` quantized
    /// to `noise_bits` bits, then truncate (paper Fig 4c + 4d). The paper's
    /// converter uses 8-bit LFSR streams, i.e. `noise_bits = 8`, giving the
    /// `q = 2^8` SR precision of Theorem 1's analysis.
    Stochastic {
        /// Number of random bits added below the truncation point.
        noise_bits: u32,
    },
}

impl Rounding {
    /// The paper's gradient-rounding configuration: 8 noise bits.
    pub const STOCHASTIC8: Rounding = Rounding::Stochastic { noise_bits: 8 };

    /// Rounds a non-negative scaled mantissa to an integer magnitude.
    ///
    /// `scaled` is the value expressed in units of the target LSB (so the
    /// rounding decision interval is `[floor(scaled), floor(scaled)+1]`).
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `scaled` is negative or non-finite.
    pub fn round(self, scaled: f64, bits: &mut dyn BitSource) -> i64 {
        debug_assert!(
            scaled.is_finite() && scaled >= 0.0,
            "bad scaled mantissa {scaled}"
        );
        match self {
            Rounding::Nearest => (scaled + 0.5).floor() as i64,
            Rounding::Truncate => scaled.floor() as i64,
            Rounding::Stochastic { noise_bits } => {
                assert!(
                    (1..=31).contains(&noise_bits),
                    "noise_bits must be in 1..=31"
                );
                let q = 1u64 << noise_bits;
                let noise = bits.next_bits(noise_bits) as f64 / q as f64;
                (scaled + noise).floor() as i64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::{Lfsr16, RngBits};
    use rand::SeedableRng;

    struct NoBits;
    impl BitSource for NoBits {
        fn next_bits(&mut self, _n: u32) -> u32 {
            panic!("deterministic rounding must not draw random bits")
        }
    }

    #[test]
    fn nearest_rounds_half_up() {
        let mut nb = NoBits;
        assert_eq!(Rounding::Nearest.round(2.4, &mut nb), 2);
        assert_eq!(Rounding::Nearest.round(2.5, &mut nb), 3);
        assert_eq!(Rounding::Nearest.round(2.6, &mut nb), 3);
        assert_eq!(Rounding::Nearest.round(0.0, &mut nb), 0);
    }

    #[test]
    fn truncate_floors() {
        let mut nb = NoBits;
        assert_eq!(Rounding::Truncate.round(2.999, &mut nb), 2);
        assert_eq!(Rounding::Truncate.round(2.0, &mut nb), 2);
    }

    #[test]
    fn stochastic_expectation_matches_input() {
        // Theorem 1's premise: E[SR(x)] == x (up to the 2^-k noise
        // granularity). Empirically verify for x = 2/3 as in paper Fig 8.
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(42));
        let x = 2.0 / 3.0;
        let n = 200_000;
        let sum: i64 = (0..n)
            .map(|_| Rounding::STOCHASTIC8.round(x, &mut src))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - x).abs() < 0.01, "mean {mean} differs from {x}");
    }

    #[test]
    fn stochastic_with_lfsr_is_unbiased_enough() {
        let mut lfsr = Lfsr16::new(0x5EED);
        let x = 0.25;
        let n = 100_000;
        let sum: i64 = (0..n)
            .map(|_| Rounding::STOCHASTIC8.round(x, &mut lfsr))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - x).abs() < 0.02, "mean {mean} differs from {x}");
    }

    #[test]
    fn stochastic_never_rounds_beyond_neighbours() {
        let mut src = RngBits(rand::rngs::StdRng::seed_from_u64(1));
        for i in 0..1000 {
            let x = i as f64 * 0.01;
            let r = Rounding::STOCHASTIC8.round(x, &mut src);
            assert!(r == x.floor() as i64 || r == x.floor() as i64 + 1);
        }
    }
}
