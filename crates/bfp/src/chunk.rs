//! 2-bit-chunk mantissa storage (paper Fig 15) enabling variable-precision
//! arithmetic (paper Fig 13).
//!
//! Mantissas are split into 2-bit chunks, high-order chunk first. All chunks
//! of a given index across the group live in one memory entry so the fMAC
//! can stream one pass per chunk pair. Each stored chunk carries a
//! replicated sign bit (3 bits per chunk per value, Section V-D).

use crate::error::FormatError;
use crate::format::BfpFormat;
use crate::group::BfpGroup;

/// A BFP group stored in the chunked layout of paper Fig 15.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedGroup {
    format: BfpFormat,
    shared_exponent: i32,
    signs: Vec<bool>,
    /// `chunks[c][i]` is the 2-bit chunk `c` (0 = most significant) of the
    /// magnitude of value `i`.
    chunks: Vec<Vec<u8>>,
}

impl ChunkedGroup {
    /// Splits a [`BfpGroup`] into 2-bit chunks.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotChunkAligned`] if the mantissa bitwidth is
    /// odd (the FAST hardware always uses 2-bit multiples, m ∈ {2, 4, ...}).
    pub fn from_group(group: &BfpGroup) -> Result<Self, FormatError> {
        let format = group.format();
        let m = format.mantissa_bits();
        if !m.is_multiple_of(2) {
            return Err(FormatError::NotChunkAligned(m));
        }
        let n_chunks = (m / 2) as usize;
        let n = group.len();
        let mut signs = Vec::with_capacity(n);
        let mut chunks = vec![vec![0u8; n]; n_chunks];
        for (i, &mant) in group.mantissas().iter().enumerate() {
            signs.push(mant < 0);
            let mag = mant.unsigned_abs();
            for (c, chunk_row) in chunks.iter_mut().enumerate() {
                let shift = m - 2 * (c as u32 + 1);
                chunk_row[i] = ((mag >> shift) & 0b11) as u8;
            }
        }
        Ok(ChunkedGroup {
            format,
            shared_exponent: group.shared_exponent(),
            signs,
            chunks,
        })
    }

    /// Reassembles the full-precision [`BfpGroup`].
    pub fn to_group(&self) -> BfpGroup {
        let m = self.format.mantissa_bits();
        let n = self.signs.len();
        let mut mantissas = Vec::with_capacity(n);
        for i in 0..n {
            let mut mag: i32 = 0;
            for (c, chunk_row) in self.chunks.iter().enumerate() {
                let shift = m - 2 * (c as u32 + 1);
                mag |= (chunk_row[i] as i32) << shift;
            }
            mantissas.push(if self.signs[i] { -mag } else { mag });
        }
        BfpGroup::from_parts(self.format, self.shared_exponent, mantissas)
    }

    /// Discards the low-order chunk, halving precision (Section V-D: "if
    /// Algorithm 1 selects the 2-bit mantissa, then the low-order 2-bit
    /// chunk is discarded").
    ///
    /// # Panics
    ///
    /// Panics if the group has only one chunk.
    pub fn drop_low_chunk(&self) -> ChunkedGroup {
        assert!(self.chunks.len() > 1, "cannot drop the only mantissa chunk");
        let m = self.format.mantissa_bits() - 2;
        let format = self
            .format
            .with_mantissa_bits(m)
            .expect("narrowed format is valid");
        ChunkedGroup {
            format,
            shared_exponent: self.shared_exponent,
            signs: self.signs.clone(),
            chunks: self.chunks[..self.chunks.len() - 1].to_vec(),
        }
    }

    /// The format of the stored group.
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Shared (unbiased) exponent `E`.
    pub fn shared_exponent(&self) -> i32 {
        self.shared_exponent
    }

    /// Number of values in the group.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// Whether the group holds no values.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// Number of 2-bit chunks per mantissa.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Sign bits (`true` = negative).
    pub fn signs(&self) -> &[bool] {
        &self.signs
    }

    /// The 2-bit chunks at index `c` (0 = most significant) for all values.
    ///
    /// # Panics
    ///
    /// Panics if `c >= chunk_count()`.
    pub fn chunk(&self, c: usize) -> &[u8] {
        &self.chunks[c]
    }

    /// Packs the group into memory entries following Fig 15: one entry per
    /// chunk index, each value contributing 3 bits (sign + 2-bit chunk),
    /// plus a separate exponent entry. Returns `(exponent_entry, entries)`
    /// where each entry is little-endian packed bytes.
    pub fn memory_image(&self) -> (u8, Vec<Vec<u8>>) {
        let exp_entry = (self.shared_exponent & ((1i32 << self.format.exponent_bits()) - 1)) as u8;
        let entries = self
            .chunks
            .iter()
            .map(|chunk_row| {
                let mut bits: Vec<bool> = Vec::with_capacity(chunk_row.len() * 3);
                for (i, &ch) in chunk_row.iter().enumerate() {
                    bits.push(self.signs[i]);
                    bits.push(ch & 0b10 != 0);
                    bits.push(ch & 0b01 != 0);
                }
                pack_bits(&bits)
            })
            .collect();
        (exp_entry, entries)
    }

    /// Total storage bits for this group under the Fig 15 layout.
    pub fn storage_bits(&self) -> u64 {
        self.format.exponent_bits() as u64 + (self.len() as u64) * (self.chunk_count() as u64) * 3
    }
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(g: usize, m: u32) -> BfpFormat {
        BfpFormat::new(g, m, 3).unwrap()
    }

    #[test]
    fn chunk_roundtrip_m4() {
        let g = BfpGroup::from_parts(fmt(4, 4), 2, vec![15, -9, 4, 0]);
        let c = ChunkedGroup::from_group(&g).unwrap();
        assert_eq!(c.chunk_count(), 2);
        // 15 = 0b1111 -> high chunk 0b11, low chunk 0b11.
        assert_eq!(c.chunk(0)[0], 0b11);
        assert_eq!(c.chunk(1)[0], 0b11);
        // 9 = 0b1001 -> high 0b10, low 0b01; negative.
        assert_eq!(c.chunk(0)[1], 0b10);
        assert_eq!(c.chunk(1)[1], 0b01);
        assert!(c.signs()[1]);
        assert_eq!(c.to_group(), g);
    }

    #[test]
    fn chunk_roundtrip_m2() {
        let g = BfpGroup::from_parts(fmt(3, 2), -1, vec![3, -2, 1]);
        let c = ChunkedGroup::from_group(&g).unwrap();
        assert_eq!(c.chunk_count(), 1);
        assert_eq!(c.to_group(), g);
    }

    #[test]
    fn odd_mantissa_width_rejected() {
        let g = BfpGroup::from_parts(fmt(2, 3), 0, vec![7, -7]);
        assert_eq!(
            ChunkedGroup::from_group(&g).unwrap_err(),
            FormatError::NotChunkAligned(3)
        );
    }

    #[test]
    fn drop_low_chunk_equals_group_truncate() {
        let g = BfpGroup::from_parts(fmt(4, 4), 1, vec![13, -6, 7, 2]);
        let dropped = ChunkedGroup::from_group(&g)
            .unwrap()
            .drop_low_chunk()
            .to_group();
        assert_eq!(dropped, g.truncate_to(2));
    }

    #[test]
    fn memory_image_matches_fig15_example() {
        // Paper Fig 15: g=2, m=4, exponent 0b001, mantissas 0b1001 and
        // -0b0110 (sign bits shown separately in the figure).
        let f = BfpFormat::new(2, 4, 3).unwrap();
        let g = BfpGroup::from_parts(f, 1, vec![0b1001, -0b0110]);
        let c = ChunkedGroup::from_group(&g).unwrap();
        let (exp, entries) = c.memory_image();
        assert_eq!(exp, 0b001);
        assert_eq!(entries.len(), 2); // first chunks entry, second chunks entry
        assert_eq!(c.chunk(0), &[0b10, 0b01]);
        assert_eq!(c.chunk(1), &[0b01, 0b10]);
    }

    #[test]
    fn storage_bits_matches_format_accounting() {
        let f = BfpFormat::new(16, 4, 3).unwrap();
        let g = BfpGroup::from_parts(f, 0, vec![1; 16]);
        let c = ChunkedGroup::from_group(&g).unwrap();
        assert_eq!(c.storage_bits(), f.storage_bits_per_group());
    }
}
