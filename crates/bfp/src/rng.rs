//! Counter-based stochastic-rounding noise: order-independent draws keyed
//! by `(seed, element offset)`.
//!
//! The paper's converter serializes stochastic rounding through a single
//! [`Lfsr16`](crate::Lfsr16) stream, so the noise an element receives
//! depends on *when* it is visited — AlongCol quantization must stage
//! column panels to preserve the reference element order, and SR can never
//! shard across workers. [`CounterRng`] removes the ordering dependency:
//! the noise for the element at linear offset `i` is a pure function
//! `mix(seed, i)` (the `tl.randint(seed, offsets)` pattern of GPU SR
//! kernels), so any element's draw is computable at any time, in any
//! order, on any worker — stochastic rounding becomes embarrassingly
//! parallel, and checkpointing the generator shrinks to `(seed, step)`.
//!
//! Construction: a SplitMix64-style finalizer mixes the seed with the
//! offset's *block* index, and consecutive offsets extract disjoint
//! `n`-bit lanes of the mixed 64-bit word — one 3-multiply mix per
//! `⌊64/n⌋`-ish elements (8 for the paper's 8-bit gradient noise), which
//! is what lets counter-mode SR approach nearest-rounding cost even
//! single-threaded (DESIGN.md §12).

use crate::kernel::NoiseSource;

/// Which noise source drives stochastic rounding.
///
/// Selected per [`Session`] (env default `FAST_SR_MODE=counter`), per layer,
/// or per `CompiledModel` in the `fast_nn`/`fast_serve` crates, mirroring
/// the execution-mode plumbing of DESIGN.md §11.
///
/// [`Session`]: ../fast_nn/struct.Session.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SrMode {
    /// The paper-fidelity serialized LFSR stream (Fig 14): draws follow the
    /// reference element order, zeros never draw. The default.
    #[default]
    Lfsr,
    /// Counter-based noise keyed by `(seed, element offset)`: bitwise
    /// order-independent and parallel across workers (DESIGN.md §12).
    Counter,
}

/// A stateless counter-based noise generator: `bits_at(offset, n)` is a
/// pure function of `(seed, offset, n)`.
///
/// ```
/// use fast_bfp::CounterRng;
///
/// let rng = CounterRng::new(42);
/// // Draws are positional: the same offset always yields the same noise,
/// // in any order.
/// let (a, b) = (rng.bits_at(7, 8), rng.bits_at(3, 8));
/// assert_eq!(rng.bits_at(3, 8), b);
/// assert_eq!(rng.bits_at(7, 8), a);
/// assert!(a < 256 && b < 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    seed: u64,
}

/// SplitMix64 finalizer over `seed ⊕ (block · φ)`: three 64-bit multiplies
/// and xor-shifts, statistically strong enough for rounding noise (the
/// uniformity and mean-unbiasedness gates in `crates/bfp/tests/counter_sr.rs`
/// hold with wide margins).
#[inline(always)]
fn mix64(seed: u64, block: u64) -> u64 {
    let mut z = seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `log2` of the number of `n`-bit lanes packed into one mixed word:
/// `2^⌊log2(64/n)⌋` lanes, so `lanes · n ≤ 64` always holds.
#[inline(always)]
fn lane_shift_for(n: u32) -> u32 {
    31 - (64 / n).leading_zeros()
}

impl CounterRng {
    /// Creates a generator from a seed. Every seed (including zero) is a
    /// valid, distinct stream.
    pub fn new(seed: u64) -> Self {
        CounterRng { seed }
    }

    /// The seed — together with a draw cursor this is the generator's
    /// entire checkpointable state.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `n`-bit (`1..=32`) noise draw for the element at linear
    /// `offset`, in the low bits of the result. Pure: independent of call
    /// order, and `2^⌊log2(64/n)⌋` consecutive offsets share one mixed word
    /// (disjoint bit lanes).
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `1..=32`.
    #[inline]
    pub fn bits_at(&self, offset: u64, n: u32) -> u32 {
        assert!(
            (1..=32).contains(&n),
            "bits_at supports 1..=32 bits, got {n}"
        );
        let shift = lane_shift_for(n);
        let word = mix64(self.seed, offset >> shift);
        let lane = (offset as u32) & ((1u32 << shift) - 1);
        ((word >> (lane * n)) & ((1u64 << n) - 1)) as u32
    }
}

/// The kernel-facing cursor over a [`CounterRng`]: draws `bits_at(pos, n)`
/// and advances `pos` by the configured stride, so the quantization loops'
/// sequential draw pattern lands each element exactly on its own offset.
/// Caches the current mixed word (consecutive offsets share it), which is
/// what makes counter-mode SR nearly free per element.
#[derive(Debug, Clone)]
pub(crate) struct CounterBits {
    rng: CounterRng,
    origin: u64,
    pos: u64,
    stride: u64,
    cached_block: u64,
    cached_word: u64,
}

impl CounterBits {
    /// A cursor whose local offsets are biased by `origin` — the pass-level
    /// base a caller reserved from its draw counter.
    pub(crate) fn new(rng: CounterRng, origin: u64) -> Self {
        CounterBits {
            rng,
            origin,
            pos: origin,
            stride: 1,
            // Real blocks are `offset >> shift < 2^63`, so MAX never
            // collides; the cache is born valid for that sentinel.
            cached_block: u64::MAX,
            cached_word: 0,
        }
    }
}

impl NoiseSource for CounterBits {
    const ORDER_FREE: bool = true;

    #[inline(always)]
    fn draw(&mut self, n: u32) -> u32 {
        debug_assert!((1..=32).contains(&n));
        let shift = lane_shift_for(n);
        let block = self.pos >> shift;
        if block != self.cached_block {
            self.cached_block = block;
            self.cached_word = mix64(self.rng.seed, block);
        }
        let lane = (self.pos as u32) & ((1u32 << shift) - 1);
        self.pos += self.stride;
        ((self.cached_word >> (lane * n)) & ((1u64 << n) - 1)) as u32
    }

    #[inline(always)]
    fn seek(&mut self, base: u64, stride: u64) {
        self.pos = self.origin + base;
        self.stride = stride;
    }

    #[inline(always)]
    fn skip(&mut self, k: u64) {
        self.pos += k * self.stride;
    }

    /// Bulk 8-bit draws: lane `l` of a mixed word is `word >> (8·l) & 0xFF`,
    /// i.e. byte `l` of its little-endian encoding — so eight consecutive
    /// offsets are one `mix64` plus a `to_le_bytes` copy. This is the form
    /// the branch-free quantization loops consume (DESIGN.md §12). Strided
    /// cursors (the rare column-gather fallback) take the per-draw path.
    fn fill8(&mut self, out: &mut [u8]) {
        if self.stride != 1 {
            for b in out {
                *b = self.draw(8) as u8;
            }
            return;
        }
        let mut pos = self.pos;
        let mut i = 0;
        while i < out.len() {
            let lane = (pos & 7) as usize;
            let take = (8 - lane).min(out.len() - i);
            let bytes = mix64(self.rng.seed, pos >> 3).to_le_bytes();
            out[i..i + take].copy_from_slice(&bytes[lane..lane + take]);
            i += take;
            pos += take as u64;
        }
        self.pos = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_and_width_bounded() {
        let rng = CounterRng::new(0xDEAD_BEEF);
        for n in 1..=32u32 {
            for off in [0u64, 1, 7, 8, 63, 64, 1 << 20, u64::from(u32::MAX)] {
                let a = rng.bits_at(off, n);
                assert_eq!(a, rng.bits_at(off, n), "n={n} off={off}");
                if n < 32 {
                    assert!(a < 1 << n, "n={n} off={off}: {a}");
                }
            }
        }
    }

    #[test]
    fn cursor_matches_stateless_bits_at_for_any_stride() {
        let rng = CounterRng::new(17);
        for &(base, stride, count) in &[(0u64, 1u64, 64usize), (100, 1, 33), (5, 7, 40), (0, 64, 9)]
        {
            for n in [1u32, 3, 8, 16, 31, 32] {
                let mut bits = CounterBits::new(rng, 1000);
                bits.seek(base, stride);
                for k in 0..count as u64 {
                    assert_eq!(
                        bits.draw(n),
                        rng.bits_at(1000 + base + k * stride, n),
                        "n={n} base={base} stride={stride} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_advances_by_stride() {
        let rng = CounterRng::new(3);
        let mut bits = CounterBits::new(rng, 0);
        bits.seek(10, 4);
        bits.skip(3);
        assert_eq!(bits.draw(8), rng.bits_at(22, 8));
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let a = CounterRng::new(1);
        let b = CounterRng::new(2);
        let diff = (0..256u64)
            .filter(|&i| a.bits_at(i, 8) != b.bits_at(i, 8))
            .count();
        assert!(diff > 200, "streams too similar: {diff}/256 differ");
    }

    #[test]
    fn eight_bit_draws_are_roughly_uniform() {
        // Mirror of the Lfsr16 uniformity gate: byte-value histogram over a
        // long positional stream.
        let rng = CounterRng::new(0x1234);
        let mut counts = [0u32; 256];
        let draws = 65536u64 * 2;
        for off in 0..draws {
            counts[rng.bits_at(off, 8) as usize] += 1;
        }
        let expected = draws as f64 / 256.0;
        for (byte, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.25,
                "byte {byte} count {c} deviates {dev:.2} from uniform"
            );
        }
    }
}
