//! Hardware cost metering: accumulates simulated cycles/energy for every
//! training iteration — the bridge between the training loop and the
//! `fast-hw` system model that produces the time axes of paper Figs 19/20.

use fast_hw::{training_iteration, Gemm, IterationCost, LayerWork, SystemConfig};
use fast_nn::{Sequential, TrainHook};

/// Multiplies the GEMM dimensions seen by the cost model.
///
/// The laptop-scale models of this reproduction are width- and
/// resolution-reduced versions of the paper's DNNs; a dimension scale lifts
/// each measured GEMM to its paper-scale equivalent (e.g. a lite ResNet
/// layer `M=8192, K=72, N=8` becomes `M≈200k, K=576, N=64` under
/// `(24, 8, 8)`), so the simulated systems tile and separate the way the
/// paper's Section VII-B evaluation does. `DimScale::IDENTITY` charges the
/// literal shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimScale {
    /// Multiplier for the output-rows dimension (batch × positions).
    pub m: usize,
    /// Multiplier for the reduction dimension.
    pub k: usize,
    /// Multiplier for the output-columns dimension.
    pub n: usize,
}

impl DimScale {
    /// No scaling.
    pub const IDENTITY: DimScale = DimScale { m: 1, k: 1, n: 1 };

    /// The CNN lift used by the Fig 19/20 experiments (batch 32→256-class
    /// ImageNet-scale spatial dims, 8× channel width).
    pub const CNN_PAPER: DimScale = DimScale { m: 24, k: 8, n: 8 };

    /// The transformer lift (d_model 32→768).
    pub const TRANSFORMER_PAPER: DimScale = DimScale {
        m: 24,
        k: 24,
        n: 24,
    };
}

/// Extracts per-layer GEMM work (shapes + mantissa widths) from a model
/// after a forward pass has populated the shapes.
pub fn collect_layer_work(model: &mut Sequential) -> Vec<LayerWork> {
    collect_layer_work_scaled(model, DimScale::IDENTITY)
}

/// [`collect_layer_work`] with a [`DimScale`] applied to every GEMM.
pub fn collect_layer_work_scaled(model: &mut Sequential, scale: DimScale) -> Vec<LayerWork> {
    use fast_nn::Layer;
    let mut work = Vec::new();
    model.visit_quant(&mut |q| {
        if let Some(shape) = q.gemm_shape() {
            let (m_w, m_a, m_g) = q.precision().mantissa_widths();
            work.push(LayerWork {
                gemm: Gemm {
                    m: shape.m * scale.m,
                    k: shape.k * scale.k,
                    n: shape.n * scale.n,
                },
                m_w,
                m_a,
                m_g,
            });
        }
    });
    work
}

/// A [`TrainHook`] that accumulates simulated hardware cost per iteration.
#[derive(Debug)]
pub struct CostMeter {
    /// The simulated system.
    pub system: SystemConfig,
    /// Total cycles so far.
    pub total_cycles: u64,
    /// Total energy so far (joules).
    pub total_energy_j: f64,
    /// Per-iteration cycle history (cumulative), for TTA curves.
    pub cumulative_cycles: Vec<u64>,
    scale: DimScale,
}

impl CostMeter {
    /// Creates a meter for a system (no dimension scaling).
    pub fn new(system: SystemConfig) -> Self {
        CostMeter {
            system,
            total_cycles: 0,
            total_energy_j: 0.0,
            cumulative_cycles: Vec::new(),
            scale: DimScale::IDENTITY,
        }
    }

    /// Applies a [`DimScale`] to all recorded GEMMs.
    pub fn with_dim_scale(mut self, scale: DimScale) -> Self {
        self.scale = scale;
        self
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 / self.system.freq_hz
    }

    /// Records one iteration's cost from the model's current shapes and
    /// precisions.
    pub fn record(&mut self, model: &mut Sequential) -> IterationCost {
        let work = collect_layer_work_scaled(model, self.scale);
        let cost = training_iteration(&self.system, &work);
        self.total_cycles += cost.cycles;
        self.total_energy_j += cost.energy_j;
        self.cumulative_cycles.push(self.total_cycles);
        cost
    }
}

impl TrainHook for CostMeter {
    fn after_backward(&mut self, _iter: usize, model: &mut Sequential) {
        let _ = self.record(model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::models::mlp;
    use fast_nn::{set_uniform_precision, Layer, LayerPrecision, Session};
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn collects_work_after_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = mlp(&[8, 16, 4], &mut rng);
        assert!(
            collect_layer_work(&mut model).is_empty(),
            "no shapes before forward"
        );
        let mut s = Session::new(0);
        let _ = model.forward(&Tensor::zeros(vec![2, 8]), &mut s);
        let work = collect_layer_work(&mut model);
        assert_eq!(work.len(), 2);
        assert_eq!(work[0].gemm, Gemm { m: 2, k: 8, n: 16 });
        assert_eq!(work[1].gemm, Gemm { m: 2, k: 16, n: 4 });
    }

    #[test]
    fn meter_accumulates_monotonically() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = mlp(&[8, 16, 4], &mut rng);
        set_uniform_precision(&mut model, LayerPrecision::fast(2, 2, 2));
        let mut s = Session::new(0);
        let _ = model.forward(&Tensor::zeros(vec![4, 8]), &mut s);
        let mut meter = CostMeter::new(SystemConfig::fast());
        let c1 = meter.record(&mut model);
        let _ = meter.record(&mut model);
        assert_eq!(meter.total_cycles, 2 * c1.cycles);
        assert_eq!(meter.cumulative_cycles.len(), 2);
        assert!(meter.total_energy_j > 0.0);
    }

    #[test]
    fn higher_precision_costs_more_cycles_on_fast_system() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = mlp(&[64, 128, 10], &mut rng);
        let mut s = Session::new(0);
        let _ = model.forward(&Tensor::zeros(vec![32, 64]), &mut s);
        let sys = SystemConfig::fast();
        set_uniform_precision(&mut model, LayerPrecision::fast(2, 2, 2));
        let low = training_iteration(&sys, &collect_layer_work(&mut model));
        set_uniform_precision(&mut model, LayerPrecision::fast(4, 4, 4));
        let high = training_iteration(&sys, &collect_layer_work(&mut model));
        assert!(high.cycles > low.cycles);
    }
}
