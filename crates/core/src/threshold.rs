//! The FAST threshold schedule ε(l, i) of paper Eq. 1.

/// Threshold schedule `ε(l, i) = α − β·i/I − β·l/L` (paper Eq. 1).
///
/// The threshold decreases with both training progress `i/I` and layer
/// depth `l/L`, so later iterations and deeper layers switch to the
/// high-precision mantissa sooner (paper Fig 1 right / Fig 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSchedule {
    /// Offset `α`.
    pub alpha: f32,
    /// Slope `β` applied to both the iteration and layer terms.
    pub beta: f32,
}

impl EpsilonSchedule {
    /// The paper's setting for every DNN: `α = 0.6, β = 0.3` (Section VI).
    pub fn paper_default() -> Self {
        EpsilonSchedule {
            alpha: 0.6,
            beta: 0.3,
        }
    }

    /// Evaluates `ε(l, i)` for layer `l` of `total_layers` at iteration `i`
    /// of `total_iters`.
    ///
    /// # Panics
    ///
    /// Panics if `total_iters` or `total_layers` is zero.
    pub fn epsilon(
        &self,
        layer: usize,
        total_layers: usize,
        iter: usize,
        total_iters: usize,
    ) -> f32 {
        assert!(total_iters > 0 && total_layers > 0);
        self.alpha
            - self.beta * (iter as f32 / total_iters as f32)
            - self.beta * (layer as f32 / total_layers as f32)
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        EpsilonSchedule::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreases_with_iteration_and_depth() {
        let s = EpsilonSchedule::paper_default();
        let e00 = s.epsilon(0, 10, 0, 100);
        let e0_late = s.epsilon(0, 10, 99, 100);
        let e_deep_0 = s.epsilon(9, 10, 0, 100);
        assert!(e0_late < e00);
        assert!(e_deep_0 < e00);
        assert!((e00 - 0.6).abs() < 1e-6);
    }

    #[test]
    fn end_of_training_deepest_layer_value() {
        let s = EpsilonSchedule::paper_default();
        // ε(L, I) = 0.6 − 0.3 − 0.3 = 0.0 at the extreme corner.
        let e = s.epsilon(10, 10, 100, 100);
        assert!(e.abs() < 1e-6);
    }
}
