//! The FAST-Adaptive variable-precision training algorithm — the primary
//! contribution of *FAST: DNN Training Under Variable Precision Block
//! Floating Point with Stochastic Rounding* (HPCA 2022).
//!
//! * [`EpsilonSchedule`] — the threshold ε(l, i) of Eq. 1 (α = 0.6,
//!   β = 0.3 in the paper).
//! * [`FastController`] — Algorithm 1 as a training hook: per layer and per
//!   tensor, compare the relative improvement r(X) (Eq. 2, computed by
//!   `fast_bfp::relative_improvement`) against ε and select a 2- or 4-bit
//!   BFP mantissa.
//! * [`PrecisionTrace`] / [`Setting`] — the recorded precision history and
//!   cost ordering behind Fig 17.
//! * [`TemporalPolicy`] / [`LayerwisePolicy`] — the static schedules of the
//!   Fig 9 motivation experiments.
//! * [`CostMeter`] — accumulates simulated hardware time/energy per
//!   iteration on a `fast_hw::SystemConfig` (the cost axis of Figs 19/20).
//!
//! Determinism conventions (seeds, stochastic-rounding streams) are in
//! DESIGN.md §5; the experiment binaries driving this controller are
//! indexed in DESIGN.md §4.
//!
//! ```
//! use fast_core::{EpsilonSchedule, FastController};
//! use fast_nn::models::mlp;
//! use fast_nn::TrainHook;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = mlp(&[8, 16, 4], &mut rng);
//! let mut controller = FastController::new(1000, EpsilonSchedule::paper_default());
//! controller.before_iteration(0, &mut model); // selects (W, A, G) per layer
//! assert_eq!(controller.settings().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod meter;
mod policy;
mod threshold;
mod trace;

pub use controller::FastController;
pub use meter::{collect_layer_work, collect_layer_work_scaled, CostMeter, DimScale};
pub use policy::{FixedPolicy, HookChain, LayerwisePolicy, TemporalPolicy};
pub use threshold::EpsilonSchedule;
pub use trace::{PrecisionTrace, Setting};
