//! Precision traces — the data behind paper Fig 17's heat map — and the
//! cost ordering of the eight (W, A, G) settings.

/// A per-layer (W, A, G) mantissa-width setting, each 2 or 4 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setting {
    /// Weight mantissa bits.
    pub w: u32,
    /// Activation mantissa bits.
    pub a: u32,
    /// Gradient mantissa bits.
    pub g: u32,
}

impl Setting {
    /// All eight settings in the paper's Fig 17 legend order (ascending
    /// computational cost).
    pub fn legend_order() -> [Setting; 8] {
        [
            Setting { w: 2, a: 2, g: 2 },
            Setting { w: 2, a: 4, g: 2 },
            Setting { w: 4, a: 2, g: 2 },
            Setting { w: 2, a: 2, g: 4 },
            Setting { w: 4, a: 4, g: 2 },
            Setting { w: 2, a: 4, g: 4 },
            Setting { w: 4, a: 2, g: 4 },
            Setting { w: 4, a: 4, g: 4 },
        ]
    }

    /// Relative per-iteration cost of a setting:
    /// `m_W·m_A + λ1·m_G·m_W + λ2·m_G·m_A` with `λ1 = 1.5, λ2 = 1.25`.
    ///
    /// The three GEMMs contribute `m_W·m_A` (forward), `m_G·m_W` (∇A) and
    /// `m_G·m_A` (∇W) chunk passes; the gradient terms carry extra weight
    /// because ∇O is converted with stochastic rounding and read by both
    /// backward GEMMs ("gradients are used multiple times during the
    /// backward pass", Section VI-A), and the ∇A GEMM sits on the
    /// inter-layer critical path. This reproduces the paper's published
    /// order exactly (see `legend_order_is_cost_sorted`).
    pub fn cost(&self) -> f64 {
        let (w, a, g) = (self.w as f64, self.a as f64, self.g as f64);
        w * a + 1.5 * g * w + 1.25 * g * a
    }

    /// Index of this setting within the legend order.
    ///
    /// # Panics
    ///
    /// Panics if the widths are not each 2 or 4.
    pub fn legend_index(&self) -> usize {
        Setting::legend_order()
            .iter()
            .position(|s| s == self)
            .expect("setting widths must each be 2 or 4")
    }
}

impl std::fmt::Display for Setting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.w, self.a, self.g)
    }
}

/// A recorded history of per-layer settings over training (Fig 17).
#[derive(Debug, Clone, Default)]
pub struct PrecisionTrace {
    /// Layer labels in execution order.
    pub layer_labels: Vec<String>,
    /// `(iteration, settings-per-layer)` samples.
    pub samples: Vec<(usize, Vec<Setting>)>,
}

impl PrecisionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PrecisionTrace::default()
    }

    /// Records one iteration's settings.
    pub fn record(&mut self, iter: usize, settings: Vec<Setting>) {
        self.samples.push((iter, settings));
    }

    /// Number of layers traced.
    pub fn layer_count(&self) -> usize {
        self.samples.first().map(|(_, s)| s.len()).unwrap_or(0)
    }

    /// Mean legend index per layer over a window of iterations — the
    /// summary statistic showing precision growth over depth/time.
    pub fn mean_legend_index(&self, layer: usize, from_iter: usize, to_iter: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for (it, settings) in &self.samples {
            if *it >= from_iter && *it < to_iter {
                sum += settings[layer].legend_index() as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Encodes the trace into the checkpoint wire form (little-endian,
    /// length-prefixed): labels, then `(iteration, settings)` samples. A
    /// resumed run's Fig 17 heat map continues seamlessly from the
    /// pre-checkpoint history.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.layer_labels.len() as u32).to_le_bytes());
        for label in &self.layer_labels {
            out.extend_from_slice(&(label.len() as u32).to_le_bytes());
            out.extend_from_slice(label.as_bytes());
        }
        out.extend_from_slice(&(self.samples.len() as u32).to_le_bytes());
        for (iter, settings) in &self.samples {
            out.extend_from_slice(&(*iter as u64).to_le_bytes());
            out.extend_from_slice(&(settings.len() as u32).to_le_bytes());
            for s in settings {
                for field in [s.w, s.a, s.g] {
                    out.extend_from_slice(&field.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a [`PrecisionTrace::to_wire`] encoding.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field; never panics.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], String> {
            let out = bytes
                .get(pos..pos + n)
                .ok_or_else(|| "precision trace encoding truncated".to_string())?;
            pos += n;
            Ok(out)
        };
        fn u32_at(b: &[u8]) -> u32 {
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        }
        let mut trace = PrecisionTrace::new();
        let label_count = u32_at(take(4)?);
        for _ in 0..label_count {
            let len = u32_at(take(4)?) as usize;
            let body = take(len)?;
            trace.layer_labels.push(
                String::from_utf8(body.to_vec()).map_err(|_| "label is not UTF-8".to_string())?,
            );
        }
        let sample_count = u32_at(take(4)?);
        for _ in 0..sample_count {
            let b = take(8)?;
            let iter =
                u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]) as usize;
            let len = u32_at(take(4)?) as usize;
            let mut settings = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                let b = take(12)?;
                settings.push(Setting {
                    w: u32_at(&b[0..4]),
                    a: u32_at(&b[4..8]),
                    g: u32_at(&b[8..12]),
                });
            }
            trace.samples.push((iter, settings));
        }
        if pos != bytes.len() {
            return Err("trailing bytes after precision trace".to_string());
        }
        Ok(trace)
    }

    /// Renders an ASCII heat map: one row per layer (deepest at top, as in
    /// Fig 17), one column per sampled iteration bucket; cells show the
    /// legend index 0–7.
    ///
    /// Always emits at least one line: an empty trace — no samples, zero
    /// buckets, *or* samples recorded over zero layers (a model with no
    /// quantized layers) — renders as a `(empty trace)` placeholder line,
    /// so callers can split on lines unconditionally.
    pub fn render_ascii(&self, buckets: usize) -> String {
        // The zero-layer guard matters: samples recorded from a model with
        // no quantized layers used to render as the empty string, and
        // consumers taking the first line (`ascii.lines().next()`) panicked.
        if self.samples.is_empty() || buckets == 0 || self.layer_count() == 0 {
            return String::from("(empty trace)\n");
        }
        let layers = self.layer_count();
        let max_iter = self.samples.last().expect("non-empty").0 + 1;
        let mut out = String::new();
        for layer in (0..layers).rev() {
            let label = self
                .layer_labels
                .get(layer)
                .cloned()
                .unwrap_or_else(|| format!("layer {layer}"));
            out.push_str(&format!("{label:>20} |"));
            for b in 0..buckets {
                let from = b * max_iter / buckets;
                let to = ((b + 1) * max_iter / buckets).max(from + 1);
                let mean = self.mean_legend_index(layer, from, to);
                out.push_str(&format!("{}", mean.round() as usize));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_order_is_cost_sorted() {
        // The paper's Fig 17 legend orders settings by computational cost:
        // (2,2,2) < (2,4,2) < (4,2,2) < (2,2,4) < (4,4,2) < (2,4,4)
        // < (4,2,4) < (4,4,4). Our cost model must reproduce it strictly.
        let order = Setting::legend_order();
        for w in order.windows(2) {
            assert!(
                w[0].cost() < w[1].cost(),
                "{} (cost {}) !< {} (cost {})",
                w[0],
                w[0].cost(),
                w[1],
                w[1].cost()
            );
        }
    }

    #[test]
    fn legend_index_roundtrip() {
        for (i, s) in Setting::legend_order().iter().enumerate() {
            assert_eq!(s.legend_index(), i);
        }
    }

    #[test]
    fn trace_statistics() {
        let mut t = PrecisionTrace::new();
        t.layer_labels = vec!["l0".into(), "l1".into()];
        let low = Setting { w: 2, a: 2, g: 2 };
        let high = Setting { w: 4, a: 4, g: 4 };
        for it in 0..10 {
            let s = if it < 5 { low } else { high };
            t.record(it, vec![low, s]);
        }
        assert_eq!(t.layer_count(), 2);
        assert_eq!(t.mean_legend_index(0, 0, 10), 0.0);
        assert_eq!(t.mean_legend_index(1, 5, 10), 7.0);
        let ascii = t.render_ascii(2);
        assert!(ascii.contains("l1"));
        // Deepest layer (l1) rendered first. `render_ascii` guarantees at
        // least one line, so taking the first cannot fail.
        let first_line = ascii.lines().next().expect("render emits a line");
        assert!(first_line.contains("l1"));
    }

    #[test]
    fn wire_codec_roundtrips_and_rejects_garbage() {
        let mut t = PrecisionTrace::new();
        t.layer_labels = vec!["conv3x3(2->6)".into(), "dense(64->3)".into()];
        t.record(
            0,
            vec![Setting { w: 2, a: 2, g: 2 }, Setting { w: 4, a: 2, g: 4 }],
        );
        t.record(
            7,
            vec![Setting { w: 4, a: 4, g: 4 }, Setting { w: 2, a: 4, g: 2 }],
        );
        let enc = t.to_wire();
        let back = PrecisionTrace::from_wire(&enc).unwrap();
        assert_eq!(back.layer_labels, t.layer_labels);
        assert_eq!(back.samples, t.samples);
        // Empty trace round-trips too.
        let empty = PrecisionTrace::new();
        assert_eq!(
            PrecisionTrace::from_wire(&empty.to_wire()).unwrap().samples,
            empty.samples
        );
        // Truncations and trailing garbage are errors, not panics.
        for cut in 0..enc.len() {
            assert!(PrecisionTrace::from_wire(&enc[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = enc;
        padded.push(0);
        assert!(PrecisionTrace::from_wire(&padded).is_err());
    }

    #[test]
    fn empty_traces_always_render_a_line() {
        // Regression: every degenerate trace must render the placeholder
        // line — consumers take `ascii.lines().next()` unconditionally, and
        // a zero-layer trace (samples recorded from a model with no
        // quantized layers) used to render as the empty string and panic
        // them.
        let no_samples = PrecisionTrace::new();
        let mut zero_layers = PrecisionTrace::new();
        for it in 0..3 {
            zero_layers.record(it, Vec::new());
        }
        let some = Setting { w: 2, a: 2, g: 2 };
        let mut zero_buckets = PrecisionTrace::new();
        zero_buckets.record(0, vec![some]);
        for (name, trace, buckets) in [
            ("no samples", &no_samples, 4),
            ("zero layers", &zero_layers, 4),
            ("zero buckets", &zero_buckets, 0),
        ] {
            let ascii = trace.render_ascii(buckets);
            let first = ascii.lines().next();
            assert_eq!(first, Some("(empty trace)"), "{name}");
        }
    }
}
